//! A small hand-rolled Rust lexer.
//!
//! The rules in this crate reason about *tokens*, never raw text, so a
//! `HashMap` mentioned inside a string literal, a `// comment`, or a
//! raw string does not produce a false positive the way a grep would.
//! The lexer handles exactly the surface syntax that matters for that
//! guarantee: line and (nested) block comments, string/char/byte/raw
//! literals, lifetimes vs char literals, numbers, identifiers, and
//! single-character punctuation. It does not build an AST — the rule
//! engine works on the flat token stream plus per-line metadata.

/// Token classification. Keywords lex as [`TokKind::Ident`]; the rules
/// match on the identifier text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `_`, ...).
    Ident,
    /// Single punctuation character (`.`, `#`, `{`, `=`, ...).
    Punct,
    /// Numeric literal (integer or float, any radix, with suffix).
    Num,
    /// String literal of any flavour (plain, raw, byte, raw byte).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Str`] this is a placeholder, not the
    /// literal's contents — rules must never see inside strings.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment, preserved separately from the token stream so the
/// `SAFETY:` and `lint:allow` scanners can read it.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment body with the `//`/`/*` markers and doc-comment sigils
    /// stripped, trimmed.
    pub text: String,
    /// Whether only whitespace precedes the comment on its first line.
    pub own_line: bool,
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    s: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    /// Whether a non-whitespace, non-comment byte has appeared on the
    /// current line (drives [`Comment::own_line`]).
    line_has_code: bool,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            s: src.as_bytes(),
            src,
            i: 0,
            line: 1,
            line_has_code: false,
            toks: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, off: usize) -> u8 {
        *self.s.get(self.i + off).unwrap_or(&0)
    }

    fn bump_line(&mut self) {
        self.line += 1;
        self.line_has_code = false;
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.line_has_code = true;
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while self.i < self.s.len() {
            let c = self.s[self.i];
            match c {
                b'\n' => {
                    self.i += 1;
                    self.bump_line();
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    // one punctuation char (multi-byte UTF-8 outside
                    // strings only occurs in idents, handled above for
                    // ASCII; treat stray bytes as punctuation)
                    let ch_len = utf8_len(c);
                    let text = self.src[self.i..self.i + ch_len].to_string();
                    let line = self.line;
                    self.push(TokKind::Punct, text, line);
                    self.i += ch_len;
                }
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let own_line = !self.line_has_code;
        let begin = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'\n' {
            self.i += 1;
        }
        let raw = &self.src[begin..self.i];
        // strip `//`, `///`, `//!`
        let body = raw
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim()
            .to_string();
        self.comments.push(Comment {
            line: start_line,
            end_line: start_line,
            text: body,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let own_line = !self.line_has_code;
        let begin = self.i;
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.s.len() && depth > 0 {
            if self.s[self.i] == b'\n' {
                self.bump_line();
                self.i += 1;
            } else if self.s[self.i] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.i += 2;
            } else if self.s[self.i] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        let raw = &self.src[begin..self.i];
        let body = raw
            .trim_start_matches("/*")
            .trim_start_matches(['*', '!'])
            .trim_end_matches("*/")
            .trim()
            .to_string();
        self.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text: body,
            own_line,
        });
    }

    /// Plain (or byte) string literal starting at `"`; escapes and
    /// embedded newlines handled.
    fn string(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.bump_line();
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Str, "\"...\"".to_string(), line);
    }

    /// Raw string starting at the first `#` or `"` after the `r`
    /// prefix: `r"..."`, `r#"..."#`, `r##"..."##`, ...
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.i += 1;
        }
        debug_assert_eq!(self.peek(0), b'"');
        self.i += 1;
        'scan: while self.i < self.s.len() {
            if self.s[self.i] == b'\n' {
                self.bump_line();
                self.i += 1;
                continue;
            }
            if self.s[self.i] == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.i += 1 + hashes;
                    break 'scan;
                }
            }
            self.i += 1;
        }
        self.push(TokKind::Str, "r\"...\"".to_string(), line);
    }

    /// Handle `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`, `br#"`.
    /// Returns true if it consumed something; false means the leading
    /// `r`/`b` is an ordinary identifier start.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.s[self.i];
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            (b'r', b'"') => {
                self.i += 1;
                self.raw_string();
                true
            }
            (b'r', b'#') => {
                // raw string `r#"` vs raw identifier `r#ident`
                if c2 == b'"' || c2 == b'#' {
                    self.i += 1;
                    self.raw_string();
                } else {
                    self.i += 2;
                    self.ident(); // raw identifier: lex the bare name
                }
                true
            }
            (b'b', b'"') => {
                self.i += 1;
                self.string();
                true
            }
            (b'b', b'\'') => {
                self.i += 1;
                self.char_or_lifetime();
                true
            }
            (b'b', b'r') if c2 == b'"' || c2 == b'#' => {
                self.i += 2;
                self.raw_string();
                true
            }
            _ => false,
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime/label).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // self.s[self.i] == b'\''
        let c1 = self.peek(1);
        if c1 == b'\\' {
            // escaped char literal: skip `'\` and the escaped char
            // (handles `'\''` and `'\\'`), then scan to the close quote
            self.i += 3;
            while self.i < self.s.len() && self.s[self.i] != b'\'' {
                self.i += 1;
            }
            self.i += 1;
            self.push(TokKind::Char, "'.'".to_string(), line);
            return;
        }
        if c1 == b'_' || c1.is_ascii_alphabetic() {
            // scan the identifier-shaped run after the quote
            let mut j = self.i + 1;
            while j < self.s.len() && (self.s[j] == b'_' || self.s[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if self.s.get(j) == Some(&b'\'') {
                self.i = j + 1;
                self.push(TokKind::Char, "'.'".to_string(), line);
            } else {
                let text = self.src[self.i..j].to_string();
                self.i = j;
                self.push(TokKind::Lifetime, text, line);
            }
            return;
        }
        // non-alphabetic char literal (`'('`, `'0'`, multi-byte `'é'`)
        let mut j = self.i + 1;
        while j < self.s.len() && self.s[j] != b'\'' && self.s[j] != b'\n' {
            j += 1;
        }
        self.i = (j + 1).min(self.s.len());
        self.push(TokKind::Char, "'.'".to_string(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let begin = self.i;
        while self.i < self.s.len()
            && (self.s[self.i] == b'_'
                || self.s[self.i].is_ascii_alphanumeric()
                || self.s[self.i] >= 0x80)
        {
            self.i += utf8_len(self.s[self.i]);
        }
        let text = self.src[begin..self.i].to_string();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let begin = self.i;
        // integer part (handles 0x/0b/0o, digits, `_`, type suffixes)
        while self.i < self.s.len()
            && (self.s[self.i] == b'_' || self.s[self.i].is_ascii_alphanumeric())
        {
            // exponent sign: `1e-3`, `2.5E+7`
            if (self.s[self.i] == b'e' || self.s[self.i] == b'E')
                && (self.peek(1) == b'+' || self.peek(1) == b'-')
                && self.peek(2).is_ascii_digit()
                && !self.src[begin..self.i].starts_with("0x")
            {
                self.i += 2;
                continue;
            }
            self.i += 1;
        }
        // fraction: `.` followed by a digit (so `0..n` stays a range)
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            while self.i < self.s.len()
                && (self.s[self.i] == b'_' || self.s[self.i].is_ascii_alphanumeric())
            {
                if (self.s[self.i] == b'e' || self.s[self.i] == b'E')
                    && (self.peek(1) == b'+' || self.peek(1) == b'-')
                    && self.peek(2).is_ascii_digit()
                {
                    self.i += 2;
                    continue;
                }
                self.i += 1;
            }
        } else if self.peek(0) == b'.'
            && !self.peek(1).is_ascii_alphanumeric()
            && self.peek(1) != b'.'
            && self.peek(1) != b'_'
        {
            // trailing-dot float `1.`
            self.i += 1;
        }
        let text = self.src[begin..self.i].to_string();
        self.push(TokKind::Num, text, line);
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let x = "HashMap in a string"; // HashMap in a comment
            let y = r#"HashMap raw"#;
            /* HashMap in /* a nested */ block */
            let z = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("HashMap in a comment"));
        assert!(comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src).0;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn escaped_char_literal_with_quote() {
        let src = r"let q = '\''; let n = '\n'; unsafe {}";
        let ids = idents(src);
        assert!(ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { let x = 1.5e-3; let y = 2.max(3); }";
        let toks = lex(src).0;
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "2", "3"]);
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn comment_own_line_flag() {
        let src = "let a = 1; // trailing\n// own line\nlet b = 2;";
        let (_, comments) = lex(src);
        assert!(!comments[0].own_line);
        assert!(comments[1].own_line);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line\none\";\nlet t = 3;";
        let toks = lex(src).0;
        let t = toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn raw_identifier() {
        let ids = idents("let r#match = 1;");
        assert!(ids.contains(&"match".to_string()));
    }
}
