//! `selsync-lint`: the workspace determinism & protocol-invariant
//! linter.
//!
//! SelSync's reproduction claim is *bit-identical determinism*: same
//! seed + same fault plan ⇒ identical parameters across in-process,
//! TCP multi-process, crash/recovery, and reference-vs-packed-kernel
//! runs. Runtime tests defend that property against today's code; this
//! crate defends it against future diffs, by statically rejecting the
//! constructs that historically break it:
//!
//! | rule | defends against |
//! |------|-----------------|
//! | `nondet-iteration` | `HashMap`/`HashSet` order leaking into protocol/state paths |
//! | `nondet-time` | wall-clock reads outside the timeout/watchdog modules |
//! | `unwrap-in-prod` | panicking escape hatches killing ranks mid-protocol |
//! | `unsafe-needs-safety` | undocumented `unsafe` |
//! | `unsafe-outside-kernels` | `unsafe` escaping the two audited crates |
//! | `float-order` | unordered parallel float reductions |
//! | `raw-net` | sockets bypassing the Transport layer |
//! | `wire-wildcard` | `_ =>` arms silently swallowing new wire variants |
//!
//! The pass is offline and dependency-free (std only), built on a
//! hand-rolled lexer so rules see real tokens — never the contents of
//! strings or comments. Findings are silenced inline with
//! `// lint:allow(rule): <justification>`; a bare allow without a
//! justification, and an allow that silences nothing, are themselves
//! findings.
#![deny(unsafe_code)]

pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;

pub use engine::{format_human, run, RecordedFinding, Report, DEFAULT_ROOTS};
