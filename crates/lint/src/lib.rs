//! `selsync-lint`: the workspace determinism & protocol-invariant
//! linter.
//!
//! SelSync's reproduction claim is *bit-identical determinism*: same
//! seed + same fault plan ⇒ identical parameters across in-process,
//! TCP multi-process, crash/recovery, and reference-vs-packed-kernel
//! runs. Runtime tests defend that property against today's code; this
//! crate defends it against future diffs, by statically rejecting the
//! constructs that historically break it:
//!
//! | rule | defends against |
//! |------|-----------------|
//! | `nondet-iteration` | `HashMap`/`HashSet` order leaking into protocol/state paths |
//! | `nondet-time` | wall-clock reads outside the timeout/watchdog modules |
//! | `unwrap-in-prod` | panicking escape hatches killing ranks mid-protocol |
//! | `unsafe-needs-safety` | undocumented `unsafe` |
//! | `unsafe-outside-kernels` | `unsafe` escaping the two audited crates |
//! | `float-order` | unordered parallel float reductions |
//! | `raw-net` | sockets bypassing the Transport layer |
//! | `wire-wildcard` | `_ =>` arms silently swallowing new wire variants |
//! | `poll-blocking` | blocking calls reachable from the poll driver's sweep |
//! | `unbounded-retry` | dial/send retry loops with no visible cap or deadline |
//! | `lock-across-send` | a MutexGuard held across a `Transport::send` |
//! | `wire-conformance` | a `Payload` variant missing one of its five codec sites |
//!
//! The pass is offline and dependency-free (std only), built on a
//! hand-rolled lexer so rules see real tokens — never the contents of
//! strings or comments. Above the lexer sits a lightweight item-tree
//! parser (fn/enum/const/loop extents, match arms — no type inference)
//! and a once-per-run [`index::WorkspaceIndex`], which is what lets
//! `wire-conformance` cross-check the `Payload` enum in crates/comm
//! against the codec in crates/net. Findings are silenced inline with
//! `// lint:allow(rule): <justification>`; a bare allow without a
//! justification, and an allow that silences nothing, are themselves
//! findings. `--baseline` diffs a run against a committed snapshot
//! (see [`baseline`]) so a new rule can land strict while existing,
//! justified debt stays auditable.
#![deny(unsafe_code)]

pub mod baseline;
pub mod engine;
pub mod index;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod wire;

pub use engine::{
    format_human, load_index, run, run_on_index, RecordedFinding, Report, DEFAULT_ROOTS,
};
