//! The `--baseline` snapshot: land new rules strict without a
//! big-bang cleanup.
//!
//! A baseline is a committed snapshot of every current finding —
//! suppressed ones included, with their justifications, so the debt is
//! auditable in review. `--baseline <file>` then fails only on *drift*
//! from the snapshot, in either direction:
//!
//! - a finding not in the baseline is **new** → fail (the rule is
//!   strict for all code written after the snapshot), and
//! - a baseline entry with no matching finding is **stale** → fail
//!   (the snapshot must be regenerated with `--write-baseline` so it
//!   never accumulates dead entries).
//!
//! Matching is exact on (path, line, rule, suppressed): a moved
//! finding counts as new + stale, which forces the regeneration, which
//! puts the fresh line numbers in review. That strictness is the
//! point — the baseline is a ratchet, not a mute button.

use crate::engine::{RecordedFinding, Report};
use crate::json::{self, escape, Value};

/// One snapshotted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub path: String,
    pub line: u32,
    pub rule: String,
    pub suppressed: bool,
}

impl BaselineEntry {
    fn matches(&self, f: &RecordedFinding) -> bool {
        self.path == f.path
            && self.line == f.line
            && self.rule == f.rule
            && self.suppressed == f.suppressed
    }
}

/// Serialize a report as a baseline snapshot. Deterministic: findings
/// are already (path, line, rule)-sorted by the engine, so the
/// regenerate-check in ci.sh can diff bytes.
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"path\": \"{}\", ", escape(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"rule\": \"{}\", ", escape(&f.rule)));
        out.push_str(&format!("\"suppressed\": {}, ", f.suppressed));
        match &f.justification {
            Some(j) => out.push_str(&format!("\"justification\": \"{}\"", escape(j))),
            None => out.push_str("\"justification\": null"),
        }
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse a baseline file through the self-validating JSON parser.
pub fn parse(s: &str) -> Result<Vec<BaselineEntry>, String> {
    let v = json::parse(s)?;
    let version = v
        .get("version")
        .and_then(Value::as_u64)
        .ok_or("baseline: missing \"version\"")?;
    if version != 1 {
        return Err(format!("baseline: unsupported version {version}"));
    }
    let findings = v
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("baseline: missing \"findings\" array")?;
    let mut out = Vec::with_capacity(findings.len());
    for (i, f) in findings.iter().enumerate() {
        let field = |name: &str| {
            f.get(name)
                .ok_or_else(|| format!("baseline: finding {i} missing \"{name}\""))
        };
        out.push(BaselineEntry {
            path: field("path")?
                .as_str()
                .ok_or_else(|| format!("baseline: finding {i}: \"path\" not a string"))?
                .to_string(),
            line: field("line")?
                .as_u64()
                .ok_or_else(|| format!("baseline: finding {i}: \"line\" not an integer"))?
                as u32,
            rule: field("rule")?
                .as_str()
                .ok_or_else(|| format!("baseline: finding {i}: \"rule\" not a string"))?
                .to_string(),
            suppressed: field("suppressed")?
                .as_bool()
                .ok_or_else(|| format!("baseline: finding {i}: \"suppressed\" not a bool"))?,
        });
    }
    Ok(out)
}

/// Result of diffing a report against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not in the baseline — new debt, fails the run.
    pub new: Vec<RecordedFinding>,
    /// Baseline entries with no matching finding — stale snapshot,
    /// fails the run until regenerated.
    pub stale: Vec<BaselineEntry>,
    /// Findings covered by the baseline (tolerated).
    pub matched: usize,
}

impl BaselineDiff {
    /// Does the report agree with the snapshot?
    pub fn clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Diff the report's findings against the snapshot.
pub fn diff(report: &Report, baseline: &[BaselineEntry]) -> BaselineDiff {
    let mut d = BaselineDiff::default();
    let mut used = vec![false; baseline.len()];
    for f in &report.findings {
        match baseline
            .iter()
            .enumerate()
            .position(|(i, b)| !used[i] && b.matches(f))
        {
            Some(i) => {
                used[i] = true;
                d.matched += 1;
            }
            None => d.new.push(f.clone()),
        }
    }
    for (b, was_used) in baseline.iter().zip(&used) {
        if !was_used {
            d.stale.push(b.clone());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &str, suppressed: bool) -> RecordedFinding {
        RecordedFinding {
            path: path.to_string(),
            line,
            rule: rule.to_string(),
            message: "m".to_string(),
            suppressed,
            justification: suppressed.then(|| "a written justification".to_string()),
        }
    }

    fn report(findings: Vec<RecordedFinding>) -> Report {
        Report {
            findings,
            files_scanned: 1,
        }
    }

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let r = report(vec![
            finding("crates/net/src/poll.rs", 624, "poll-blocking", true),
            finding("crates/comm/src/x.rs", 9, "lock-across-send", false),
        ]);
        let entries = parse(&to_json(&r)).expect("round-trip");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "crates/net/src/poll.rs");
        assert_eq!(entries[0].line, 624);
        assert!(entries[0].suppressed);
        assert!(!entries[1].suppressed);
        // and the whole snapshot diffs clean against its own report
        assert!(diff(&r, &entries).clean());
    }

    #[test]
    fn new_and_stale_findings_both_dirty_the_diff() {
        let r1 = report(vec![finding("a.rs", 1, "raw-net", false)]);
        let base = parse(&to_json(&r1)).expect("parse");
        // same finding moved two lines down: new at 3, stale at 1
        let r2 = report(vec![finding("a.rs", 3, "raw-net", false)]);
        let d = diff(&r2, &base);
        assert!(!d.clean());
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.new[0].line, 3);
        assert_eq!(d.stale[0].line, 1);
    }

    #[test]
    fn suppression_flip_is_drift() {
        let r1 = report(vec![finding("a.rs", 1, "raw-net", true)]);
        let base = parse(&to_json(&r1)).expect("parse");
        let r2 = report(vec![finding("a.rs", 1, "raw-net", false)]);
        assert!(!diff(&r2, &base).clean());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("{").is_err());
        assert!(parse("{\"version\": 2, \"findings\": []}").is_err());
        assert!(parse("{\"version\": 1}").is_err());
        assert!(parse("{\"version\": 1, \"findings\": [{\"path\": \"a\"}]}").is_err());
    }
}
