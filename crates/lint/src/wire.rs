//! `wire-conformance`: cross-file checking of the wire protocol, plus
//! the `--wire-table` layout emitter.
//!
//! The protocol has five places that must agree for every `Payload`
//! variant — the enum's `body_bytes`/`wire_bytes` accounting in
//! crates/comm, and the codec's `kind_of`, `encode_frame` and decode
//! arms plus a unique `KIND_*` constant in crates/net. A variant added
//! to four of the five compiles fine (the decode match is over a `u8`,
//! not the enum) and only fails at runtime when the first frame of the
//! new kind hits a peer. This rule turns that gap into a lint finding:
//! `variant X missing from <site>`.
//!
//! Sites are discovered structurally via [`WorkspaceIndex`]; when a
//! workspace has no payload site or no codec site the rule is silent
//! (there is no protocol to check), so the linter still runs on
//! arbitrary Rust trees.

use crate::index::WorkspaceIndex;
use crate::lexer::TokKind;
use crate::parser::{first_match_arms, ConstItem, FnItem, LoopKind, VariantItem};
use crate::rules::{Finding, WorkspaceRule};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

pub const RULE: &str = "wire-conformance";

pub struct WireConformance;

impl WorkspaceRule for WireConformance {
    fn name(&self) -> &'static str {
        RULE
    }

    fn check(&self, index: &WorkspaceIndex, out: &mut Vec<(String, Finding)>) {
        let Some(ps) = index.payload_site() else {
            return;
        };
        let Some(en) = ps.items.enum_named("Payload") else {
            return;
        };
        let variants = &en.variants;

        // the enum's own byte accounting must cover every variant
        let body_fn = ps
            .items
            .fn_named("body_bytes")
            .or_else(|| ps.items.fn_named("wire_bytes"));
        if let Some(bf) = body_fn {
            for v in variants {
                if !has_variant(ps, bf.body.clone(), &v.name) {
                    out.push((
                        ps.rel.clone(),
                        Finding {
                            rule: RULE,
                            line: bf.line,
                            message: format!(
                                "variant {} missing from {} ({})",
                                v.name, bf.name, ps.rel
                            ),
                        },
                    ));
                }
            }
        }

        for cs in index.codec_sites() {
            check_codec_site(cs, variants, out);
        }
    }
}

fn check_codec_site(cs: &SourceFile, variants: &[VariantItem], out: &mut Vec<(String, Finding)>) {
    let Some(kf) = cs.items.fn_named("kind_of") else {
        return;
    };
    let km = kind_map(cs, kf);

    // every variant needs a kind_of arm
    for v in variants {
        if !km.iter().any(|(n, _)| n == &v.name) {
            out.push((
                cs.rel.clone(),
                Finding {
                    rule: RULE,
                    line: kf.line,
                    message: format!("variant {} missing from kind_of ({})", v.name, cs.rel),
                },
            ));
        }
    }

    // every variant needs an encode arm
    if let Some(ef) = cs.items.fn_named("encode_frame") {
        for v in variants {
            if !has_variant(cs, ef.body.clone(), &v.name) {
                out.push((
                    cs.rel.clone(),
                    Finding {
                        rule: RULE,
                        line: ef.line,
                        message: format!(
                            "variant {} missing from encode_frame ({})",
                            v.name, cs.rel
                        ),
                    },
                ));
            }
        }
    }

    // every *wire kind* needs a decode arm. Kind-granular, not
    // variant-granular: SharedParams legitimately decodes as Params
    // because both share KIND_PARAMS.
    if let Some(df) = decode_fn(cs) {
        let covered = decode_covered_kinds(cs, df);
        let mut seen = BTreeSet::new();
        for (v, kind) in &km {
            if seen.insert(kind.clone()) && !covered.contains(kind) {
                out.push((
                    cs.rel.clone(),
                    Finding {
                        rule: RULE,
                        line: df.line,
                        message: format!(
                            "variant {} missing from {} ({}): no {} arm",
                            v, df.name, cs.rel, kind
                        ),
                    },
                ));
            }
        }
    }

    // every referenced kind constant must exist...
    let consts: Vec<&ConstItem> = cs
        .items
        .consts
        .iter()
        .filter(|c| c.name.starts_with("KIND_"))
        .collect();
    let mut seen = BTreeSet::new();
    for (v, kind) in &km {
        if seen.insert(kind.clone()) && !consts.iter().any(|c| &c.name == kind) {
            out.push((
                cs.rel.clone(),
                Finding {
                    rule: RULE,
                    line: kf.line,
                    message: format!(
                        "variant {} maps to {} which is never defined as a const ({})",
                        v, kind, cs.rel
                    ),
                },
            ));
        }
    }

    // ...and kind values must be unique: two constants sharing a byte
    // value means one payload kind silently decodes as another
    let mut by_value: BTreeMap<u64, &ConstItem> = BTreeMap::new();
    for c in &consts {
        let Some(val) = c.value else { continue };
        match by_value.get(&val) {
            Some(first) => out.push((
                cs.rel.clone(),
                Finding {
                    rule: RULE,
                    line: c.line,
                    message: format!(
                        "duplicate wire kind value {}: {} collides with {}",
                        val, c.name, first.name
                    ),
                },
            )),
            None => {
                by_value.insert(val, c);
            }
        }
    }
}

/// Does `Payload::<variant>` appear anywhere in this token range?
fn has_variant(f: &SourceFile, range: Range<usize>, variant: &str) -> bool {
    let toks = &f.toks;
    range.clone().any(|k| {
        toks[k].is_ident("Payload")
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 3).is_some_and(|t| t.is_ident(variant))
    })
}

/// Parse `kind_of`'s match into (variant, kind-const) pairs, in arm
/// order. Or-patterns map every listed variant to the arm's kind.
fn kind_map(f: &SourceFile, kf: &FnItem) -> Vec<(String, String)> {
    let mut map = Vec::new();
    for arm in first_match_arms(&f.toks, kf.body.clone()) {
        let kind = f.toks[arm.body.clone()]
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text.starts_with("KIND_"))
            .map(|t| t.text.clone());
        let Some(kind) = kind else { continue };
        for k in arm.pat.clone() {
            if f.toks[k].is_ident("Payload")
                && f.toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && f.toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(v) = f.toks.get(k + 3).filter(|t| t.kind == TokKind::Ident) {
                    map.push((v.text.clone(), kind.clone()));
                }
            }
        }
    }
    map
}

/// The codec site's decode fn: `decode_after_len` by convention, else
/// the first fn whose name starts with `decode`.
fn decode_fn(f: &SourceFile) -> Option<&FnItem> {
    f.items
        .fn_named("decode_after_len")
        .or_else(|| f.items.fns.iter().find(|x| x.name.starts_with("decode")))
}

/// Kind constants that have a decode arm: `KIND_X =>` patterns inside
/// the decode fn. (In `kind_of`/`encode_frame` the `KIND_*` idents sit
/// in arm *bodies*, after the `=>`, so they never match this shape.)
fn decode_covered_kinds(f: &SourceFile, df: &FnItem) -> BTreeSet<String> {
    let toks = &f.toks;
    let mut covered = BTreeSet::new();
    for k in df.body.clone() {
        if toks[k].kind == TokKind::Ident
            && toks[k].text.starts_with("KIND_")
            && toks.get(k + 1).is_some_and(|t| t.is_punct('='))
            && toks.get(k + 2).is_some_and(|t| t.is_punct('>'))
        {
            covered.insert(toks[k].text.clone());
        }
    }
    covered
}

// ---------------------------------------------------------------------
// --wire-table
// ---------------------------------------------------------------------

/// Emit the kind → layout table from the parsed codec, as the markdown
/// table embedded in DESIGN.md §13. ci.sh diffs the two, so the docs
/// cannot drift from the code.
pub fn wire_table(index: &WorkspaceIndex) -> Result<String, String> {
    let ps = index
        .payload_site()
        .ok_or("no payload site (enum Payload + fn body_bytes) found")?;
    let cs = index
        .codec_sites()
        .next()
        .ok_or("no codec site (fn kind_of) found")?;
    let kf = cs
        .items
        .fn_named("kind_of")
        .ok_or("codec site lost its kind_of")?;
    let ef = cs
        .items
        .fn_named("encode_frame")
        .ok_or("codec site has no encode_frame to derive layouts from")?;
    let _ = ps; // site resolution validated; layouts come from the codec

    let km = kind_map(cs, kf);
    let consts: BTreeMap<&str, u64> = cs
        .items
        .consts
        .iter()
        .filter(|c| c.name.starts_with("KIND_"))
        .filter_map(|c| c.value.map(|v| (c.name.as_str(), v)))
        .collect();

    // variant → layout, from the encode arms
    let mut layout_by_variant: BTreeMap<String, String> = BTreeMap::new();
    for arm in first_match_arms(&cs.toks, ef.body.clone()) {
        let layout = layout_of_arm(cs, arm.body.clone());
        for k in arm.pat.clone() {
            if cs.toks[k].is_ident("Payload")
                && cs.toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && cs.toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(v) = cs.toks.get(k + 3).filter(|t| t.kind == TokKind::Ident) {
                    layout_by_variant.insert(v.text.clone(), layout.clone());
                }
            }
        }
    }

    // rows: one per wire kind, variants in kind_of arm order
    let mut variants_by_kind: Vec<(String, Vec<String>)> = Vec::new();
    for (v, kind) in &km {
        match variants_by_kind.iter_mut().find(|(k, _)| k == kind) {
            Some((_, vs)) => vs.push(v.clone()),
            None => variants_by_kind.push((kind.clone(), vec![v.clone()])),
        }
    }
    let mut rows: Vec<(u64, String)> = Vec::new();
    for (kind, vs) in &variants_by_kind {
        let Some(&val) = consts.get(kind.as_str()) else {
            return Err(format!("{kind} has no integer const value"));
        };
        let layout = vs
            .first()
            .and_then(|v| layout_by_variant.get(v))
            .cloned()
            .unwrap_or_else(|| "?".to_string());
        rows.push((
            val,
            format!("| {} | {} | {} | {} |", val, kind, vs.join(", "), layout),
        ));
    }
    rows.sort();

    let mut out = String::new();
    out.push_str("| kind | const | payload variants | body layout |\n");
    out.push_str("|---|---|---|---|\n");
    for (_, row) in &rows {
        out.push_str(row);
        out.push('\n');
    }
    Ok(out)
}

/// Derive one arm's body layout from its `put_*` calls, in call order.
/// `put_*_section` helpers expand to their known shape; scalar puts
/// are labeled from their argument (`.len()` → `count`); puts inside a
/// `for` loop become `count × <ty>` repetition.
fn layout_of_arm(f: &SourceFile, body: Range<usize>) -> String {
    let toks = &f.toks;
    let for_bodies: Vec<Range<usize>> = f
        .items
        .loops
        .iter()
        .filter(|l| l.kind == LoopKind::For && l.span.start >= body.start && l.span.end <= body.end)
        .map(|l| l.span.clone())
        .collect();

    let mut parts: Vec<String> = Vec::new();
    let mut k = body.start;
    while k < body.end {
        let t = &toks[k];
        let is_call = t.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|n| n.is_punct('('));
        if !is_call {
            k += 1;
            continue;
        }
        // argument token range: between the balanced parens
        let open = k + 1;
        let mut depth = 0i32;
        let mut close = open;
        while close < body.end {
            if toks[close].is_punct('(') {
                depth += 1;
            } else if toks[close].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        let args = open + 1..close;
        let looped = for_bodies.iter().any(|r| r.contains(&k));
        match t.text.as_str() {
            "put_f32_section" => parts.push("u32 count + count × f32".into()),
            "put_u64_section" => parts.push("u32 count + count × u64".into()),
            "put_u32_section" => parts.push("u32 count + count × u32".into()),
            "put_slice" => parts.push("count × u8".into()),
            n if n.starts_with("put_") => {
                let ty = &n[4..];
                if looped {
                    parts.push(format!("count × {ty}"));
                } else {
                    match arg_label(f, args.clone()) {
                        Some(label) => parts.push(format!("{ty} {label}")),
                        None => parts.push(ty.to_string()),
                    }
                }
            }
            _ => {}
        }
        k = close + 1;
    }
    parts.join(" + ")
}

/// A human label for a scalar put's argument: `x.len() as u32` is a
/// `count`; otherwise the last identifier that is not a cast/type/
/// receiver (`spec.version` → `version`, `*classes as u64` → `classes`).
fn arg_label(f: &SourceFile, args: Range<usize>) -> Option<String> {
    const SKIP: [&str; 10] = [
        "as", "u8", "u16", "u32", "u64", "usize", "f32", "f64", "self", "mut",
    ];
    let toks = &f.toks;
    let mut label = None;
    for k in args.clone() {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "len" && toks.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            return Some("count".into());
        }
        if !SKIP.contains(&t.text.as_str()) {
            // keep overwriting: the last qualifying ident is the field
            label = Some(t.text.clone());
        }
    }
    // `spec.version`: prefer the ident after the final `.`
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(files: &[(&str, &str)]) -> WorkspaceIndex {
        WorkspaceIndex {
            files: files
                .iter()
                .map(|(rel, src)| SourceFile::new(rel.to_string(), src))
                .collect(),
        }
    }

    const PAYLOAD: &str = "\
pub enum Payload {
    Alpha(Vec<f32>),
    Beta { tag: u32, values: Vec<f32> },
    Gamma(u64),
}
impl Payload {
    pub fn body_bytes(&self) -> u64 {
        match self {
            Payload::Alpha(v) => 4 + 4 * v.len() as u64,
            Payload::Beta { values, .. } => 8 + 4 * values.len() as u64,
            Payload::Gamma(_) => 8,
        }
    }
}
";

    const CODEC_OK: &str = "\
const KIND_ALPHA: u8 = 0;
const KIND_BETA: u8 = 1;
const KIND_GAMMA: u8 = 2;
fn kind_of(p: &Payload) -> u8 {
    match p {
        Payload::Alpha(_) => KIND_ALPHA,
        Payload::Beta { .. } => KIND_BETA,
        Payload::Gamma(_) => KIND_GAMMA,
    }
}
pub fn encode_frame(p: &Payload) -> Vec<u8> {
    let mut buf = Buf::new();
    match p {
        Payload::Alpha(v) => put_f32_section(&mut buf, v),
        Payload::Beta { tag, values } => {
            buf.put_u32(*tag);
            put_f32_section(&mut buf, values);
        }
        Payload::Gamma(code) => buf.put_u64(*code),
    }
    buf.done()
}
pub fn decode_after_len(buf: &[u8]) -> Result<Payload, Err> {
    let kind = buf[0];
    match kind {
        KIND_ALPHA => alpha(buf),
        KIND_BETA => beta(buf),
        KIND_GAMMA => gamma(buf),
        other => Err(Err::BadKind(other)),
    }
}
";

    fn run_rule(files: &[(&str, &str)]) -> Vec<(String, u32, String)> {
        let idx = index_of(files);
        let mut out = Vec::new();
        WireConformance.check(&idx, &mut out);
        out.into_iter()
            .map(|(rel, f)| (rel, f.line, f.message))
            .collect()
    }

    #[test]
    fn conformant_workspace_is_silent() {
        let f = run_rule(&[
            ("crates/comm/src/fabric.rs", PAYLOAD),
            ("crates/net/src/codec.rs", CODEC_OK),
        ]);
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn no_payload_site_means_silence() {
        let f = run_rule(&[("crates/net/src/codec.rs", CODEC_OK)]);
        assert!(f.is_empty());
    }

    #[test]
    fn deleted_decode_arm_is_one_kind_finding() {
        let mutated = CODEC_OK.replace("        KIND_GAMMA => gamma(buf),\n", "");
        let f = run_rule(&[
            ("crates/comm/src/fabric.rs", PAYLOAD),
            ("crates/net/src/codec.rs", &mutated),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("Gamma missing from decode_after_len"));
        assert!(f[0].2.contains("no KIND_GAMMA arm"));
    }

    #[test]
    fn duplicate_kind_value_fires_at_second_const() {
        let mutated = CODEC_OK.replace("const KIND_GAMMA: u8 = 2;", "const KIND_GAMMA: u8 = 1;");
        let f = run_rule(&[
            ("crates/comm/src/fabric.rs", PAYLOAD),
            ("crates/net/src/codec.rs", &mutated),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, 3); // the KIND_GAMMA const line
        assert!(f[0].2.contains("duplicate wire kind value 1"));
        assert!(f[0].2.contains("KIND_GAMMA collides with KIND_BETA"));
    }

    #[test]
    fn missing_body_bytes_arm_lands_on_payload_site() {
        let payload = PAYLOAD.replace("            Payload::Gamma(_) => 8,\n", "");
        let f = run_rule(&[
            ("crates/comm/src/fabric.rs", &payload),
            ("crates/net/src/codec.rs", CODEC_OK),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, "crates/comm/src/fabric.rs");
        assert!(f[0].2.contains("Gamma missing from body_bytes"));
    }

    #[test]
    fn shared_kind_variant_needs_no_own_decode_arm() {
        // a variant that reuses another's kind (the SharedParams idiom)
        let payload = PAYLOAD.replace(
            "    Gamma(u64),\n",
            "    Gamma(u64),\n    Mirror(Vec<f32>),\n",
        );
        let payload = payload.replace(
            "            Payload::Gamma(_) => 8,\n",
            "            Payload::Gamma(_) => 8,\n            Payload::Mirror(v) => 4 + 4 * v.len() as u64,\n",
        );
        let codec = CODEC_OK.replace(
            "        Payload::Alpha(_) => KIND_ALPHA,\n",
            "        Payload::Alpha(_) | Payload::Mirror(_) => KIND_ALPHA,\n",
        );
        let codec = codec.replace(
            "        Payload::Alpha(v) => put_f32_section(&mut buf, v),\n",
            "        Payload::Alpha(v) | Payload::Mirror(v) => put_f32_section(&mut buf, v),\n",
        );
        let f = run_rule(&[
            ("crates/comm/src/fabric.rs", &payload),
            ("crates/net/src/codec.rs", &codec),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wire_table_derives_layouts() {
        let idx = index_of(&[
            ("crates/comm/src/fabric.rs", PAYLOAD),
            ("crates/net/src/codec.rs", CODEC_OK),
        ]);
        let t = wire_table(&idx).expect("table");
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(
            lines[0],
            "| kind | const | payload variants | body layout |"
        );
        assert_eq!(
            lines[2],
            "| 0 | KIND_ALPHA | Alpha | u32 count + count × f32 |"
        );
        assert_eq!(
            lines[3],
            "| 1 | KIND_BETA | Beta | u32 tag + u32 count + count × f32 |"
        );
        assert_eq!(lines[4], "| 2 | KIND_GAMMA | Gamma | u64 code |");
    }
}
