//! Fixture self-tests: one true positive and one true negative per
//! rule, plus the suppression lifecycle (justified silences, bare
//! fires, unused fires) and a workspace-clean run against the real
//! repo.
//!
//! The fixture tree mirrors `crates/<name>/src/` so each rule's path
//! scoping is exercised exactly as it is against the real workspace.

use selsync_lint::engine::{self, Report};
use selsync_lint::json;
use std::path::Path;

fn fixtures_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

fn run_fixtures() -> Report {
    engine::run(fixtures_root(), &["crates".to_string()]).expect("fixture scan")
}

/// (rule, line) pairs of all findings (suppressed included) for one
/// fixture file.
fn findings(report: &Report, file: &str) -> Vec<(String, u32, bool)> {
    report
        .findings
        .iter()
        .filter(|f| f.path == file)
        .map(|f| (f.rule.clone(), f.line, f.suppressed))
        .collect()
}

fn rules_hit(report: &Report, file: &str) -> Vec<String> {
    findings(report, file)
        .into_iter()
        .map(|(r, _, _)| r)
        .collect()
}

#[test]
fn nondet_iteration_positive_and_negative() {
    let r = run_fixtures();
    let pos = findings(&r, "crates/comm/src/nondet_iter_pos.rs");
    assert_eq!(
        pos,
        vec![
            ("nondet-iteration".into(), 3, false),
            ("nondet-iteration".into(), 5, false),
        ]
    );
    // HashMap appears in the negative fixture only inside a string and a
    // comment; a token-aware linter must stay silent.
    assert!(rules_hit(&r, "crates/comm/src/nondet_iter_neg.rs").is_empty());
}

#[test]
fn nondet_time_positive_and_allowlisted_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/comm/src/nondet_time_pos.rs"),
        vec![("nondet-time".into(), 6, false)]
    );
    // same call, but in the allowlisted watchdog module path
    assert!(rules_hit(&r, "crates/comm/src/elastic.rs").is_empty());
    // and in the poll loop's allowlisted redial/idle-sleep module
    assert!(rules_hit(&r, "crates/net/src/poll.rs").is_empty());
}

#[test]
fn unwrap_in_prod_positive_and_test_code_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/core/src/unwrap_pos.rs"),
        vec![
            ("unwrap-in-prod".into(), 4, false),
            ("unwrap-in-prod".into(), 6, false),
        ]
    );
    // unwraps confined to #[cfg(test)] items (and unwrap_or_else) pass
    assert!(rules_hit(&r, "crates/core/src/unwrap_neg.rs").is_empty());
}

#[test]
fn unsafe_needs_safety_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/tensor/src/unsafe_nodoc_pos.rs"),
        vec![("unsafe-needs-safety".into(), 5, false)]
    );
    // SAFETY comment adjacent, or separated only by attribute lines
    assert!(rules_hit(&r, "crates/tensor/src/unsafe_doc_neg.rs").is_empty());
}

#[test]
fn unsafe_outside_kernels_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/core/src/unsafe_outside_pos.rs"),
        vec![("unsafe-outside-kernels".into(), 8, false)]
    );
    assert!(rules_hit(&r, "crates/tensor/src/unsafe_kernel_neg.rs").is_empty());
}

#[test]
fn float_order_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/nn/src/float_order_pos.rs"),
        vec![
            ("float-order".into(), 6, false),
            ("float-order".into(), 12, false),
        ]
    );
    // serial reductions, disjoint-chunk for_each, and a serial sum
    // nested inside a parallel map are all ordered
    assert!(rules_hit(&r, "crates/nn/src/float_order_neg.rs").is_empty());
}

#[test]
fn raw_net_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/comm/src/raw_net_pos.rs"),
        vec![("raw-net".into(), 3, false)]
    );
    assert!(rules_hit(&r, "crates/net/src/raw_net_neg.rs").is_empty());
}

#[test]
fn wire_wildcard_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/comm/src/wire_wildcard_pos.rs"),
        vec![("wire-wildcard".into(), 16, false)]
    );
    // exhaustive payload match, plus a wildcard over a non-protocol
    // scrutinee, both pass
    assert!(rules_hit(&r, "crates/comm/src/wire_wildcard_neg.rs").is_empty());
}

#[test]
fn compressed_payload_kinds_demand_exhaustive_matches() {
    let r = run_fixtures();
    // a catch-all over the compressed wire kinds (SparseGrad/SignGrad)
    // fires: it would silently swallow the next codec variant
    assert_eq!(
        findings(&r, "crates/comm/src/compressed_wire_pos.rs"),
        vec![("wire-wildcard".into(), 25, false)]
    );
    // the variant-by-variant match over the full pipelined/compressed
    // set (Bucket, SparseGrad, SignGrad, LowRank) stays silent
    assert!(rules_hit(&r, "crates/comm/src/compressed_wire_neg.rs").is_empty());
}

#[test]
fn net_codec_fixtures_cover_kind_matches_and_handshake_panics() {
    let r = run_fixtures();
    // in crates/net the frame `kind` byte is a protocol scrutinee: a
    // catch-all arm over it fires wire-wildcard
    assert_eq!(
        findings(&r, "crates/net/src/codec_wildcard_pos.rs"),
        vec![("wire-wildcard".into(), 9, false)]
    );
    // panicking escape hatches in handshake code fire unwrap-in-prod
    assert_eq!(
        findings(&r, "crates/net/src/handshake_unwrap_pos.rs"),
        vec![
            ("unwrap-in-prod".into(), 5, false),
            ("unwrap-in-prod".into(), 7, false),
        ]
    );
    // the real codec idiom — exhaustive kinds plus a typed BadKind
    // binding for the rest — stays silent under both rules
    assert!(rules_hit(&r, "crates/net/src/codec_total_neg.rs").is_empty());
}

#[test]
fn serve_crate_is_in_scope_with_timer_allowlisted() {
    let r = run_fixtures();
    // a serving module reading the clock directly fires nondet-time...
    assert_eq!(
        findings(&r, "crates/serve/src/deadline_pos.rs"),
        vec![("nondet-time".into(), 7, false)]
    );
    // ...but the crate's designated clock source is allowlisted, so the
    // identical call there stays silent
    assert!(rules_hit(&r, "crates/serve/src/timer.rs").is_empty());
    // and a wildcard arm in a router Payload match fires wire-wildcard
    assert_eq!(
        findings(&r, "crates/serve/src/router_wildcard_pos.rs"),
        vec![("wire-wildcard".into(), 17, false)]
    );
}

#[test]
fn shard_crate_is_in_scope_with_failover_clock_allowlisted() {
    let r = run_fixtures();
    // the partition map is replicated protocol state: nondeterministic
    // iteration and panicking escape hatches both fire in crates/shard
    assert_eq!(
        findings(&r, "crates/shard/src/partition_pos.rs"),
        vec![
            ("nondet-iteration".into(), 3, false),
            ("nondet-iteration".into(), 5, false),
            ("unwrap-in-prod".into(), 6, false),
            ("unwrap-in-prod".into(), 7, false),
        ]
    );
    assert!(rules_hit(&r, "crates/shard/src/partition_neg.rs").is_empty());
    // a wildcard arm in a sub-frame Payload match fires wire-wildcard
    assert_eq!(
        findings(&r, "crates/shard/src/route_wildcard_pos.rs"),
        vec![("wire-wildcard".into(), 16, false)]
    );
    // the sharded client's failover-deadline module reads the clock from
    // the allowlist, like the elastic watchdog beside it
    assert!(rules_hit(&r, "crates/comm/src/shard.rs").is_empty());
}

#[test]
fn justified_allow_suppresses_both_forms() {
    let r = run_fixtures();
    let f = findings(&r, "crates/comm/src/suppressed_ok.rs");
    // trailing-form nondet-time and own-line-form raw-net both silenced,
    // and no bare-allow / unused-allow hygiene findings appear
    assert_eq!(
        f,
        vec![
            ("nondet-time".into(), 6, true),
            ("raw-net".into(), 12, true)
        ]
    );
    for rec in r
        .findings
        .iter()
        .filter(|x| x.path == "crates/comm/src/suppressed_ok.rs")
    {
        assert!(rec.justification.is_some());
    }
}

#[test]
fn bare_allow_suppresses_target_but_fails_itself() {
    let r = run_fixtures();
    let f = findings(&r, "crates/comm/src/suppressed_bare.rs");
    assert_eq!(
        f,
        vec![
            ("bare-allow".into(), 6, false),
            ("nondet-time".into(), 6, true),
        ]
    );
}

#[test]
fn unused_and_unknown_allows_are_findings() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/comm/src/unused_allow.rs"),
        vec![
            ("unused-allow".into(), 4, false),
            ("unused-allow".into(), 9, false),
        ]
    );
}

#[test]
fn fixture_report_json_round_trips() {
    let r = run_fixtures();
    let j = json::to_json(&r);
    assert!(
        json::validate(&j).is_ok(),
        "emitted JSON failed self-validation"
    );
    // spot-check the schema carries the failure count
    assert!(j.contains("\"unsuppressed\""));
    assert!(j.contains("\"findings\""));
}

#[test]
fn wire_conformance_fixture_sites_are_clean() {
    let r = run_fixtures();
    // a codec in lockstep with the payload site produces nothing
    assert!(rules_hit(&r, "crates/net/src/codec_ok.rs").is_empty());
    assert!(rules_hit(&r, "crates/comm/src/payload_site.rs").is_empty());
}

#[test]
fn seeded_codec_mutations_are_caught_exactly() {
    let r = run_fixtures();
    // two seeded mutations, two findings: the duplicated KIND_DELTA
    // value at its const, and the deleted KIND_GAMMA decode arm at the
    // decode fn
    assert_eq!(
        findings(&r, "crates/net/src/codec_mutated.rs"),
        vec![
            ("wire-conformance".into(), 9, false),
            ("wire-conformance".into(), 33, false),
        ]
    );
    let msgs: Vec<&str> = r
        .findings
        .iter()
        .filter(|f| f.path == "crates/net/src/codec_mutated.rs")
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        msgs[0].contains("duplicate wire kind value 1")
            && msgs[0].contains("KIND_DELTA")
            && msgs[0].contains("KIND_BETA"),
        "unexpected duplicate-kind message: {}",
        msgs[0]
    );
    assert!(
        msgs[1].contains("variant Gamma missing from decode_after_len")
            && msgs[1].contains("KIND_GAMMA"),
        "unexpected missing-decode message: {}",
        msgs[1]
    );
}

#[test]
fn poll_blocking_positive_and_negative() {
    let r = run_fixtures();
    // the sleep in driver_loop itself, and the recv two hops down the
    // call graph (driver_loop -> sweep_once -> drain_control)
    assert_eq!(
        findings(&r, "crates/net/src/poll_blocking_pos.rs"),
        vec![
            ("poll-blocking".into(), 8, false),
            ("poll-blocking".into(), 17, false),
        ]
    );
    // try_recv is nonblocking, and blocking_setup is unreachable from
    // driver_loop, so the call graph keeps its connect out of scope
    assert!(rules_hit(&r, "crates/net/src/poll_blocking_neg.rs").is_empty());
}

#[test]
fn poll_blocking_suppression_lifecycle() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/net/src/poll_blocking_suppressed.rs"),
        vec![("poll-blocking".into(), 10, true)]
    );
    let f = r
        .findings
        .iter()
        .find(|f| f.path == "crates/net/src/poll_blocking_suppressed.rs")
        .expect("suppressed finding recorded");
    assert_eq!(
        f.justification.as_deref(),
        Some("bounded idle backoff between sweeps")
    );
}

#[test]
fn unbounded_retry_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/net/src/retry_unbounded_pos.rs"),
        vec![("unbounded-retry".into(), 5, false)]
    );
    // deadline/backoff-capped while loop and attempt-capped for loop
    assert!(rules_hit(&r, "crates/net/src/retry_bounded_neg.rs").is_empty());
}

#[test]
fn lock_across_send_positive_and_negative() {
    let r = run_fixtures();
    assert_eq!(
        findings(&r, "crates/comm/src/lock_send_pos.rs"),
        vec![("lock-across-send".into(), 7, false)]
    );
    // drop(guard) before send, and a guard confined to an inner block
    assert!(rules_hit(&r, "crates/comm/src/lock_send_neg.rs").is_empty());
}

#[test]
fn real_workspace_wire_table_derives() {
    // the cross-file analysis must resolve the real payload + codec
    // sites and derive a complete table: 14 wire kinds, plus the
    // header and separator rows
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let subs: Vec<String> = engine::DEFAULT_ROOTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let index = engine::load_index(root, &subs).expect("workspace scan");
    let table = selsync_lint::wire::wire_table(&index).expect("wire table derivation");
    assert_eq!(table.lines().count(), 16, "table:\n{table}");
    assert!(table.contains("| 0 | KIND_PARAMS | Params, SharedParams |"));
    assert!(table.contains("| 13 | KIND_LOW_RANK |"));
}

#[test]
fn committed_baseline_matches_workspace() {
    // ci.sh enforces this too, but keep the drift check in-tree: the
    // committed baseline must parse and exactly match today's findings
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("committed lint-baseline.json");
    let base = selsync_lint::baseline::parse(&text).expect("baseline parses");
    let subs: Vec<String> = engine::DEFAULT_ROOTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = engine::run(root, &subs).expect("workspace scan");
    let d = selsync_lint::baseline::diff(&report, &base);
    assert!(
        d.clean(),
        "baseline drift: {} new, {} stale — regenerate with --write-baseline",
        d.new.len(),
        d.stale.len()
    );
}

#[test]
fn real_workspace_is_clean() {
    // the acceptance bar: the linter runs over the actual repo and every
    // finding is suppressed with a written justification
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let subs: Vec<String> = engine::DEFAULT_ROOTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = engine::run(root, &subs).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan found too few files");
    let loud: Vec<_> = report.unsuppressed().collect();
    assert!(
        loud.is_empty(),
        "unsuppressed findings in the workspace:\n{}",
        engine::format_human(&report)
    );
    for f in report.findings.iter().filter(|f| f.suppressed) {
        assert!(
            f.justification.is_some(),
            "{}:{} {} suppressed without justification",
            f.path,
            f.line,
            f.rule
        );
    }
}
