// fixture: true negative for poll-blocking — the driver uses try_recv
// (nonblocking), and the blocking connect lives in a setup path the
// driver loop never calls, so the call graph keeps it out of scope.
pub fn driver_loop(endpoint: &mut Endpoint) {
    loop {
        if let Ok(msg) = endpoint.control.try_recv() {
            endpoint.apply(msg);
        }
        if endpoint.queue_empty() {
            return;
        }
    }
}

pub fn blocking_setup(addr: &str) -> Endpoint {
    let stream = TcpStream::connect(addr);
    Endpoint::new(stream)
}
