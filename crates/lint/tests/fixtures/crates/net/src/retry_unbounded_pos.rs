// fixture: true positive for unbounded-retry — a redial loop whose
// head and body reference no deadline, timeout, backoff, attempt cap
// or budget: a dead peer spins this rank forever.
pub fn keep_dialing(addr: &str) -> Stream {
    loop {
        if let Ok(s) = dial(addr) {
            return s;
        }
    }
}
