// fixture: true negative for unbounded-retry — the same redial shape,
// but capped by a deadline with a growing backoff in one loop and an
// attempt budget in the other.
pub fn dial_until(addr: &str, deadline: Tick) -> Option<Stream> {
    let mut backoff = MIN_BACKOFF;
    while now() < deadline {
        if let Ok(s) = dial(addr) {
            return Some(s);
        }
        backoff = grow(backoff);
    }
    None
}

pub fn dial_attempts(addr: &str, attempts: u32) -> Option<Stream> {
    for _ in 0..attempts {
        if let Ok(s) = dial(addr) {
            return Some(s);
        }
    }
    None
}
