// fixture: true positive for unwrap-in-prod in handshake-shaped code —
// a version check that panics on mismatch kills the dialing rank
// instead of surfacing a typed VersionMismatch error.
fn accept_handshake(bytes: &[u8]) -> u16 {
    let magic: [u8; 4] = bytes[..4].try_into().unwrap();
    if magic != *b"SSYN" {
        panic!("bad magic");
    }
    u16::from_be_bytes([bytes[4], bytes[5]])
}
