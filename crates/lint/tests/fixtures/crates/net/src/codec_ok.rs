// fixture: true negative for wire-conformance — a codec site in
// lockstep with the payload-site fixture in crates/comm: every
// variant has a kind_of arm, an encode arm, a decode arm, and a
// unique KIND_* constant.
const KIND_ALPHA: u8 = 0;
const KIND_BETA: u8 = 1;
const KIND_GAMMA: u8 = 2;
const KIND_DELTA: u8 = 3;

fn kind_of(p: &Payload) -> u8 {
    match p {
        Payload::Alpha(_) => KIND_ALPHA,
        Payload::Beta { .. } => KIND_BETA,
        Payload::Gamma(_) => KIND_GAMMA,
        Payload::Delta(_) => KIND_DELTA,
    }
}

pub fn encode_frame(buf: &mut Vec<u8>, p: &Payload) {
    buf.push(kind_of(p));
    match p {
        Payload::Alpha(v) => put_f32_section(buf, v),
        Payload::Beta { tag, values } => {
            put_u32(buf, *tag);
            put_f32_section(buf, values);
        }
        Payload::Gamma(code) => put_u64(buf, *code),
        Payload::Delta(bits) => put_slice(buf, bits),
    }
}

pub fn decode_after_len(kind: u8, body: &[u8]) -> Result<Payload, FrameError> {
    match kind {
        KIND_ALPHA => get_alpha(body),
        KIND_BETA => get_beta(body),
        KIND_GAMMA => get_gamma(body),
        KIND_DELTA => get_delta(body),
        other => Err(FrameError::BadKind(other)),
    }
}
