// fixture: true negative for raw-net — crates/net is the transport
// layer, the one place allowed to touch std::net.
use std::net::TcpStream;

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
