// fixture: true negative for nondet-time — this path IS the allowlisted
// event-driven poll-loop module crates/net/src/poll.rs, whose redial
// pacing and idle-sleep scheduling may read the clock.
use std::time::{Duration, Instant};

fn next_redial(backoff: Duration) -> Instant {
    Instant::now() + backoff
}
