// fixture: true positive for wire-wildcard in the codec — a catch-all
// arm over the frame `kind` byte silently discards any payload kind
// added to the wire protocol later instead of rejecting it as a typed
// BadKind error.
fn decode_kind(kind: u8) -> Option<&'static str> {
    match kind {
        0 => Some("params"),
        1 => Some("grads"),
        _ => None,
    }
}
