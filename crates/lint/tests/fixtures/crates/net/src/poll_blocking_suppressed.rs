// fixture: suppression lifecycle for poll-blocking — a justified
// lint:allow silences the deliberate bounded idle sleep, and no
// bare-allow / unused-allow hygiene findings appear.
pub fn driver_loop(endpoint: &mut Endpoint) {
    loop {
        if endpoint.sweep() {
            continue;
        }
        // lint:allow(poll-blocking): bounded idle backoff between sweeps
        std::thread::sleep(endpoint.idle);
        if endpoint.done() {
            return;
        }
    }
}
