// fixture: true positive for poll-blocking — the driver loop itself
// sleeps, and a helper reachable from it does a blocking channel recv.
// Either one stalls every connection the single driver thread
// multiplexes.
pub fn driver_loop(endpoint: &mut Endpoint) {
    loop {
        sweep_once(endpoint);
        std::thread::sleep(endpoint.idle);
    }
}

fn sweep_once(endpoint: &mut Endpoint) {
    drain_control(endpoint);
}

fn drain_control(endpoint: &mut Endpoint) {
    while let Ok(msg) = endpoint.control.recv() {
        endpoint.apply(msg);
    }
}
