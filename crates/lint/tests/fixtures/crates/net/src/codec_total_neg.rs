// fixture: true negative — a total decoder in the real codec's idiom:
// the `kind` match lists every wire variant explicitly and surfaces an
// unknown byte as a typed error binding, never a wildcard or a panic.
enum FrameError {
    BadKind(u8),
}

fn decode_kind(kind: u8) -> Result<&'static str, FrameError> {
    match kind {
        0 => Ok("params"),
        1 => Ok("grads"),
        k => Err(FrameError::BadKind(k)),
    }
}
