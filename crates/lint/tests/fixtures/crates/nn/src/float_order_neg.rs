// fixture: true negative for float-order — serial reductions are
// always ordered, and a parallel for_each over disjoint chunks does not
// combine partials at all (each chunk runs byte-identical code).
use rayon::prelude::*;

fn grad_norm_sq(grads: &[f32]) -> f32 {
    grads.iter().map(|g| g * g).sum::<f32>()
}

fn scale(out: &mut [f32], k: f32) {
    out.par_chunks_mut(1024).for_each(|chunk| {
        for x in chunk {
            *x *= k;
        }
    });
}

fn serial_sum_inside_parallel_map(rows: &[Vec<f32>]) -> Vec<f32> {
    rows.par_iter().map(|row| row.iter().sum::<f32>()).collect()
}
