// fixture: true positive for float-order — an unordered parallel float
// reduction whose combine order depends on the scheduler.
use rayon::prelude::*;

fn grad_norm_sq(grads: &[f32]) -> f32 {
    grads.par_iter().map(|g| g * g).sum::<f32>()
}

fn total(loss_parts: Vec<f32>) -> f32 {
    loss_parts
        .into_par_iter()
        .reduce(|| 0.0, |a, b| a + b)
}
