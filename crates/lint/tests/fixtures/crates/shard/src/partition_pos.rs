// fixture: true positives in the shard crate — the partition map is
// replicated protocol state, so the determinism rules apply here too.
use std::collections::HashMap;

fn owners(by_rank: &HashMap<usize, u64>) -> u64 {
    let first = by_rank.keys().next().unwrap();
    *by_rank.get(first).unwrap()
}
