// fixture: true negative — BTreeMap iteration is deterministic and the
// missing-shard case is returned as an Option, not unwrapped.
use std::collections::BTreeMap;

fn owners(by_rank: &BTreeMap<usize, u64>) -> Option<u64> {
    by_rank.values().next().copied()
}
