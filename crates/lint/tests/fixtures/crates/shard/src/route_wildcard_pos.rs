// fixture: true positive for wire-wildcard in the shard crate — a
// catch-all arm in a sub-frame router would silently drop any variant
// added to the wire protocol later.
enum Payload {
    ShardPush(Vec<f32>),
    ShardPull(Vec<f32>),
}

struct Message {
    payload: Payload,
}

fn is_push(m: Message) -> bool {
    match m.payload {
        Payload::ShardPush(_) => true,
        _ => false,
    }
}
