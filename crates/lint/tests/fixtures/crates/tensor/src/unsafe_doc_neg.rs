// fixture: true negative for unsafe-needs-safety — every unsafe is
// immediately preceded by a SAFETY comment, including one separated
// only by attribute lines and one with a multi-line comment block.
fn first(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees xs has at least one element,
    // so reading element zero is in bounds.
    unsafe { *xs.as_ptr() }
}

// SAFETY: unsafe only because of #[target_feature]; the caller is gated
// on runtime CPU-feature detection.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel(x: f32) -> f32 {
    x
}
