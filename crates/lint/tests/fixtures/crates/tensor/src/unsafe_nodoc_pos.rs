// fixture: true positive for unsafe-needs-safety — an unsafe block with
// no SAFETY comment (in crates/tensor, so unsafe-outside-kernels stays
// quiet and this fixture isolates one rule).
fn first(xs: &[f32]) -> f32 {
    unsafe { *xs.as_ptr() }
}
