// fixture: true negative for unsafe-outside-kernels — unsafe is
// permitted inside crates/tensor (SIMD kernels live here).
fn first(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees one element.
    unsafe { *xs.as_ptr() }
}
