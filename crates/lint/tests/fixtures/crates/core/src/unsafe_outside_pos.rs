// fixture: true positive for unsafe-outside-kernels — unsafe in a crate
// that is neither crates/tensor nor crates/net. The SAFETY comment is
// present so unsafe-needs-safety stays quiet and this fixture isolates
// one rule.
fn first(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees one element.
    unsafe { *xs.as_ptr() }
}
