// fixture: true negative for unwrap-in-prod — fallible handling in
// production code; unwraps confined to #[cfg(test)] items.
fn load(path: &str) -> Result<Vec<u8>, std::io::Error> {
    let bytes = std::fs::read(path)?;
    Ok(bytes)
}

fn fallback(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn loads() {
        super::load("/dev/null").unwrap();
        assert!(super::fallback(None) == 7, "{}", "fallback".to_string());
    }
}
