// fixture: true positive for unwrap-in-prod — panicking escape hatches
// in production code of a distributed-stack crate.
fn load(path: &str) -> Vec<u8> {
    let bytes = std::fs::read(path).unwrap();
    if bytes.is_empty() {
        panic!("empty checkpoint");
    }
    bytes
}
