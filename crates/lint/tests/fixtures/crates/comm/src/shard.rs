// fixture: true negative for nondet-time — the sharded client's
// per-shard failover deadlines live in crates/comm/src/shard.rs, which
// is on the clock allowlist exactly like the elastic watchdog beside it.
use std::time::Instant;

pub fn failover_deadline() -> Instant {
    Instant::now()
}
