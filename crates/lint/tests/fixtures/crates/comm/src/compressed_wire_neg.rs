// fixture: true negative for wire-wildcard over the grown wire format —
// a match covering the pipelined/compressed payload kinds (Bucket,
// SparseGrad, SignGrad, LowRank) variant by variant, so the next codec
// addition becomes a compile error at this site instead of silently
// falling into a catch-all.
enum Payload {
    Params(Vec<f32>),
    Bucket {
        bucket: u32,
        n_buckets: u32,
        values: Vec<f32>,
    },
    SparseGrad {
        len: u32,
        indices: Vec<u32>,
        values: Vec<f32>,
    },
    SignGrad {
        len: u32,
        scale: f32,
        bits: Vec<u8>,
    },
    LowRank {
        rows: u32,
        cols: u32,
        rank: u32,
        factors: Vec<f32>,
    },
}

struct Message {
    payload: Payload,
}

fn densifiable(m: &Message) -> bool {
    match &m.payload {
        Payload::Params(_) | Payload::Bucket { .. } => false,
        Payload::SparseGrad { .. } | Payload::SignGrad { .. } | Payload::LowRank { .. } => true,
    }
}
