// fixture: true positive for lock-across-send — the state guard is
// still live when the transport send happens, so one slow peer stalls
// every thread contending on the state mutex.
pub fn broadcast(state: &Mutex<State>, transport: &Transport) -> Result<(), SendError> {
    let guard = state.lock();
    let frame = guard.snapshot();
    transport.send(frame)
}
