// fixture: a bare allow (no justification) still suppresses the target
// finding but raises an unsuppressable bare-allow finding of its own.
use std::time::Instant;

fn probe_latency() -> u128 {
    let t0 = Instant::now(); // lint:allow(nondet-time)
    t0.elapsed().as_micros()
}
