// fixture: true negative for nondet-time — this path IS the allowlisted
// timeout/watchdog module crates/comm/src/elastic.rs, where liveness
// deadlines may read the clock.
use std::time::{Duration, Instant};

fn eviction_deadline(grace: Duration) -> Instant {
    Instant::now() + grace
}
