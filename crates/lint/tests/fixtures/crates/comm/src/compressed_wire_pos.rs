// fixture: true positive for wire-wildcard over the grown wire format —
// the catch-all arm would silently swallow the next compressed codec
// variant (the exact bug exhaustive matching exists to prevent).
enum Payload {
    Params(Vec<f32>),
    SparseGrad {
        len: u32,
        indices: Vec<u32>,
        values: Vec<f32>,
    },
    SignGrad {
        len: u32,
        scale: f32,
        bits: Vec<u8>,
    },
}

struct Message {
    payload: Payload,
}

fn compressed(m: &Message) -> bool {
    match &m.payload {
        Payload::SparseGrad { .. } | Payload::SignGrad { .. } => true,
        _ => false,
    }
}
