// fixture: true negative for nondet-iteration — BTreeMap iterates in
// key order, and the word HashMap below only appears where a
// token-aware linter must not look: a string and this comment: HashMap.
use std::collections::BTreeMap;

fn membership_fingerprint(seen: &BTreeMap<usize, u64>) -> u64 {
    let banner = "deterministic, unlike a HashMap";
    let mut acc = banner.len() as u64;
    for (rank, step) in seen.iter() {
        acc ^= (*rank as u64).wrapping_mul(*step);
    }
    acc
}
