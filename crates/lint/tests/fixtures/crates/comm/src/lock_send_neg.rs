// fixture: true negative for lock-across-send — the guard is dropped
// (explicitly, or by ending its block) before the transport send, so
// the lock is never held across peer-paced I/O.
pub fn broadcast(state: &Mutex<State>, transport: &Transport) -> Result<(), SendError> {
    let guard = state.lock();
    let frame = guard.snapshot();
    drop(guard);
    transport.send(frame)
}

pub fn broadcast_scoped(state: &Mutex<State>, transport: &Transport) -> Result<(), SendError> {
    let frame = {
        let guard = state.lock();
        guard.snapshot()
    };
    transport.send(frame)
}
