// fixture: true negative for wire-wildcard — the payload match lists
// every variant explicitly (new variants become compile errors), and a
// wildcard over a non-protocol enum is fine.
enum Payload {
    Params(Vec<f32>),
    Control(u8),
}

struct Message {
    payload: Payload,
}

fn route(m: Message) -> bool {
    match m.payload {
        Payload::Control(_) => true,
        Payload::Params(_) => false,
    }
}

fn bucket(n: u32) -> &'static str {
    match n {
        0 => "zero",
        _ => "many",
    }
}
