// fixture: true positive for nondet-time — a wall-clock read in a comm
// module that is not on the timeout/watchdog allowlist.
use std::time::Instant;

fn decide_sync() -> bool {
    Instant::now().elapsed().as_millis() % 2 == 0
}
