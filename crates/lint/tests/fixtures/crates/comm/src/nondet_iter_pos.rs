// fixture: true positive for nondet-iteration — HashMap in a protocol
// crate path.
use std::collections::HashMap;

fn membership_fingerprint(seen: &HashMap<usize, u64>) -> u64 {
    let mut acc = 0u64;
    for (rank, step) in seen.iter() {
        acc ^= (*rank as u64).wrapping_mul(*step);
    }
    acc
}
