// fixture: an allow that silences nothing (or names an unknown rule)
// raises unused-allow.
fn add(a: u32, b: u32) -> u32 {
    // lint:allow(nondet-time): nothing on the next line reads a clock
    a + b
}

fn sub(a: u32, b: u32) -> u32 {
    // lint:allow(no-such-rule): this rule name does not exist
    a - b
}
