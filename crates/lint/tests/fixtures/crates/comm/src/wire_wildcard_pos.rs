// fixture: true positive for wire-wildcard — a catch-all arm in a
// Payload match silently drops any variant added to the wire protocol
// later.
enum Payload {
    Params(Vec<f32>),
    Control(u8),
}

struct Message {
    payload: Payload,
}

fn route(m: Message) -> bool {
    match m.payload {
        Payload::Control(_) => true,
        _ => false,
    }
}
