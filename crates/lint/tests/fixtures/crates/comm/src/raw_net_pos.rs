// fixture: true positive for raw-net — direct socket use outside the
// transport crate.
use std::net::TcpStream;

fn dial(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
