// fixture: the fixture workspace's protocol-definition site — the
// `Payload` enum plus its byte accounting, mirroring
// crates/comm/src/fabric.rs. The wire-conformance codec fixtures in
// crates/net/src are cross-checked against this enum.
pub enum Payload {
    Alpha(Vec<f32>),
    Beta { tag: u32, values: Vec<f32> },
    Gamma(u64),
    Delta(Vec<u8>),
}

impl Payload {
    pub fn body_bytes(&self) -> u64 {
        match self {
            Payload::Alpha(v) => 4 + 4 * v.len() as u64,
            Payload::Beta { values, .. } => 4 + 4 + 4 * values.len() as u64,
            Payload::Gamma(_) => 8,
            Payload::Delta(bits) => 4 + bits.len() as u64,
        }
    }

    pub fn wire_bytes(&self) -> u64 {
        17 + self.body_bytes() + 4
    }
}
