// fixture: a justified suppression silences its finding — both the
// trailing form and the own-line form.
use std::time::Instant;

fn probe_latency() -> u128 {
    let t0 = Instant::now(); // lint:allow(nondet-time): latency probe is diagnostics-only, never feeds control flow
    t0.elapsed().as_micros()
}

fn dial(addr: &str) -> bool {
    // lint:allow(raw-net): fixture exercising the own-line suppression form
    std::net::TcpStream::connect(addr).is_ok()
}
