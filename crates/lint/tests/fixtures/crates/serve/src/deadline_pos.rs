// fixture: true positive for nondet-time — a serving module reading
// the wall clock directly instead of taking an Instant from the
// crate's allowlisted timer module.
use std::time::Instant;

fn batch_is_due(deadline_ms: u128) -> bool {
    Instant::now().elapsed().as_millis() >= deadline_ms
}
