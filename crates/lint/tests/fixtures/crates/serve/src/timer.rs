// fixture: true negative for nondet-time — this path IS the serving
// tier's allowlisted clock source crates/serve/src/timer.rs; every
// other serve module takes Instants from here.
use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
