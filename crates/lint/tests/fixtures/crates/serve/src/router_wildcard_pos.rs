// fixture: true positive for wire-wildcard — a serving router match
// over Payload with a catch-all arm would silently drop any variant
// added to the wire protocol later (exactly how a new Predict/Logits
// kind could vanish into a router built before it existed).
enum Payload {
    Predict(Vec<f32>),
    Logits(Vec<f32>),
}

struct Message {
    payload: Payload,
}

fn route(m: Message) -> usize {
    match m.payload {
        Payload::Predict(d) => d.len(),
        _ => 0,
    }
}
