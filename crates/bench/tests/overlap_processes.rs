//! End-to-end acceptance for the pipelined bucketed push and the
//! event-driven poll fabric (DESIGN.md §12): spawn real `selsync_dist`
//! OS processes (2 workers + 1 PS on localhost TCP) and check that the
//! same-seed run is **bit-identical** — fingerprint-for-fingerprint —
//! across every combination of push layout (monolithic vs bucketed)
//! and fabric (blocking thread-per-connection vs single-thread poll
//! loop), including a mixed-fabric cluster. The bucketed pipeline and
//! the poll loop are allowed to change scheduling, threading and frame
//! boundaries; they are not allowed to change a single bit of the
//! result.

use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

const TRAINING_FLAGS: &[&str] = &[
    "--model",
    "vgg",
    "--strategy",
    "bsp",
    "--aggregation",
    "ga",
    "--steps",
    "12",
    "--batch",
    "8",
    "--data",
    "96",
    "--eval-every",
    "12",
    "--seed",
    "42",
    "--workers",
    "2",
];

/// Reserve `n` distinct loopback ports below the kernel's ephemeral
/// range (see dist_processes.rs for why port-0 probing is unsafe here).
fn free_ports(n: usize) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PORT_CURSOR: AtomicUsize = AtomicUsize::new(0);
    let base = 33000 + (std::process::id() as usize % 4000);
    let mut held = Vec::new();
    let mut addrs = Vec::new();
    while addrs.len() < n {
        let port = base + PORT_CURSOR.fetch_add(1, Ordering::Relaxed) % 5000;
        if let Ok(l) = TcpListener::bind(("127.0.0.1", port as u16)) {
            addrs.push(format!("127.0.0.1:{port}"));
            held.push(l);
        }
    }
    addrs
}

fn spawn_rank(role: &str, rank: usize, peers: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_selsync_dist"))
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--peers",
            peers,
        ])
        .args(TRAINING_FLAGS)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn selsync_dist")
}

fn stdout_field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in output:\n{stdout}"))
        .to_string()
}

/// One cluster run's observable identity: the PS's and worker 0's
/// `params_fingerprint` lines (FNV over the exact f32 bit patterns).
struct ClusterResult {
    ps_fingerprint: String,
    w0_fingerprint: String,
}

/// Run 2 workers + 1 PS to completion; `per_rank_extra[rank]` lets a
/// caller give each rank different fabric flags (mixed-fabric interop).
fn run_cluster(per_rank_extra: [&[&str]; 3]) -> ClusterResult {
    let peers = free_ports(3).join(",");
    let ps = spawn_rank("ps", 2, &peers, per_rank_extra[2]);
    let w0 = spawn_rank("worker", 0, &peers, per_rank_extra[0]);
    let w1 = spawn_rank("worker", 1, &peers, per_rank_extra[1]);
    let ps_out = ps.wait_with_output().unwrap();
    let w0_out = w0.wait_with_output().unwrap();
    let w1_out = w1.wait_with_output().unwrap();
    for (name, out) in [
        ("ps", &ps_out),
        ("worker 0", &w0_out),
        ("worker 1", &w1_out),
    ] {
        assert!(
            out.status.success(),
            "{name} exited nonzero; stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let ps_stdout = String::from_utf8(ps_out.stdout).unwrap();
    let w0_stdout = String::from_utf8(w0_out.stdout).unwrap();
    ClusterResult {
        ps_fingerprint: stdout_field(&ps_stdout, "params_fingerprint"),
        w0_fingerprint: stdout_field(&w0_stdout, "params_fingerprint"),
    }
}

fn assert_same(a: &ClusterResult, b: &ClusterResult, what: &str) {
    assert_eq!(
        a.ps_fingerprint, b.ps_fingerprint,
        "{what}: PS params diverged"
    );
    assert_eq!(
        a.w0_fingerprint, b.w0_fingerprint,
        "{what}: worker 0 params diverged"
    );
}

#[test]
fn bucketed_and_poll_fabric_runs_are_bit_identical_to_the_baseline() {
    // the baseline: monolithic pushes over the blocking fabric
    let baseline = run_cluster([&[], &[], &[]]);

    // bucketed pipelined pushes (1000-value Bucket frames) — the
    // tentpole bit-identity claim, across real OS processes
    let bucketed = run_cluster([
        &["--overlap-buckets", "1000"],
        &["--overlap-buckets", "1000"],
        &["--overlap-buckets", "1000"],
    ]);
    assert_same(&baseline, &bucketed, "bucketed vs monolithic");

    // the event-driven poll fabric on every rank
    let polled = run_cluster([
        &["--fabric", "poll"],
        &["--fabric", "poll"],
        &["--fabric", "poll"],
    ]);
    assert_same(&baseline, &polled, "poll fabric vs blocking fabric");

    // both at once, on a *mixed* cluster: worker 0 and the PS speak the
    // poll loop, worker 1 the blocking fabric — same wire protocol, so
    // same bits
    let mixed = run_cluster([
        &["--fabric", "poll", "--overlap-buckets", "500"],
        &["--overlap-buckets", "500"],
        &["--fabric", "poll", "--overlap-buckets", "500"],
    ]);
    assert_same(&baseline, &mixed, "mixed fabrics + buckets vs baseline");
}
