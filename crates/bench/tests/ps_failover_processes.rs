//! Process-level parameter-server failover acceptance: real
//! `selsync_dist` OS processes on localhost TCP, a PS killed with
//! SIGKILL mid-run, and a respawn from the durable checkpoint.
//!
//! Two properties, completing the recovery story that
//! `dist_processes.rs` (fault-free) and `chaos_processes.rs` (worker
//! faults) leave open:
//!
//! 1. **SIGKILL failover** — the PS process is killed mid-run with no
//!    warning, a replacement is spawned with `--resume` on the same
//!    advertised port, the workers ride out the outage (no eviction, no
//!    hang, no fatal exit), and the finished run is bit-identical to a
//!    fault-free run of the same seed and plan.
//! 2. **Scheduled-crash determinism** — a `server_crash` entry in the
//!    shared fault plan makes the PS crash mid-sync and restart itself
//!    from the checkpoint; two independent runs reproduce each other
//!    and the fault-free run bit-for-bit.

use selsync_chaos::FaultPlan;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserve `n` distinct loopback ports *below* the kernel's ephemeral
/// range (same rationale and allocator as `dist_processes.rs`, with a
/// disjoint base so concurrent test binaries cannot collide).
fn free_ports(n: usize) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PORT_CURSOR: AtomicUsize = AtomicUsize::new(0);
    let base = 25000 + (std::process::id() as usize % 1900);
    let mut held = Vec::new();
    let mut addrs = Vec::new();
    while addrs.len() < n {
        let port = base + PORT_CURSOR.fetch_add(1, Ordering::Relaxed) % 1900;
        if let Ok(l) = TcpListener::bind(("127.0.0.1", port as u16)) {
            addrs.push(format!("127.0.0.1:{port}"));
            held.push(l);
        }
    }
    addrs
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("selsync_psfail_{}_{name}", std::process::id()));
    p
}

/// Spawn one rank with the shared training recipe. Liveness is tuned
/// for a PS outage of a few seconds: reply timeout 2 s per attempt
/// (round 400 ms × (3+2)) and a 30 s worker patience budget, so the
/// kill→respawn gap stalls the workers instead of evicting them.
fn spawn_rank(role: &str, rank: usize, peers: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_selsync_dist"))
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--peers",
            peers,
        ])
        .args([
            "--model",
            "vgg",
            "--strategy",
            "selsync",
            "--delta",
            "0.25",
            "--steps",
            "12",
            "--batch",
            "8",
            "--data",
            "96",
            "--eval-every",
            "12",
            "--seed",
            "42",
            "--elastic",
            "--round-timeout-ms",
            "400",
            "--max-missed",
            "3",
            "--ps-patience-ms",
            "30000",
            "--recv-timeout",
            "120",
            "--workers",
            "2",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn selsync_dist")
}

/// Extract `key=value` from stdout (pairs may share a line).
fn field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .flat_map(|l| l.split_whitespace())
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in output:\n{stdout}"))
        .to_string()
}

struct ClusterRun {
    ps: String,
    workers: Vec<String>,
    codes: Vec<i32>,
    stderr: String,
}

/// Collect every rank's stdout and exit code (PS first in `codes`),
/// plus concatenated stderr for failure diagnostics.
fn collect(ps: Child, workers: Vec<Child>) -> ClusterRun {
    let ps_out = ps.wait_with_output().unwrap();
    let mut codes = vec![ps_out.status.code().unwrap_or(-1)];
    let mut stderr = String::from_utf8_lossy(&ps_out.stderr).into_owned();
    let mut worker_stdout = Vec::new();
    for w in workers {
        let out = w.wait_with_output().unwrap();
        codes.push(out.status.code().unwrap_or(-1));
        worker_stdout.push(String::from_utf8(out.stdout).unwrap());
        stderr.push_str(&String::from_utf8_lossy(&out.stderr));
    }
    ClusterRun {
        ps: String::from_utf8(ps_out.stdout).unwrap(),
        workers: worker_stdout,
        codes,
        stderr,
    }
}

/// One PS + two workers, no kill, shared fault plan — the reference
/// every failover run must reproduce bit-for-bit.
fn run_reference(plan_path: &str, extra_ps: &[&str]) -> ClusterRun {
    let peers = free_ports(3).join(",");
    let mut ps_flags = vec!["--fault-plan", plan_path];
    ps_flags.extend_from_slice(extra_ps);
    let ps = spawn_rank("ps", 2, &peers, &ps_flags);
    let workers = (0..2)
        .map(|r| spawn_rank("worker", r, &peers, &["--fault-plan", plan_path]))
        .collect();
    collect(ps, workers)
}

fn assert_bit_identical(run: &ClusterRun, reference: &ClusterRun) {
    assert_eq!(
        field(&run.workers[0], "decisions"),
        field(&reference.workers[0], "decisions"),
        "sync decisions must match the fault-free run"
    );
    for w in 0..2 {
        assert_eq!(
            field(&run.workers[w], "params_fingerprint"),
            field(&reference.workers[w], "params_fingerprint"),
            "worker {w} params must be bit-identical to the fault-free run"
        );
    }
    assert_eq!(
        field(&run.ps, "params_fingerprint"),
        field(&reference.ps, "params_fingerprint"),
        "global params must be bit-identical to the fault-free run"
    );
}

#[test]
fn sigkill_ps_mid_run_resume_is_bit_identical_to_fault_free() {
    // a 50 ms straggler on worker 0 paces the run (wall-clock only —
    // chaos delays never change the training math), guaranteeing the
    // kill lands mid-run rather than after the last step
    let plan = FaultPlan::slow_straggler(17, 0, 50);
    let plan_path = tmp("sigkill_plan.json");
    std::fs::write(&plan_path, plan.to_json()).unwrap();
    let plan_str = plan_path.to_str().unwrap().to_string();

    let ckpt = tmp("sigkill.ckpt");
    let prev = selsync_core::checkpoint::prev_path(&ckpt);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&prev).ok();
    let ckpt_str = ckpt.to_str().unwrap().to_string();

    let peers = free_ports(3).join(",");
    let mut ps = spawn_rank(
        "ps",
        2,
        &peers,
        &["--fault-plan", &plan_str, "--checkpoint", &ckpt_str],
    );
    let workers: Vec<Child> = (0..2)
        .map(|r| spawn_rank("worker", r, &peers, &["--fault-plan", &plan_str]))
        .collect();

    // wait for the first durable sync generation, then SIGKILL the PS
    // with no warning — possibly mid-round, possibly mid-write
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(
            Instant::now() < deadline,
            "PS never wrote a checkpoint generation"
        );
        assert!(
            ps.try_wait().unwrap().is_none(),
            "PS exited before writing a checkpoint"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(50));
    ps.kill().expect("SIGKILL the ps");
    ps.wait().unwrap();

    // respawn on the same advertised port, resuming from the checkpoint
    let ps2 = spawn_rank(
        "ps",
        2,
        &peers,
        &["--fault-plan", &plan_str, "--resume", &ckpt_str],
    );
    let run = collect(ps2, workers);
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&prev).ok();

    assert_eq!(
        run.codes,
        vec![0, 0, 0],
        "no rank may hang, panic or exit fatally; stderr:\n{}",
        run.stderr
    );
    assert_eq!(field(&run.ps, "recovery"), "ps_resumed");
    assert_eq!(
        field(&run.ps, "evictions"),
        "",
        "the outage must stall workers, not evict them; ps stdout:\n{}",
        run.ps
    );

    let reference = run_reference(&plan_str, &[]);
    std::fs::remove_file(&plan_path).ok();
    assert_eq!(
        reference.codes,
        vec![0, 0, 0],
        "reference run failed; stderr:\n{}",
        reference.stderr
    );
    assert_bit_identical(&run, &reference);
}

#[test]
fn scheduled_server_crash_reproduces_and_matches_fault_free() {
    // crash the PS mid-sync at step 1 (early steps always sync under
    // δ = 0.25, so the point is guaranteed to fire and a durable
    // generation already exists), restart in-process after 150 ms
    let plan = FaultPlan::crash_server(23, 1, 150);
    let plan_path = tmp("server_crash_plan.json");
    std::fs::write(&plan_path, plan.to_json()).unwrap();
    let plan_str = plan_path.to_str().unwrap().to_string();

    let run_crash = |name: &str| {
        let ckpt = tmp(name);
        let prev = selsync_core::checkpoint::prev_path(&ckpt);
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&prev).ok();
        let peers = free_ports(3).join(",");
        let ps = spawn_rank(
            "ps",
            2,
            &peers,
            &[
                "--fault-plan",
                &plan_str,
                "--checkpoint",
                ckpt.to_str().unwrap(),
            ],
        );
        let workers = (0..2)
            .map(|r| spawn_rank("worker", r, &peers, &["--fault-plan", &plan_str]))
            .collect();
        let run = collect(ps, workers);
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&prev).ok();
        run
    };

    let a = run_crash("crash_a.ckpt");
    let b = run_crash("crash_b.ckpt");
    for (label, run) in [("A", &a), ("B", &b)] {
        assert_eq!(
            run.codes,
            vec![0, 0, 0],
            "run {label} exit codes; stderr:\n{}",
            run.stderr
        );
        assert_eq!(
            field(&run.ps, "recovery"),
            "ps_resumed",
            "run {label} PS must report its restart; stdout:\n{}",
            run.ps
        );
        assert_eq!(field(&run.ps, "evictions"), "");
    }
    // the two crash runs reproduce each other...
    assert_bit_identical(&a, &b);

    // ...and the fault-free run with the same seed (quiet plan: the
    // crash schedule is the only difference)
    let quiet_path = tmp("quiet_plan.json");
    std::fs::write(&quiet_path, FaultPlan::quiet(23).to_json()).unwrap();
    let reference = run_reference(quiet_path.to_str().unwrap(), &[]);
    std::fs::remove_file(&quiet_path).ok();
    std::fs::remove_file(&plan_path).ok();
    assert_eq!(
        reference.codes,
        vec![0, 0, 0],
        "reference run failed; stderr:\n{}",
        reference.stderr
    );
    assert_bit_identical(&a, &reference);
}
