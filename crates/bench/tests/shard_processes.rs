//! Process-level acceptance for the sharded parameter-server group:
//! real `selsync_dist` OS processes on localhost TCP, shards-first rank
//! layout (`--ps-shards`).
//!
//! Two properties, the sharded counterparts of `dist_processes.rs`
//! (fault-free bit-identity) and `ps_failover_processes.rs` (SIGKILL
//! recovery):
//!
//! 1. **K = 1 transparency** — a `--ps-shards 1` run is bit-identical
//!    to the monolithic elastic run of the same seed: same sync
//!    decisions, same worker and server parameter fingerprints. The
//!    sharded path is a pure re-layout, not a different algorithm.
//! 2. **Per-shard SIGKILL failover** — in a K = 2 group one shard is
//!    killed mid-run with no warning and respawned with `--resume`; it
//!    reloads *its own* `FILE.s1` checkpoint while the sibling shard
//!    keeps serving, nobody is evicted, and every rank's final
//!    parameters are bit-identical to the fault-free sharded run.

use selsync_chaos::{FaultPlan, Straggler};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserve `n` distinct loopback ports below the ephemeral range (same
/// allocator as the sibling suites, disjoint base so leftover sockets
/// from another suite's range can never collide: serve owns
/// 20000-21899, dist 23000-26999, ps_failover 25000-26899, chaos
/// 27000-30999; this suite takes 31000-32699, below the 32768 ephemeral
/// floor).
fn free_ports(n: usize) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PORT_CURSOR: AtomicUsize = AtomicUsize::new(0);
    let base = 31000 + (std::process::id() as usize % 850);
    let mut held = Vec::new();
    let mut addrs = Vec::new();
    while addrs.len() < n {
        let port = base + PORT_CURSOR.fetch_add(1, Ordering::Relaxed) % 850;
        if let Ok(l) = TcpListener::bind(("127.0.0.1", port as u16)) {
            addrs.push(format!("127.0.0.1:{port}"));
            held.push(l);
        }
    }
    addrs
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("selsync_shardproc_{}_{name}", std::process::id()));
    p
}

/// Spawn one rank with the shared training recipe. Liveness mirrors the
/// PS-failover suite: 2 s reply timeout per attempt and a 30 s patience
/// budget, so a shard outage stalls the workers instead of evicting
/// them (the sibling shard widens its own eviction budget by the same
/// patience window — see DESIGN.md §10).
fn spawn_rank(role: &str, rank: usize, peers: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_selsync_dist"))
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--peers",
            peers,
        ])
        .args([
            "--model",
            "vgg",
            "--strategy",
            "selsync",
            "--delta",
            "0.25",
            "--steps",
            "12",
            "--batch",
            "8",
            "--data",
            "96",
            "--eval-every",
            "12",
            "--seed",
            "42",
            "--elastic",
            "--round-timeout-ms",
            "400",
            "--max-missed",
            "3",
            "--ps-patience-ms",
            "30000",
            "--recv-timeout",
            "120",
            "--workers",
            "2",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn selsync_dist")
}

/// Extract `key=value` from stdout (pairs may share a line).
fn field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .flat_map(|l| l.split_whitespace())
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in output:\n{stdout}"))
        .to_string()
}

struct RankOut {
    stdout: String,
    code: i32,
}

/// Wait for every rank and collect stdout/exit codes, concatenating
/// stderr for failure diagnostics.
fn collect(ranks: Vec<Child>) -> (Vec<RankOut>, String) {
    let mut outs = Vec::new();
    let mut stderr = String::new();
    for c in ranks {
        let out = c.wait_with_output().unwrap();
        stderr.push_str(&String::from_utf8_lossy(&out.stderr));
        outs.push(RankOut {
            stdout: String::from_utf8(out.stdout).unwrap(),
            code: out.status.code().unwrap_or(-1),
        });
    }
    (outs, stderr)
}

fn assert_clean(outs: &[RankOut], stderr: &str, label: &str) {
    let codes: Vec<i32> = outs.iter().map(|o| o.code).collect();
    let stdouts: Vec<&str> = outs.iter().map(|o| o.stdout.as_str()).collect();
    assert!(
        codes.iter().all(|&c| c == 0),
        "{label}: exit codes {codes:?}; stderr:\n{stderr}\nstdouts:\n{stdouts:#?}"
    );
}

/// Fault-free K = 2 sharded run: ranks 0-1 are shards, 2-3 workers.
/// Returns outputs indexed by rank.
fn run_sharded_reference(plan: &str) -> (Vec<RankOut>, String) {
    let peers = free_ports(4).join(",");
    let mut ranks = Vec::new();
    for s in 0..2 {
        ranks.push(spawn_rank(
            "ps",
            s,
            &peers,
            &["--ps-shards", "2", "--fault-plan", plan],
        ));
    }
    for w in 2..4 {
        ranks.push(spawn_rank(
            "worker",
            w,
            &peers,
            &["--ps-shards", "2", "--fault-plan", plan],
        ));
    }
    collect(ranks)
}

#[test]
fn k1_sharded_tcp_run_is_bit_identical_to_monolithic() {
    // monolithic: workers at ranks 0-1, PS at rank 2
    let peers = free_ports(3).join(",");
    let mut ranks: Vec<Child> = (0..2)
        .map(|w| spawn_rank("worker", w, &peers, &[]))
        .collect();
    ranks.push(spawn_rank("ps", 2, &peers, &[]));
    let (mono, mono_err) = collect(ranks);
    assert_clean(&mono, &mono_err, "monolithic");

    // sharded K = 1: shard at rank 0, workers at ranks 1-2
    let peers = free_ports(3).join(",");
    let mut ranks = vec![spawn_rank("ps", 0, &peers, &["--ps-shards", "1"])];
    for w in 1..3 {
        ranks.push(spawn_rank("worker", w, &peers, &["--ps-shards", "1"]));
    }
    let (shard, shard_err) = collect(ranks);
    assert_clean(&shard, &shard_err, "sharded k=1");

    // logical worker 0 is mono rank 0 / sharded rank 1, and so on
    assert_eq!(
        field(&shard[1].stdout, "decisions"),
        field(&mono[0].stdout, "decisions"),
        "sync decisions must be identical"
    );
    for w in 0..2 {
        assert_eq!(
            field(&shard[w + 1].stdout, "params_fingerprint"),
            field(&mono[w].stdout, "params_fingerprint"),
            "worker {w} replica must be bit-identical"
        );
        assert_eq!(
            field(&shard[w + 1].stdout, "lssr"),
            field(&mono[w].stdout, "lssr"),
        );
    }
    assert_eq!(
        field(&shard[0].stdout, "params_fingerprint"),
        field(&mono[2].stdout, "params_fingerprint"),
        "the single shard must hold the exact monolithic global vector"
    );
    assert_eq!(
        field(&shard[0].stdout, "syncs"),
        field(&mono[2].stdout, "syncs"),
        "same sync schedule on the server side"
    );
}

#[test]
fn sigkill_one_shard_resumes_from_its_own_checkpoint() {
    // a 50 ms straggler on logical worker 0 (rank 2) paces the run so
    // the kill lands mid-run; wall-clock delays never change the math.
    // Shard 1's sends are delayed 200 ms so the SIGKILL below lands in
    // the write-ahead window deterministically: the checkpoint rename
    // (which the kill poll watches) happens before the sync replies,
    // and 200 ms per send gives the poll + 50 ms fuse time to fire
    // first. The replies die with the process, workers must recover via
    // the respawned shard's stale-push arm, and the sibling shard must
    // hold its round clock for them — the most adversarial schedule.
    let mut plan = FaultPlan::slow_straggler(17, 2, 50);
    plan.stragglers.push(Straggler {
        rank: 1,
        delay_ms: 200,
    });
    let plan_path = tmp("shard_kill_plan.json");
    std::fs::write(&plan_path, plan.to_json()).unwrap();
    let plan_str = plan_path.to_str().unwrap().to_string();

    let ckpt = tmp("shard_kill.ckpt");
    let shard1_ckpt = selsync_core::shard_state_path(&ckpt, 1);
    let cleanup = || {
        for s in 0..2 {
            let p = selsync_core::shard_state_path(&ckpt, s);
            std::fs::remove_file(selsync_core::checkpoint::prev_path(&p)).ok();
            std::fs::remove_file(&p).ok();
        }
    };
    cleanup();
    let ckpt_str = ckpt.to_str().unwrap().to_string();

    let peers = free_ports(4).join(",");
    let shard_flags = [
        "--ps-shards",
        "2",
        "--fault-plan",
        &plan_str,
        "--checkpoint",
        &ckpt_str,
    ];
    let shard0 = spawn_rank("ps", 0, &peers, &shard_flags);
    let mut shard1 = spawn_rank("ps", 1, &peers, &shard_flags);
    let workers: Vec<Child> = (2..4)
        .map(|w| {
            spawn_rank(
                "worker",
                w,
                &peers,
                &["--ps-shards", "2", "--fault-plan", &plan_str],
            )
        })
        .collect();

    // wait until shard 1 has written its own durable generation, then
    // SIGKILL it with no warning — possibly mid-round, possibly mid-write
    let deadline = Instant::now() + Duration::from_secs(30);
    while !shard1_ckpt.exists() {
        assert!(
            Instant::now() < deadline,
            "shard 1 never wrote {}",
            shard1_ckpt.display()
        );
        assert!(
            shard1.try_wait().unwrap().is_none(),
            "shard 1 exited before writing a checkpoint"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(50));
    shard1.kill().expect("SIGKILL shard 1");
    shard1.wait().unwrap();

    // respawn rank 1 on the same advertised port, resuming from the
    // shard's own FILE.s1 while shard 0 keeps serving its range
    let shard1b = spawn_rank(
        "ps",
        1,
        &peers,
        &[
            "--ps-shards",
            "2",
            "--fault-plan",
            &plan_str,
            "--resume",
            &ckpt_str,
        ],
    );

    let mut ranks = vec![shard0, shard1b];
    ranks.extend(workers);
    let (run, run_err) = collect(ranks);
    cleanup();
    assert_clean(&run, &run_err, "sigkill run");

    assert_eq!(field(&run[1].stdout, "recovery"), "shard_resumed");
    assert_eq!(field(&run[1].stdout, "shard"), "1");
    for (s, shard_out) in run.iter().take(2).enumerate() {
        assert_eq!(
            field(&shard_out.stdout, "evictions"),
            "",
            "the outage must stall workers, not evict them; shard {s} stdout:\n{}",
            shard_out.stdout
        );
    }

    let (reference, ref_err) = run_sharded_reference(&plan_str);
    std::fs::remove_file(&plan_path).ok();
    assert_clean(&reference, &ref_err, "fault-free reference");

    // every rank's final parameters — the killed shard, its survivor
    // sibling, and both workers — must match the fault-free run
    for r in 0..4 {
        assert_eq!(
            field(&run[r].stdout, "params_fingerprint"),
            field(&reference[r].stdout, "params_fingerprint"),
            "rank {r} params must be bit-identical to the fault-free run"
        );
    }
    assert_eq!(
        field(&run[2].stdout, "decisions"),
        field(&reference[2].stdout, "decisions"),
        "sync decisions must match the fault-free run"
    );
}
