//! End-to-end chaos acceptance over real OS processes: `selsync_dist`
//! ranks on localhost TCP, elastic membership on, faults injected from
//! a shared `--fault-plan` file.
//!
//! Two properties, mirroring `dist_processes.rs`:
//!
//! 1. **Determinism** — the same seeded [`FaultPlan`] produces the same
//!    fault schedule, the same eviction history, the same sync
//!    decisions, and bit-identical surviving-worker parameters across
//!    two independent runs (fresh ports, fresh processes).
//! 2. **Crash tolerance** — a scheduled worker crash is survived: no
//!    rank panics or hangs, the PS evicts exactly the dead rank, the
//!    survivor runs every step, and the final training loss lands near
//!    a fault-free run with the same surviving-worker count.

use selsync_chaos::FaultPlan;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Reserve `n` distinct loopback ports *below* the kernel's ephemeral
/// range (same rationale and allocator as `dist_processes.rs`: a
/// kernel-assigned port can be stolen as an outbound source port before
/// the spawned rank re-binds it; low ports cannot).
fn free_ports(n: usize) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PORT_CURSOR: AtomicUsize = AtomicUsize::new(0);
    let base = 27000 + (std::process::id() as usize % 4000);
    let mut held = Vec::new();
    let mut addrs = Vec::new();
    while addrs.len() < n {
        let port = base + PORT_CURSOR.fetch_add(1, Ordering::Relaxed) % 1700;
        if let Ok(l) = TcpListener::bind(("127.0.0.1", port as u16)) {
            addrs.push(format!("127.0.0.1:{port}"));
            held.push(l);
        }
    }
    addrs
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("selsync_chaos_{}_{name}", std::process::id()));
    p
}

fn spawn_rank(role: &str, rank: usize, peers: &str, n_workers: usize, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_selsync_dist"))
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--peers",
            peers,
        ])
        .args([
            "--model",
            "vgg",
            "--strategy",
            "selsync",
            "--delta",
            "0.25",
            "--steps",
            "12",
            "--batch",
            "8",
            "--data",
            "96",
            "--eval-every",
            "12",
            "--seed",
            "42",
            "--elastic",
            "--round-timeout-ms",
            "1000",
            "--max-missed",
            "2",
            "--recv-timeout",
            "120",
        ])
        .args(["--workers", &n_workers.to_string()])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn selsync_dist")
}

/// Extract `key=value` from stdout, where several pairs may share a
/// line (the chaos counter lines do).
fn field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .flat_map(|l| l.split_whitespace())
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in output:\n{stdout}"))
        .to_string()
}

struct TrioRun {
    ps: String,
    workers: Vec<String>,
    codes: Vec<i32>,
    stderr: String,
}

/// Run one PS + `n` workers to completion and collect each rank's
/// stdout and exit code (PS first in `codes`), plus the concatenated
/// stderr of every rank for failure diagnostics.
fn run_trio(n_workers: usize, plan_path: &str) -> TrioRun {
    let peers = free_ports(n_workers + 1).join(",");
    let extra = ["--fault-plan", plan_path];
    let ps = spawn_rank("ps", n_workers, &peers, n_workers, &extra);
    let workers: Vec<Child> = (0..n_workers)
        .map(|r| spawn_rank("worker", r, &peers, n_workers, &extra))
        .collect();

    let ps_out = ps.wait_with_output().unwrap();
    let mut codes = vec![ps_out.status.code().unwrap_or(-1)];
    let mut stderr = String::from_utf8_lossy(&ps_out.stderr).into_owned();
    let mut worker_stdout = Vec::new();
    for w in workers {
        let out = w.wait_with_output().unwrap();
        codes.push(out.status.code().unwrap_or(-1));
        worker_stdout.push(String::from_utf8(out.stdout).unwrap());
        stderr.push_str(&String::from_utf8_lossy(&out.stderr));
    }
    TrioRun {
        ps: String::from_utf8(ps_out.stdout).unwrap(),
        workers: worker_stdout,
        codes,
        stderr,
    }
}

#[test]
fn same_fault_plan_seed_reproduces_the_run_bit_for_bit() {
    // crash rank 1 at step 4 plus seeded duplicate deliveries: the
    // duplicates exercise the chaos layer on every link, the crash
    // exercises eviction — and none of it may depend on wall-clock
    let mut plan = FaultPlan::crash_one(7, 1, 4);
    plan.duplicate_prob = 0.25;
    let plan_path = tmp("determinism.json");
    std::fs::write(&plan_path, plan.to_json()).unwrap();
    let plan_str = plan_path.to_str().unwrap();

    let a = run_trio(2, plan_str);
    let b = run_trio(2, plan_str);
    std::fs::remove_file(&plan_path).ok();

    // every rank exits cleanly in both runs (a scheduled crash is a
    // normal, reported outcome — not a failure)
    assert_eq!(
        a.codes,
        vec![0, 0, 0],
        "run A exit codes; stderr:\n{}",
        a.stderr
    );
    assert_eq!(
        b.codes,
        vec![0, 0, 0],
        "run B exit codes; stderr:\n{}",
        b.stderr
    );

    // identical eviction history on the PS
    let evictions = field(&a.ps, "evictions");
    assert!(
        evictions.ends_with(":1"),
        "rank 1 must be the evicted rank, got {evictions}"
    );
    assert_eq!(evictions, field(&b.ps, "evictions"));

    // identical sync decisions and bit-identical surviving params
    assert_eq!(
        field(&a.workers[0], "decisions"),
        field(&b.workers[0], "decisions")
    );
    assert_eq!(
        field(&a.workers[0], "params_fingerprint"),
        field(&b.workers[0], "params_fingerprint")
    );
    assert_eq!(
        field(&a.ps, "params_fingerprint"),
        field(&b.ps, "params_fingerprint")
    );

    // identical fault schedule and chaos accounting on every worker.
    // (The PS is excluded: whether a duplicated heartbeat draws a
    // catch-up reply depends on when it lands relative to the round
    // boundary, so the PS's own send sequence — and with it its fault
    // log — may vary, while tag filtering keeps every training outcome
    // above bit-reproducible.)
    for (ra, rb) in [
        (&a.workers[0], &b.workers[0]),
        (&a.workers[1], &b.workers[1]),
    ] {
        for key in [
            "fault_fingerprint",
            "chaos_sent_messages",
            "chaos_dropped_messages",
            "chaos_duplicated_messages",
            "chaos_sent_bytes",
        ] {
            assert_eq!(field(ra, key), field(rb, key), "{key} must reproduce");
        }
    }
    // the duplicates actually fired somewhere (the plan is not a no-op)
    let dups: u64 = [&a.workers[0], &a.workers[1]]
        .iter()
        .map(|s| {
            field(s, "chaos_duplicated_messages")
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    assert!(dups > 0, "duplicate_prob 0.25 must duplicate something");
}

#[test]
fn crash_one_worker_is_survived_and_tracks_the_fault_free_loss() {
    // faulty run: 2 workers, rank 1 dies at step 4, survivor finishes
    let crash_path = tmp("crash.json");
    std::fs::write(&crash_path, FaultPlan::crash_one(11, 1, 4).to_json()).unwrap();
    let faulty = run_trio(2, crash_path.to_str().unwrap());
    std::fs::remove_file(&crash_path).ok();

    assert_eq!(
        faulty.codes,
        vec![0, 0, 0],
        "no rank may hang or panic; stderr:\n{}",
        faulty.stderr
    );
    let evictions = field(&faulty.ps, "evictions");
    assert!(
        evictions.ends_with(":1") && !evictions.contains(','),
        "exactly the crashed rank is evicted, got {evictions}"
    );
    assert_eq!(field(&faulty.workers[1], "steps_run"), "4", "crashed early");
    assert_eq!(
        field(&faulty.workers[0], "steps_run"),
        "12",
        "survivor ran all steps"
    );

    // reference: a fault-free cluster with the same surviving-worker
    // count (one worker), identical recipe
    let quiet_path = tmp("quiet.json");
    std::fs::write(&quiet_path, FaultPlan::quiet(11).to_json()).unwrap();
    let reference = run_trio(1, quiet_path.to_str().unwrap());
    std::fs::remove_file(&quiet_path).ok();
    assert_eq!(reference.codes, vec![0, 0]);

    let faulty_loss: f32 = field(&faulty.workers[0], "final_loss").parse().unwrap();
    let ref_loss: f32 = field(&reference.workers[0], "final_loss").parse().unwrap();
    assert!(faulty_loss.is_finite() && ref_loss.is_finite());
    // the histories differ (two workers for the first four steps, then
    // a mid-run repartition), so require agreement only to a tolerance
    // that still catches divergence or a dead optimizer
    assert!(
        (faulty_loss - ref_loss).abs() < 0.6,
        "crash-run loss {faulty_loss} strays from fault-free loss {ref_loss}"
    );
}
