//! End-to-end acceptance for the multi-process launcher: spawn real
//! `selsync_dist` OS processes (2 workers + 1 PS on localhost TCP) and
//! check they reproduce the in-process run of the same configuration —
//! identical per-step sync decisions, bit-identical final global
//! parameters, and fabric byte totals equal to the shared in-process
//! counter.

use selsync_bench::cli::parse_args;
use selsync_core::{checkpoint, run_distributed, Workload};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

const TRAINING_FLAGS: &[&str] = &[
    "--model",
    "vgg",
    "--strategy",
    "selsync",
    "--delta",
    "0.25",
    "--steps",
    "15",
    "--batch",
    "8",
    "--data",
    "96",
    "--eval-every",
    "15",
    "--seed",
    "42",
    "--workers",
    "2",
];

/// Reserve `n` distinct loopback ports *below* the kernel's ephemeral
/// range. A kernel-assigned (port 0) listen port can be stolen — as the
/// source port of some other test's outbound connection — between
/// dropping the probe listener here and the spawned rank re-binding it,
/// which strands the whole fabric (observed under full-workspace test
/// load). Low ports are never handed out as source ports, so a
/// successful probe stays bindable; the cursor keeps concurrent callers
/// in one process disjoint.
fn free_ports(n: usize) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PORT_CURSOR: AtomicUsize = AtomicUsize::new(0);
    let base = 23000 + (std::process::id() as usize % 4000);
    let mut held = Vec::new();
    let mut addrs = Vec::new();
    while addrs.len() < n {
        let port = base + PORT_CURSOR.fetch_add(1, Ordering::Relaxed) % 5000;
        if let Ok(l) = TcpListener::bind(("127.0.0.1", port as u16)) {
            addrs.push(format!("127.0.0.1:{port}"));
            held.push(l);
        }
    }
    addrs
}

fn spawn_rank(role: &str, rank: usize, peers: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_selsync_dist"))
        .args([
            "--role",
            role,
            "--rank",
            &rank.to_string(),
            "--peers",
            peers,
        ])
        .args(TRAINING_FLAGS)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn selsync_dist")
}

fn stdout_field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in output:\n{stdout}"))
        .to_string()
}

#[test]
fn three_processes_reproduce_the_in_process_run() {
    let peers = free_ports(3).join(",");
    let ckpt = std::env::temp_dir().join(format!("selsync_dist_test_{}.bin", std::process::id()));
    let ckpt_str = ckpt.to_str().unwrap();

    let ps = spawn_rank("ps", 2, &peers, &["--save-params", ckpt_str]);
    let w0 = spawn_rank("worker", 0, &peers, &[]);
    let w1 = spawn_rank("worker", 1, &peers, &[]);

    let ps_out = ps.wait_with_output().unwrap();
    let w0_out = w0.wait_with_output().unwrap();
    let w1_out = w1.wait_with_output().unwrap();
    for (name, out) in [
        ("ps", &ps_out),
        ("worker 0", &w0_out),
        ("worker 1", &w1_out),
    ] {
        assert!(
            out.status.success(),
            "{name} exited nonzero; stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let ps_stdout = String::from_utf8(ps_out.stdout).unwrap();
    let w0_stdout = String::from_utf8(w0_out.stdout).unwrap();
    let w1_stdout = String::from_utf8(w1_out.stdout).unwrap();

    // reference: the same configuration through the in-process trainer
    let run = parse_args(
        &TRAINING_FLAGS
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let workload = Workload::for_kind(run.kind, run.data_scale, run.config.seed);
    let reference = run_distributed(&run.config, &workload);

    // step-for-step identical sync decisions
    let ref_decisions: String = reference
        .step_records
        .iter()
        .map(|r| if r.synced { '1' } else { '0' })
        .collect();
    assert_eq!(stdout_field(&w0_stdout, "decisions"), ref_decisions);

    // bit-identical final global parameters
    let dist_params = checkpoint::load_params(&ckpt).expect("ps checkpoint");
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(
        dist_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        reference
            .final_params
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "multi-process params must be bit-identical to in-process"
    );

    // per-process send counters sum to the in-process shared counter
    let total: u64 = [&ps_stdout, &w0_stdout, &w1_stdout]
        .iter()
        .map(|s| stdout_field(s, "fabric_bytes_sent").parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, reference.comm_bytes, "framed byte totals must match");
}
