//! Fig. 1a — relative training throughput vs. cluster size under
//! PS-based BSP on the modeled 5 Gbps fabric.
//!
//! The paper reports ResNet101 improving only ~3× from 1 → 16 V100s and
//! VGG11 dropping *below* 1× at 2 workers (507 MB of parameters). Both
//! shapes come straight out of the calibrated network model here.

use selsync_bench::{banner, json_row};
use selsync_core::timing::relative_throughput;
use selsync_nn::models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    workers: usize,
    relative_throughput: f64,
}

fn main() {
    banner(
        "Fig 1a",
        "Relative throughput vs cluster size (PS over 5 Gbps)",
    );
    println!("{:<12} {:>3} {:>12}", "model", "N", "rel-tput");
    for kind in ModelKind::ALL {
        for &n in &[1usize, 2, 4, 8, 16] {
            let r = relative_throughput(kind, n);
            println!("{:<12} {:>3} {:>12.2}", kind.paper_name(), n, r);
            json_row(&Row {
                model: kind.paper_name(),
                workers: n,
                relative_throughput: r,
            });
        }
        println!();
    }
    // headline checks mirrored in EXPERIMENTS.md
    let resnet16 = relative_throughput(ModelKind::ResNetMini, 16);
    let vgg2 = relative_throughput(ModelKind::VggMini, 2);
    println!("ResNet101 @16 workers: {resnet16:.2}x (paper: ~3x; far below linear 16x)");
    println!("VGG11 @2 workers: {vgg2:.2}x (paper: < 1.0x due to 507 MB model)");
}
