//! Ablation — end-to-end training under gradient compression vs.
//! SelSync's selective synchronization, at matched step budgets.
//!
//! §II-D argues compression "is not a zero-cost operation": it can
//! degrade final quality or demand more training. This bench trains the
//! ResNet workload with (a) BSP + dense GA, (b) BSP + Top-k / signSGD /
//! PowerSGD with error feedback, and (c) SelSync, then compares final
//! accuracy against the *model bytes actually shipped* by worker 0.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    metric: f32,
    sync_payload_bytes: u64,
    volume_reduction_vs_dense: f64,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Ablation",
        "Compressed BSP vs SelSync: quality at matched step budgets",
    );
    let kind = ModelKind::ResNetMini;
    let wl = selsync_bench::workload_for(kind, &scale);

    let mut runs: Vec<(String, RunConfig)> = Vec::new();
    let bsp_ga = paper_config(
        kind,
        Strategy::Bsp {
            aggregation: Aggregation::Gradient,
        },
        &scale,
    );
    runs.push(("BSP dense GA".into(), bsp_ga.clone()));
    for (name, comp) in [
        ("BSP + top-k 1%", CompressionKind::TopK { ratio: 0.01 }),
        ("BSP + signSGD", CompressionKind::SignSgd),
        ("BSP + PowerSGD r=2", CompressionKind::PowerSgd { rank: 2 }),
    ] {
        let mut cfg = bsp_ga.clone();
        cfg.compression = Some(comp);
        runs.push((name.into(), cfg));
    }
    runs.push((
        "SelSync δ=0.3 PA".into(),
        paper_config(
            kind,
            Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
            &scale,
        ),
    ));

    let mut dense_bytes = 0u64;
    println!(
        "{:<20} {:>10} {:>16} {:>12}",
        "method", "metric", "payload-bytes", "volume-red"
    );
    for (name, cfg) in &runs {
        let r = run_and_report(kind, cfg, &wl);
        if dense_bytes == 0 {
            dense_bytes = r.logical_sync_bytes.max(1);
        }
        let reduction = dense_bytes as f64 / r.logical_sync_bytes.max(1) as f64;
        println!(
            "{:<20} {:>10} {:>16} {:>11.1}x",
            name,
            fmt_metric(kind, r.best_metric(false)),
            r.logical_sync_bytes,
            reduction
        );
        json_row(&Row {
            method: name.clone(),
            metric: r.best_metric(false),
            sync_payload_bytes: r.logical_sync_bytes,
            volume_reduction_vs_dense: reduction,
        });
    }
    println!("\nReading (§II-D): aggressive compression trades quality or extra steps for");
    println!("volume; SelSync reaches a similar volume reduction by *skipping* steps and");
    println!("pays no per-step reconstruction error on the syncs it does perform.");
}
