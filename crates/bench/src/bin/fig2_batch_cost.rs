//! Fig. 2 — per-step compute time (2a) and memory utilization (2b)
//! vs. batch size.
//!
//! 2a is a *real measurement* on this host: one forward+backward per
//! batch size per mini model. 2b reports the analytic activation +
//! parameter footprint (this process shares one allocator across
//! threads, so RSS deltas would be noise; the analytic count is the
//! quantity that OOMs a 12 GB K80 in the paper).

use selsync_bench::{banner, json_row};
use selsync_core::workload::{AnyModel, Workload, SEQ_LEN};
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::ModelKind;
use selsync_nn::Batch;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    batch_size: usize,
    step_time_ms: f64,
    approx_mem_kb: f64,
}

fn batch_for(wl: &Workload, b: usize) -> Batch {
    match &wl.data {
        selsync_core::workload::WorkloadData::Vision { train, .. } => {
            let idx: Vec<usize> = (0..b.min(train.len())).collect();
            let (x, t) = train.gather(&idx);
            Batch::dense(x, t)
        }
        selsync_core::workload::WorkloadData::Text { train, .. } => {
            let mut seqs = Vec::new();
            let mut targets = Vec::new();
            for w in 0..b.min(train.num_windows(SEQ_LEN)) {
                let (x, y) = train.window(w, SEQ_LEN);
                seqs.push(x);
                targets.extend(y);
            }
            Batch::tokens(seqs, targets)
        }
    }
}

/// Approximate working-set: parameters + gradients + activations. The
/// activation term scales linearly with batch size, which is the Fig. 2b
/// trend; per-position footprint is estimated from one forward pass.
fn approx_mem_kb(model: &AnyModel, kind: ModelKind, b: usize) -> f64 {
    let params = selsync_nn::module::ParamVisitor::num_params(model.as_visitor());
    // per-sample activation scalars, rough per architecture (counted
    // from the layer output shapes of the minis)
    let acts_per_sample = match kind {
        ModelKind::ResNetMini => 8 * 64 * 6 + 16 * 16 * 4, // conv planes over blocks
        ModelKind::VggMini => 8 * 64 + 8 * 16 + 16 * 16 + 16 * 4 + 32,
        ModelKind::AlexNetMini => 12 * 64 + 12 * 16 + 24 * 16 + 24 * 4 + 48,
        ModelKind::TransformerMini => SEQ_LEN * (16 * 8 + 32 * 2) + SEQ_LEN * SEQ_LEN * 4,
    };
    ((2 * params + b * acts_per_sample) * 4) as f64 / 1024.0
}

fn main() {
    banner("Fig 2", "Compute time and memory vs batch size");
    println!(
        "{:<12} {:>5} {:>14} {:>14}",
        "model", "b", "step-time(ms)", "approx-mem(KB)"
    );
    for kind in ModelKind::ALL {
        let wl = Workload::for_kind(kind, 600, 42);
        let mut prev = 0.0;
        for &b in &[4usize, 8, 16, 32, 64, 128] {
            let mut model = wl.build_model();
            let batch = batch_for(&wl, b);
            // warm-up then measure
            for _ in 0..2 {
                let logits = model.as_model().forward(&batch.input, true);
                let (_, dl) = softmax_cross_entropy(&logits, &batch.targets);
                model.as_model().zero_grad();
                model.as_model().backward(&dl);
            }
            let reps = 5;
            let start = Instant::now();
            for _ in 0..reps {
                let logits = model.as_model().forward(&batch.input, true);
                let (_, dl) = softmax_cross_entropy(&logits, &batch.targets);
                model.as_model().zero_grad();
                model.as_model().backward(&dl);
            }
            let ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
            let mem = approx_mem_kb(&model, kind, b);
            println!(
                "{:<12} {:>5} {:>14.2} {:>14.0}",
                kind.paper_name(),
                b,
                ms,
                mem
            );
            json_row(&Row {
                model: kind.paper_name(),
                batch_size: b,
                step_time_ms: ms,
                approx_mem_kb: mem,
            });
            assert!(
                ms >= prev * 0.5,
                "compute time should grow (roughly) with batch size"
            );
            prev = ms;
        }
        println!();
    }
    println!("Shape check: both step time and memory increase with b (paper Fig 2a/2b).");
}
