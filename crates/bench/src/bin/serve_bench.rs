//! Serving-tier benchmark — the inference throughput/latency recorder.
//!
//! Spins up a full in-process serving group (replica threads + router
//! thread + a closed-loop client on the main thread, all over the
//! channel fabric) for every point of a (batch deadline × replica
//! count) grid, serving a real SSV2 checkpoint through the same
//! `selsync_serve` code paths the TCP deployment runs, and writes
//! req/s, p50 and p99 latency per point to `BENCH_serve.json` at the
//! repo root.
//!
//! The grid makes the batcher's tradeoff measurable: a tight deadline
//! flushes small batches early (lower p50, fewer rows per dispatch), a
//! loose one rides `max_batch` (higher throughput ceiling). Rows are
//! validated from disk — finite positive rates, p50 ≤ p99 — so CI
//! catches a serving path that silently degenerated.
//!
//! Flags:
//!
//! * `--quick`    fewer requests per grid point (CI scale)
//! * `--out PATH` write the JSON table here (default BENCH_serve.json)

use selsync_comm::Fabric;
use selsync_core::checkpoint::{prev_path, save_state, TrainState};
use selsync_nn::flat::flat_params;
use selsync_nn::models::Mlp;
use selsync_serve::{
    run_client, run_replica, run_router, ClientConfig, ModelSpec, PredictEngine, Ranks,
    ReplicaConfig, RouterConfig,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

const MLP_DIMS: [usize; 3] = [16, 32, 8];
const MAX_BATCH: usize = 8;
const CONCURRENCY: usize = 4;

// Plain field names: the vendored offline serde derive does not process
// field attributes, so the schema uses what the derive actually emits.
#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    deadline_ms: u64,
    replicas: usize,
    max_batch: usize,
    concurrency: usize,
    requests: u64,
    req_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    mode: String,
    rows: Vec<Row>,
}

fn percentile_ms(sorted_us: &[u128], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

/// One grid point: a complete serving group over the channel fabric,
/// torn down before the function returns.
fn run_point(ckpt: &std::path::Path, replicas: usize, deadline: Duration, requests: u64) -> Row {
    let ranks = Ranks::new(replicas);
    let mut eps = Fabric::new(replicas + 2);
    let client_ep = eps.pop().expect("client endpoint");
    let router_ep = eps.pop().expect("router endpoint");

    let mut handles = Vec::new();
    for mut ep in eps {
        let ckpt = ckpt.to_path_buf();
        let router = ranks.router();
        handles.push(std::thread::spawn(move || {
            let (state, _) = load_checkpoint(&ckpt);
            let spec = ModelSpec::Mlp {
                dims: MLP_DIMS.to_vec(),
            };
            let mut engine =
                PredictEngine::new(&spec, 0, &state).expect("bench checkpoint fits its spec");
            let cfg = ReplicaConfig {
                router,
                heartbeat: Duration::from_millis(50),
                warmup_rows: MAX_BATCH,
                warmup_dims: vec![MLP_DIMS[0]],
                crash_after_batches: None,
            };
            run_replica(&mut ep, &mut engine, None, &cfg).expect("bench replica");
        }));
    }
    let router_cfg = RouterConfig {
        replicas,
        clients: 1,
        max_batch: MAX_BATCH,
        deadline,
        heartbeat: Duration::from_millis(50),
        max_missed: 3,
    };
    handles.push(std::thread::spawn(move || {
        let mut ep = router_ep;
        run_router(&mut ep, &router_cfg).expect("bench router");
    }));

    let client_cfg = ClientConfig {
        router: ranks.router(),
        requests,
        concurrency: CONCURRENCY,
        dims: vec![MLP_DIMS[0]],
        spacing: Duration::ZERO,
        seed: 1,
        fixed_input: false,
        recv_timeout: Duration::from_secs(60),
    };
    let t0 = Instant::now();
    let mut ep = client_ep;
    let report = run_client(&mut ep, &client_cfg).expect("bench client");
    let elapsed = t0.elapsed();
    for h in handles {
        h.join().expect("serving thread");
    }

    let mut lat_us: Vec<u128> = report
        .replies
        .iter()
        .map(|r| r.latency.as_micros())
        .collect();
    lat_us.sort_unstable();
    Row {
        bench: "serve".to_string(),
        deadline_ms: deadline.as_millis() as u64,
        replicas,
        max_batch: MAX_BATCH,
        concurrency: CONCURRENCY,
        requests: report.completed,
        req_per_sec: report.completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&lat_us, 0.50),
        p99_ms: percentile_ms(&lat_us, 0.99),
    }
}

fn load_checkpoint(path: &std::path::Path) -> (Vec<f32>, u64) {
    let (state, _) = selsync_core::checkpoint::load_state_with_fallback(path)
        .expect("bench checkpoint readable");
    (state.params, state.step)
}

fn parse_flags(args: &[String]) -> Result<(bool, String), String> {
    let mut quick = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--out needs a path".to_string())?;
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' (serve_bench [--quick] [--out PATH])"
                ))
            }
        }
    }
    Ok((quick, out))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, out_path) = match parse_flags(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let requests: u64 = if quick { 400 } else { 2000 };

    // a real SSV2 checkpoint, served exactly as the TCP deployment
    // serves the trainer's
    let mut ckpt = std::env::temp_dir();
    ckpt.push(format!("selsync_serve_bench_{}.ckpt", std::process::id()));
    let params = flat_params(&Mlp::new(&MLP_DIMS, 77));
    let state = TrainState {
        step: 1,
        ..TrainState::fresh(0, params)
    };
    save_state(&ckpt, &state).expect("write bench checkpoint");

    let deadlines_ms: [u64; 2] = [1, 5];
    let replica_counts: [usize; 2] = [1, 2];
    let mut rows = Vec::new();
    for &replicas in &replica_counts {
        for &dl in &deadlines_ms {
            let row = run_point(&ckpt, replicas, Duration::from_millis(dl), requests);
            println!(
                "serve replicas={replicas} deadline_ms={dl}: {:.0} req/s p50={:.2}ms p99={:.2}ms",
                row.req_per_sec, row.p50_ms, row.p99_ms
            );
            rows.push(row);
        }
    }
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(prev_path(&ckpt)).ok();

    let expected_rows = deadlines_ms.len() * replica_counts.len();
    let report = Report {
        schema: "selsync-serve-bench-v1".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    // Re-read and validate what actually landed on disk: CI trusts the
    // file, so the file (not the in-memory table) is what gets checked.
    let disk = std::fs::read_to_string(&out_path).expect("re-read report");
    let parsed: Report = match serde_json::from_str(&disk) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {out_path} is not valid serve-bench JSON: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = Vec::new();
    if parsed.rows.len() != expected_rows {
        failures.push(format!(
            "expected {expected_rows} grid rows, found {}",
            parsed.rows.len()
        ));
    }
    for row in &parsed.rows {
        let tag = format!("replicas={} deadline_ms={}", row.replicas, row.deadline_ms);
        if row.requests != requests {
            failures.push(format!(
                "{tag}: {} of {requests} requests answered",
                row.requests
            ));
        }
        if !row.req_per_sec.is_finite() || row.req_per_sec <= 0.0 {
            failures.push(format!(
                "{tag}: non-positive req_per_sec {}",
                row.req_per_sec
            ));
        }
        if !row.p50_ms.is_finite() || !row.p99_ms.is_finite() || row.p50_ms <= 0.0 {
            failures.push(format!(
                "{tag}: degenerate latency p50={} p99={}",
                row.p50_ms, row.p99_ms
            ));
        }
        if row.p50_ms > row.p99_ms {
            failures.push(format!(
                "{tag}: p50 {} exceeds p99 {}",
                row.p50_ms, row.p99_ms
            ));
        }
    }
    println!("\nwrote {} rows to {out_path}", parsed.rows.len());
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all serve grid points answered every request with sane latency");
}
