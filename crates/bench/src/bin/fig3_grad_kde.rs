//! Fig. 3 — kernel density estimates of a layer's gradients early vs.
//! late in training.
//!
//! The paper plots KDEs for ResNet101 `layer4_1_conv1_weight` (epochs 1
//! and 50) and a Transformer norm layer (epochs 1 and 4): gradients are
//! volatile early and concentrate near zero as training saturates. We
//! train the minis single-worker and capture the same named layer's
//! gradient distribution at both checkpoints.

use selsync_bench::{banner, json_row};
use selsync_core::workload::{Workload, WorkloadData, SEQ_LEN};
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::ModelKind;
use selsync_nn::module::ParamVisitor;
use selsync_nn::optim::{Optimizer, Sgd};
use selsync_nn::Batch;
use selsync_stats::Kde;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    layer: String,
    phase: &'static str,
    x: f32,
    density: f32,
}

fn grab_layer_grads(m: &dyn ParamVisitor, needle: &str) -> Vec<f32> {
    let mut out = Vec::new();
    m.visit_params(&mut |p| {
        if p.name.contains(needle) && out.is_empty() {
            out = p.grad.as_slice().to_vec();
        }
    });
    assert!(!out.is_empty(), "layer {needle} not found");
    out
}

fn main() {
    banner("Fig 3", "Gradient KDEs over training (early vs late)");
    let cases = [
        (
            ModelKind::ResNetMini,
            "layer2_1.conv1.weight",
            10u64,
            400u64,
        ),
        (
            ModelKind::TransformerMini,
            "transformer_encoder.layers.0.linear1.weight",
            30,
            400,
        ),
    ];
    for (kind, layer, early_step, late_step) in cases {
        let wl = Workload::for_kind(kind, 512, 42);
        let mut model = wl.build_model();
        // stable single-worker recipes: momentum SGD for the conv net,
        // plain SGD at a moderate rate for the Transformer
        let mut opt = if kind == ModelKind::TransformerMini {
            Sgd::with_momentum(0.1, 0.0, 0.0)
        } else {
            Sgd::with_momentum(0.05, 0.9, 0.0)
        };
        let mut snapshots: Vec<(&'static str, Vec<f32>)> = Vec::new();
        for step in 0..=late_step {
            let batch = next_batch(&wl, step, 16);
            let logits = model.as_model().forward(&batch.input, true);
            let (_, dl) = softmax_cross_entropy(&logits, &batch.targets);
            model.as_model().zero_grad();
            model.as_model().backward(&dl);
            if step == early_step {
                snapshots.push(("early", grab_layer_grads(model.as_visitor(), layer)));
            }
            if step == late_step {
                snapshots.push(("late", grab_layer_grads(model.as_visitor(), layer)));
            }
            opt.step(model.as_model());
        }
        println!("{} / {layer}", kind.paper_name());
        let mut densities = Vec::new();
        for (phase, grads) in &snapshots {
            let kde = Kde::fit(grads);
            let (lo, hi) = kde.support();
            let (xs, ds) = kde.grid(lo, hi, 41);
            let peak = ds.iter().copied().fold(0.0f32, f32::max);
            let spread = hi - lo;
            println!("  {phase:<6} peak density {peak:>10.2}  support width {spread:>10.5}");
            for (x, d) in xs.iter().zip(&ds) {
                json_row(&Row {
                    model: kind.paper_name(),
                    layer: layer.to_string(),
                    phase,
                    x: *x,
                    density: *d,
                });
            }
            densities.push((peak, spread));
        }
        let (early, late) = (densities[0], densities[1]);
        println!(
            "  late/early peak ratio: {:.1}x, support shrink {:.1}x (paper: late-epoch gradients pile up near 0)\n",
            late.0 / early.0,
            early.1 / late.1
        );
        if kind == ModelKind::ResNetMini {
            // strict on the conv net; the tiny Transformer's layer-norm
            // scale gradients can grow with activations early on, so its
            // row is reported rather than asserted
            assert!(
                late.0 > early.0 && late.1 < early.1,
                "late-phase gradients must concentrate (taller peak, narrower support)"
            );
        }
    }
}

fn next_batch(wl: &Workload, step: u64, b: usize) -> Batch {
    match &wl.data {
        WorkloadData::Vision { train, .. } => {
            let n = train.len();
            let idx: Vec<usize> = (0..b).map(|i| ((step as usize * b) + i) % n).collect();
            let (x, t) = train.gather(&idx);
            Batch::dense(x, t)
        }
        WorkloadData::Text { train, .. } => {
            let windows = train.num_windows(SEQ_LEN);
            let mut seqs = Vec::new();
            let mut targets = Vec::new();
            for i in 0..b.min(windows) {
                let w = ((step as usize * b) + i) % windows;
                let (x, y) = train.window(w, SEQ_LEN);
                seqs.push(x);
                targets.extend(y);
            }
            Batch::tokens(seqs, targets)
        }
    }
}
