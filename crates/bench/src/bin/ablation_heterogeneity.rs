//! Ablation — systems heterogeneity (§II-A): a straggler worker under
//! BSP, SSP and SelSync.
//!
//! Two views: (a) a *real* in-process run with an injected straggler
//! (worker 0 sleeps each step), verifying every strategy still trains
//! correctly; (b) the paper-scale timing replay with per-worker compute
//! multipliers, quantifying what the paper's §II-A/§II-C argue — the
//! barrier strategies pay the slowest worker, SSP absorbs it.

use selsync_bench::{banner, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use selsync_core::timing::simulate_heterogeneous;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    straggler_factor: f64,
    modeled_time_s: f64,
    slowdown_vs_homogeneous: f64,
}

fn main() {
    let mut scale = Scale::from_env();
    scale.steps = scale.steps.min(120); // the straggler sleeps for real
    banner("Ablation", "Systems heterogeneity: one straggler worker");
    let kind = ModelKind::ResNetMini;
    let wl = selsync_bench::workload_for(kind, &scale);

    let strategies: [(&str, Strategy); 3] = [
        (
            "BSP",
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
        ),
        ("SSP s=20", Strategy::Ssp { staleness: 20 }),
        (
            "SelSync δ=0.3",
            Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
        ),
    ];

    println!("real runs with worker 0 sleeping 2 ms per step:");
    let mut logs = Vec::new();
    for (name, strategy) in strategies {
        let mut cfg = paper_config(kind, strategy, &scale);
        cfg.straggler = Some((0, 2_000));
        let r = run_and_report(kind, &cfg, &wl);
        println!(
            "  {:<14} metric {:.3}  (all {} steps completed despite the straggler)",
            name, r.final_metric, r.steps_run
        );
        logs.push((name, strategy, r));
    }

    println!("\npaper-scale cluster time with a straggler of factor f (16 workers):");
    println!(
        "{:<14} {:>6} {:>14} {:>12}",
        "method", "f", "time(s)", "slowdown"
    );
    for (name, strategy, r) in &logs {
        let p = selsync_core::timing::TimingParams::paper(kind, 16);
        let hom = selsync_core::timing::simulate_timeline(*strategy, &r.step_records, &p);
        for &f in &[1.5f64, 3.0, 6.0] {
            let mut mult = vec![1.0; 16];
            mult[0] = f;
            let het = simulate_heterogeneous(*strategy, &r.step_records, &p, &mult);
            let slow = het.total_s / hom.total_s;
            println!(
                "{:<14} {:>6} {:>14.0} {:>11.2}x",
                name, f, het.total_s, slow
            );
            json_row(&Row {
                method: name.to_string(),
                straggler_factor: f,
                modeled_time_s: het.total_s,
                slowdown_vs_homogeneous: slow,
            });
        }
    }
    println!("\nReading (§II-A/§II-C): BSP's barrier pays the straggler on every step;");
    println!("SSP's staleness window hides most of it; SelSync sits between — its local");
    println!("phases still advance at each worker's own pace, but sync steps barrier.");
}
