//! Table I — the paper's headline comparison: BSP, four FedAvg
//! configurations, two SSP staleness settings, and two SelSync
//! thresholds, across all four workloads.
//!
//! Columns mirror the paper: iterations (step of best metric), LSSR,
//! final accuracy/perplexity, convergence difference vs. BSP, whether
//! BSP is outperformed, and overall speedup. Speedup is time-to-BSP-
//! quality on the paper-scale simulated clock (see `selsync_core::timing`
//! and the calibration notes in EXPERIMENTS.md); "-" marks methods that
//! never reach BSP quality, exactly as the paper does.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    method: String,
    iterations: u64,
    lssr: Option<f64>,
    metric: f32,
    conv_diff: f32,
    outperforms_bsp: bool,
    speedup: Option<f64>,
}

fn methods(scale: &Scale) -> Vec<Strategy> {
    // SSP thresholds scaled to the step budget the way the paper scales
    // 100/200 to its 10⁴–10⁵-step runs: a bound that is neither a
    // constant barrier nor unbounded.
    let s1 = (scale.steps / 10).max(5);
    vec![
        Strategy::Bsp {
            aggregation: Aggregation::Parameter,
        },
        Strategy::FedAvg { c: 1.0, e: 0.25 },
        Strategy::FedAvg { c: 1.0, e: 0.125 },
        Strategy::FedAvg { c: 0.5, e: 0.25 },
        Strategy::FedAvg { c: 0.5, e: 0.125 },
        Strategy::Ssp { staleness: s1 },
        Strategy::Ssp { staleness: s1 * 2 },
        Strategy::SelSync {
            delta: 0.3,
            aggregation: Aggregation::Parameter,
        },
        Strategy::SelSync {
            delta: 0.5,
            aggregation: Aggregation::Parameter,
        },
    ]
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table I",
        "BSP / FedAvg / SSP / SelSync across all four workloads",
    );
    println!(
        "{:<12} {:<20} {:>7} {:>7} {:>9} {:>9} {:>6} {:>9}",
        "model", "method", "iters", "LSSR", "metric", "conv.diff", "beats", "speedup"
    );
    for kind in ModelKind::ALL {
        let wl = selsync_bench::workload_for(kind, &scale);
        let lower = kind.lower_is_better();
        let mut bsp_quality = 0.0f32;
        let mut bsp_time = 0.0f64;
        for strategy in methods(&scale) {
            let cfg = paper_config(kind, strategy, &scale);
            let r = run_and_report(kind, &cfg, &wl);
            let best = r.best_metric(lower);
            // "iterations" = step of the best evaluation (plateau point)
            let best_step = r
                .evals
                .iter()
                .find(|e| e.metric == best)
                .map_or(cfg.max_steps, |e| e.step);
            let params = selsync_core::timing::TimingParams::paper(kind, cfg.n_workers);
            let timeline =
                selsync_core::timing::simulate_timeline(strategy, &r.step_records, &params);
            let is_bsp = matches!(strategy, Strategy::Bsp { .. });
            if is_bsp {
                bsp_quality = best;
                bsp_time = timeline.cumulative[best_step as usize];
            }
            let conv_diff = if lower {
                bsp_quality - best
            } else {
                best - bsp_quality
            };
            let outperforms = !is_bsp && conv_diff >= 0.0;
            // speedup: simulated time for this method to first reach BSP
            // quality vs BSP's time to that quality
            let speedup = if is_bsp {
                Some(1.0)
            } else {
                r.steps_to_target(bsp_quality, lower).map(|s| {
                    let idx = r
                        .evals
                        .iter()
                        .position(|e| e.step == s)
                        .map_or(s as usize, |i| r.evals[i].step as usize);
                    bsp_time / timeline.cumulative[idx.min(timeline.cumulative.len() - 1)]
                })
            };
            let lssr = match strategy {
                Strategy::Ssp { .. } => None, // the paper marks SSP "-"
                _ => Some(r.lssr.lssr()),
            };
            println!(
                "{:<12} {:<20} {:>7} {:>7} {:>9} {:>+9.4} {:>6} {:>9}",
                kind.paper_name(),
                strategy.label(),
                best_step,
                lssr.map_or("-".into(), |l| format!("{l:.3}")),
                fmt_metric(kind, best),
                conv_diff,
                if is_bsp {
                    "n/a"
                } else if outperforms {
                    "yes"
                } else {
                    "no"
                },
                speedup.map_or("-".into(), |s| format!("{s:.2}x")),
            );
            json_row(&Row {
                model: kind.paper_name(),
                method: strategy.label(),
                iterations: best_step,
                lssr,
                metric: best,
                conv_diff,
                outperforms_bsp: outperforms,
                speedup,
            });
        }
        println!();
    }
    println!("Shape checks vs the paper's Table I:");
    println!(" - SelSync reaches BSP-level quality with LSSR well above 0 (comm reduction).");
    println!(" - FedAvg's LSSR is higher still, but its quality depends brittly on (C, E).");
    println!(
        " - BSP needs the fewest iterations (most work per step); semi-sync methods need more."
    );
}
