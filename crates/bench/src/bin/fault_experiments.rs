//! Fault-tolerance experiments: seeded chaos scenarios driven through
//! the elastic SelSync trainer, each run twice — over the in-process
//! channel fabric and over real loopback TCP sockets.
//!
//! The paper's testbed (docker-swarm over a shared cluster) saw real
//! node failures and stragglers; this harness reproduces those
//! conditions deterministically. Every scenario is a [`FaultPlan`]:
//! same seed ⇒ same per-link drop/duplicate/delay schedule on either
//! fabric, so rows are comparable across transports.
//!
//! Scenarios:
//!
//! * `fault-free`      — baseline: the elastic protocol adds heartbeats
//!   but no faults fire;
//! * `crash-one-worker` — the highest rank goes silent a third of the
//!   way in; the PS evicts it and the survivors re-partition and finish;
//! * `slow-straggler`   — one rank sleeps before every send; nobody is
//!   evicted, training just paces at the straggler;
//! * `flaky-network`    — seeded random drops/duplicates/delays on every
//!   link; retries and catch-up replies absorb most of it, and any rank
//!   the PS gives up on is evicted while the rest finish.
//! * `corrupt-link`     — seeded bit-flips and truncations damage the
//!   encoded bytes of random frames; every damaged frame flows through
//!   the real decoder, fails its CRC (or length audit), and is counted
//!   corrupt and lost — the protocol absorbs it exactly like a drop.
//! * `crash-ps-midrun`  — the PS itself dies at a round boundary and
//!   restarts from its crash-consistent checkpoint; workers resend
//!   until it answers and nobody is evicted.
//! * `crash-ps-midckpt` — the PS dies *mid-sync* and its current
//!   checkpoint generation is torn on top of that; recovery falls back
//!   to the retained `.prev` generation and replays the lost round from
//!   the workers' resent pushes.
//! * `crash-one-shard`  — sharded PS group (K = 2): one shard dies
//!   mid-sync and resumes from *its own* `.s<shard>` checkpoint while
//!   the sibling shard keeps serving its range; nobody is evicted.
//! * `shard-skew`       — sharded PS group (K = 2): one shard answers
//!   slowly, pacing every fan-out round at the slowest shard — the
//!   sharded analogue of `slow-straggler`.
//!
//! One JSON row per (scenario × fabric), after the aligned table.

use selsync_bench::{banner, json_row};
use selsync_chaos::{ChaosTransport, FaultPlan};
use selsync_comm::elastic::ServerCrashPoint;
use selsync_comm::{CommStats, Fabric, Transport, TransportError};
use selsync_core::checkpoint::load_state_with_fallback;
use selsync_core::prelude::*;
use selsync_core::trainer::WorkerOutput;
use selsync_core::ElasticOptions;
use selsync_core::{
    run_elastic_server_rank, run_elastic_server_rank_from, run_elastic_worker_rank,
};
use selsync_core::{
    run_shard_server_rank, run_shard_server_rank_from, run_shard_worker_rank, shard_state_path,
};
use selsync_net::{TcpEndpoint, TcpFabricConfig};
use selsync_nn::models::ModelKind;
use selsync_shard::{Role, ShardLayout};
use serde::Serialize;
// lint:allow(raw-net): binds port 0 only to reserve free loopback ports
// for the spawned cluster; no protocol traffic flows over this listener
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Row {
    scenario: &'static str,
    fabric: &'static str,
    workers: usize,
    steps: u64,
    seed: u64,
    rounds: u64,
    syncs: u64,
    evictions: usize,
    completed_workers: usize,
    failed_workers: usize,
    full_run_workers: usize,
    final_metric: Option<f32>,
    ps_recovered: bool,
    chaos_sent_messages: u64,
    chaos_dropped_messages: u64,
    chaos_duplicated_messages: u64,
    chaos_corrupt_messages: u64,
    fault_fingerprint: String,
    wall_ms: u64,
}

/// Per-rank chaos accounting snapshot, taken after the rank's run.
struct RankChaos {
    sent: u64,
    dropped: u64,
    duplicated: u64,
    corrupt: u64,
    fingerprint: u64,
}

fn snapshot<T: Transport>(cep: &ChaosTransport<T>) -> RankChaos {
    let stats: &Arc<CommStats> = cep.stats();
    RankChaos {
        sent: stats.total_messages(),
        dropped: stats.dropped_messages(),
        duplicated: stats.duplicated_messages(),
        corrupt: stats.corrupt_messages(),
        fingerprint: cep.log_fingerprint(),
    }
}

struct Outcome {
    rounds: u64,
    syncs: u64,
    evictions: usize,
    completed: Vec<WorkerOutput>,
    failed: usize,
    chaos: Vec<RankChaos>,
    ps_recovered: bool,
    wall: Duration,
}

/// How a scheduled PS crash is recovered in-process: wait, optionally
/// tear the current checkpoint generation (forcing the `.prev`
/// fallback), reload, and continue the run on the same endpoint.
#[derive(Clone)]
struct PsRecovery {
    checkpoint: PathBuf,
    restart_after: Duration,
    tear_current: bool,
}

/// Truncate the current generation mid-byte — simulated bit rot of the
/// newest file, strictly harsher than a real mid-write kill (the
/// temp-file + atomic-rename writer never opens the current generation
/// for writing). Only fires when a `.prev` generation exists to fall
/// back on: with a single generation the damage is unrecoverable by
/// construction, which is a statement about the simulated disk, not
/// about the recovery protocol under test.
fn tear_checkpoint(path: &PathBuf) {
    if !selsync_core::checkpoint::prev_path(path).exists() {
        return;
    }
    if let Ok(bytes) = std::fs::read(path) {
        let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
    }
}

/// Drive one full elastic run — PS on rank `n`, workers `0..n`, every
/// endpoint wrapped in a [`ChaosTransport`] executing `plan`.
fn run_scenario<T: Transport + Send + 'static>(
    mut endpoints: Vec<T>,
    cfg: &RunConfig,
    wl: &Workload,
    opts: &ElasticOptions,
    plan: &FaultPlan,
    recovery: Option<PsRecovery>,
) -> Outcome {
    let start = Instant::now();
    let server_ep = endpoints.pop().expect("fabric includes the PS rank");
    let server = {
        let (cfg, wl, opts, plan) = (cfg.clone(), wl.clone(), opts.clone(), plan.clone());
        thread::spawn(move || {
            let mut cep = ChaosTransport::new(server_ep, plan);
            let mut recovered = false;
            let mut res = run_elastic_server_rank(&mut cep, &cfg, &wl, &opts);
            if let (Ok(report), Some(rec)) = (&res, &recovery) {
                if report.crashed {
                    thread::sleep(rec.restart_after);
                    if rec.tear_current {
                        tear_checkpoint(&rec.checkpoint);
                    }
                    res = match load_state_with_fallback(&rec.checkpoint) {
                        Ok((state, fallback)) => {
                            println!(
                                "  recovery=ps_resumed step={} syncs={} fallback_prev={}",
                                state.step,
                                state.syncs,
                                u8::from(fallback)
                            );
                            recovered = true;
                            let mut ropts = opts.clone();
                            ropts.server_crash = None;
                            run_elastic_server_rank_from(&mut cep, &cfg, &wl, &ropts, &state)
                        }
                        Err(e) => Err(TransportError::Protocol(format!(
                            "recovering {}: {e}",
                            rec.checkpoint.display()
                        ))),
                    };
                }
            }
            (res, snapshot(&cep), recovered)
        })
    };
    let workers: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let (cfg, wl, plan) = (cfg.clone(), wl.clone(), plan.clone());
            let mut opts = opts.clone();
            opts.crash_at = plan.crash_step(ep.id());
            thread::spawn(move || {
                let mut cep = ChaosTransport::new(ep, plan);
                let res = run_elastic_worker_rank(&mut cep, &cfg, &wl, &opts);
                (res, snapshot(&cep))
            })
        })
        .collect();

    let mut completed = Vec::new();
    let mut failed = 0;
    let mut chaos = Vec::new();
    for h in workers {
        let (res, snap) = h.join().expect("worker thread");
        chaos.push(snap);
        match res {
            Ok(out) => completed.push(out),
            Err(e) => {
                eprintln!("  worker fault (absorbed by eviction): {e}");
                failed += 1;
            }
        }
    }
    let (report, server_snap, ps_recovered) = server.join().expect("server thread");
    let report = report.expect("the elastic PS must survive (or recover from) every scenario");
    chaos.push(server_snap);
    completed.sort_by_key(|o| o.worker);

    Outcome {
        rounds: report.rounds,
        syncs: report.syncs,
        evictions: report.evictions.len(),
        completed,
        failed,
        chaos,
        ps_recovered,
        wall: start.elapsed(),
    }
}

/// Drive one elastic run over a K-shard PS group laid out shards-first
/// ([`ShardLayout`]); `crash_shard` names the shard whose server honors
/// the scheduled `opts.server_crash` and then recovers from its own
/// `.s<shard>` checkpoint, while the sibling shards keep serving.
#[allow(clippy::too_many_arguments)]
fn run_shard_scenario<T: Transport + Send + 'static>(
    mut endpoints: Vec<T>,
    layout: ShardLayout,
    cfg: &RunConfig,
    wl: &Workload,
    opts: &ElasticOptions,
    plan: &FaultPlan,
    crash_shard: Option<usize>,
    recovery: Option<PsRecovery>,
) -> Outcome {
    let start = Instant::now();
    let mut shard_handles = Vec::new();
    let mut worker_handles = Vec::new();
    while let Some(ep) = endpoints.pop() {
        let (cfg, wl, plan) = (cfg.clone(), wl.clone(), plan.clone());
        let mut opts = opts.clone();
        match layout.role_of(ep.id()) {
            Role::Shard(s) => {
                let rec = recovery.clone().filter(|_| crash_shard == Some(s));
                if crash_shard != Some(s) {
                    // the crash schedule is per-process: siblings serve on
                    opts.server_crash = None;
                }
                shard_handles.push((
                    s,
                    thread::spawn(move || {
                        let mut cep = ChaosTransport::new(ep, plan);
                        let mut recovered = false;
                        let mut res = run_shard_server_rank(&mut cep, &cfg, &wl, &opts, layout);
                        if let (Ok(report), Some(rec)) = (&res, &rec) {
                            if report.crashed {
                                thread::sleep(rec.restart_after);
                                let ckpt = shard_state_path(&rec.checkpoint, s);
                                if rec.tear_current {
                                    tear_checkpoint(&ckpt);
                                }
                                res = match load_state_with_fallback(&ckpt) {
                                    Ok((state, fallback)) => {
                                        println!(
                                            "  recovery=shard_resumed shard={s} step={} \
                                             syncs={} fallback_prev={}",
                                            state.step,
                                            state.syncs,
                                            u8::from(fallback)
                                        );
                                        recovered = true;
                                        let mut ropts = opts.clone();
                                        ropts.server_crash = None;
                                        run_shard_server_rank_from(
                                            &mut cep, &cfg, &wl, &ropts, layout, &state,
                                        )
                                    }
                                    Err(e) => Err(TransportError::Protocol(format!(
                                        "recovering {}: {e}",
                                        ckpt.display()
                                    ))),
                                };
                            }
                        }
                        (res, snapshot(&cep), recovered)
                    }),
                ));
            }
            Role::Worker(_) => {
                opts.crash_at = plan.crash_step(ep.id());
                worker_handles.push(thread::spawn(move || {
                    let mut cep = ChaosTransport::new(ep, plan);
                    let res = run_shard_worker_rank(&mut cep, &cfg, &wl, &opts, layout);
                    (res, snapshot(&cep))
                }));
            }
            Role::Standby(_) => unreachable!("shard scenarios run without standbys"),
        }
    }

    let mut completed = Vec::new();
    let mut failed = 0;
    let mut chaos = Vec::new();
    for h in worker_handles {
        let (res, snap) = h.join().expect("worker thread");
        chaos.push(snap);
        match res {
            Ok(out) => completed.push(out),
            Err(e) => {
                eprintln!("  worker fault (absorbed by eviction): {e}");
                failed += 1;
            }
        }
    }
    shard_handles.sort_by_key(|(s, _)| *s);
    let mut ps_recovered = false;
    let mut reports = Vec::new();
    for (_, h) in shard_handles {
        let (res, snap, recovered) = h.join().expect("shard thread");
        chaos.push(snap);
        ps_recovered |= recovered;
        reports.push(res.expect("every shard must survive (or recover from) the scenario"));
    }
    completed.sort_by_key(|o| o.worker);

    Outcome {
        // shard 0 is the authoritative membership view
        rounds: reports[0].rounds,
        syncs: reports[0].syncs,
        evictions: reports[0].evictions.len(),
        completed,
        failed,
        chaos,
        ps_recovered,
        wall: start.elapsed(),
    }
}

/// Bind `n_ranks` ephemeral loopback ports and connect the full mesh,
/// as `tests/integration_tcp.rs` does.
fn tcp_fabric(n_ranks: usize) -> Vec<TcpEndpoint> {
    let listeners: Vec<TcpListener> = (0..n_ranks)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(rank, listener)| {
            let mut cfg = TcpFabricConfig::new(rank, peers.clone());
            cfg.recv_timeout = Duration::from_secs(60);
            thread::spawn(move || TcpEndpoint::connect_with_listener(cfg, listener).unwrap())
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn emit(row: &Row) {
    println!(
        "{:<18} {:<8} {:>6} {:>5} {:>6} {:>5}/{:<2} {:>5} {:>4} {:>4} {:>8} {:>7}",
        row.scenario,
        row.fabric,
        row.rounds,
        row.syncs,
        row.evictions,
        row.full_run_workers,
        row.workers,
        row.chaos_dropped_messages,
        row.chaos_duplicated_messages,
        row.chaos_corrupt_messages,
        row.final_metric
            .map_or_else(|| "-".to_string(), |m| format!("{:.3}", m)),
        format!("{}ms", row.wall_ms),
    );
    json_row(row);
}

fn main() {
    banner(
        "Fault experiments",
        "Seeded chaos over elastic SelSync (channel + TCP fabrics)",
    );
    let n: usize = std::env::var("SELSYNC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let steps: u64 = std::env::var("SELSYNC_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let seed = 42;
    let cfg = RunConfig {
        strategy: Strategy::SelSync {
            delta: 0.25,
            aggregation: Aggregation::Parameter,
        },
        n_workers: n,
        max_steps: steps,
        eval_every: steps,
        ..RunConfig::quick_defaults()
    };
    let wl = Workload::vision(ModelKind::VggMini, 96, 32, 7);

    // liveness policy: rounds comfortably longer than a training step,
    // eviction after two silent rounds, patient worker-side retries
    let calm = {
        let mut o = ElasticOptions::with_liveness(Duration::from_millis(150), 2);
        o.reply_timeout = Duration::from_secs(10);
        o
    };
    // under random drops the worker must resend well before its own
    // patience runs out; the PS answers stale resends with catch-up
    // replies, and a rank it gives up on gets evicted, not hung
    let flaky_opts = {
        let mut o = ElasticOptions::with_liveness(Duration::from_millis(200), 3);
        o.comm_retries = 6;
        o
    };

    // PS-crash scenarios need prompt worker resends (the first resend
    // is what wakes the recovered server) and a patient failover budget
    let ps_crash_opts = {
        let mut o = ElasticOptions::with_liveness(Duration::from_millis(300), 3);
        o.ps_patience = Duration::from_secs(30);
        o
    };

    // (name, plan, options, scheduled PS crash point + torn-write flag)
    type CrashSpec = Option<(ServerCrashPoint, bool)>;
    let scenarios: Vec<(&'static str, FaultPlan, &ElasticOptions, CrashSpec)> = vec![
        ("fault-free", FaultPlan::quiet(seed), &calm, None),
        (
            "crash-one-worker",
            FaultPlan::crash_one(seed, n - 1, steps / 3),
            &calm,
            None,
        ),
        (
            "slow-straggler",
            FaultPlan::slow_straggler(seed, 1 % n, 3),
            &calm,
            None,
        ),
        (
            "flaky-network",
            FaultPlan::flaky_network(seed, 0.02, 0.03, 2),
            &flaky_opts,
            None,
        ),
        (
            // byte-level damage at roughly the flaky-network loss rate:
            // a corrupted frame dies at the decoder's CRC check, a
            // truncated one at the length audit — either way the
            // protocol sees a lost message and resends
            "corrupt-link",
            FaultPlan::corrupt_link(seed, 0.02, 0.01),
            &flaky_opts,
            None,
        ),
        (
            "crash-ps-midrun",
            FaultPlan::crash_server(seed, steps / 3, 150),
            &ps_crash_opts,
            Some((ServerCrashPoint::RoundStart(steps / 3), false)),
        ),
        (
            // crash at the first sync round past step 2: early steps
            // always sync (Δ(g) starts high), so at least two durable
            // generations exist for the torn-write fallback
            "crash-ps-midckpt",
            FaultPlan::crash_server(seed, 2, 150),
            &ps_crash_opts,
            Some((ServerCrashPoint::MidSync(2), true)),
        ),
    ];

    println!(
        "{:<18} {:<8} {:>6} {:>5} {:>6} {:>8} {:>5} {:>4} {:>4} {:>8} {:>7}",
        "scenario",
        "fabric",
        "rounds",
        "syncs",
        "evict",
        "full/N",
        "drop",
        "dup",
        "corr",
        "metric",
        "wall",
    );
    for (name, plan, opts, crash) in &scenarios {
        for fabric in ["channel", "tcp"] {
            let mut opts = (*opts).clone();
            let recovery = crash.map(|(point, tear_current)| {
                let mut ckpt = std::env::temp_dir();
                ckpt.push(format!(
                    "selsync_faultexp_{}_{name}_{fabric}.ckpt",
                    std::process::id()
                ));
                opts.server_crash = Some(point);
                opts.checkpoint = Some(ckpt.clone());
                let restart_after = Duration::from_millis(
                    plan.server_crash
                        .as_ref()
                        .map_or(150, |c| c.restart_after_ms),
                );
                PsRecovery {
                    checkpoint: ckpt,
                    restart_after,
                    tear_current,
                }
            });
            let outcome = match fabric {
                "channel" => {
                    run_scenario(Fabric::new(n + 1), &cfg, &wl, &opts, plan, recovery.clone())
                }
                _ => run_scenario(tcp_fabric(n + 1), &cfg, &wl, &opts, plan, recovery.clone()),
            };
            if let Some(rec) = &recovery {
                let _ = std::fs::remove_file(&rec.checkpoint);
                let _ = std::fs::remove_file(selsync_core::checkpoint::prev_path(&rec.checkpoint));
            }
            let full_run = outcome
                .completed
                .iter()
                .filter(|o| o.lssr.total() == steps)
                .count();
            let final_metric = outcome
                .completed
                .iter()
                .find(|o| o.worker == 0)
                .and_then(|o| o.evals.last())
                .map(|e| e.metric);
            emit(&Row {
                scenario: name,
                fabric,
                workers: n,
                steps,
                seed,
                rounds: outcome.rounds,
                syncs: outcome.syncs,
                evictions: outcome.evictions,
                completed_workers: outcome.completed.len(),
                failed_workers: outcome.failed,
                full_run_workers: full_run,
                final_metric,
                ps_recovered: outcome.ps_recovered,
                chaos_sent_messages: outcome.chaos.iter().map(|c| c.sent).sum(),
                chaos_dropped_messages: outcome.chaos.iter().map(|c| c.dropped).sum(),
                chaos_duplicated_messages: outcome.chaos.iter().map(|c| c.duplicated).sum(),
                chaos_corrupt_messages: outcome.chaos.iter().map(|c| c.corrupt).sum(),
                fault_fingerprint: format!(
                    "0x{:016x}",
                    outcome.chaos.iter().fold(0u64, |a, c| a ^ c.fingerprint)
                ),
                wall_ms: outcome.wall.as_millis() as u64,
            });
        }
    }
    // sharded PS group scenarios: K = 2 shards (shards-first ranks), no
    // standbys — per-shard recovery and fan-out pacing under one roof
    let layout = ShardLayout::new(2, n, false);
    let shard_scenarios: Vec<(&'static str, FaultPlan, &ElasticOptions, bool)> = vec![
        (
            "crash-one-shard",
            FaultPlan::crash_one_shard(seed, 2, 150),
            &ps_crash_opts,
            true,
        ),
        (
            "shard-skew",
            FaultPlan::slow_shard(seed, 1, 3),
            &calm,
            false,
        ),
    ];
    for (name, plan, opts, crashes) in &shard_scenarios {
        for fabric in ["channel", "tcp"] {
            let mut opts = (*opts).clone();
            // shard 1 is the victim; shard 0 stays authoritative
            let crash_shard = crashes.then_some(1usize);
            let recovery = crashes.then(|| {
                let mut ckpt = std::env::temp_dir();
                ckpt.push(format!(
                    "selsync_faultexp_{}_{name}_{fabric}.ckpt",
                    std::process::id()
                ));
                opts.server_crash = Some(ServerCrashPoint::MidSync(2));
                opts.checkpoint = Some(ckpt.clone());
                PsRecovery {
                    checkpoint: ckpt,
                    restart_after: Duration::from_millis(150),
                    tear_current: false,
                }
            });
            let outcome = match fabric {
                "channel" => run_shard_scenario(
                    Fabric::new(layout.total_ranks()),
                    layout,
                    &cfg,
                    &wl,
                    &opts,
                    plan,
                    crash_shard,
                    recovery.clone(),
                ),
                _ => run_shard_scenario(
                    tcp_fabric(layout.total_ranks()),
                    layout,
                    &cfg,
                    &wl,
                    &opts,
                    plan,
                    crash_shard,
                    recovery.clone(),
                ),
            };
            if let Some(rec) = &recovery {
                for s in 0..layout.k {
                    let p = shard_state_path(&rec.checkpoint, s);
                    let _ = std::fs::remove_file(&p);
                    let _ = std::fs::remove_file(selsync_core::checkpoint::prev_path(&p));
                }
            }
            let full_run = outcome
                .completed
                .iter()
                .filter(|o| o.lssr.total() == steps)
                .count();
            let final_metric = outcome
                .completed
                .iter()
                .find(|o| o.worker == 0)
                .and_then(|o| o.evals.last())
                .map(|e| e.metric);
            emit(&Row {
                scenario: name,
                fabric,
                workers: n,
                steps,
                seed,
                rounds: outcome.rounds,
                syncs: outcome.syncs,
                evictions: outcome.evictions,
                completed_workers: outcome.completed.len(),
                failed_workers: outcome.failed,
                full_run_workers: full_run,
                final_metric,
                ps_recovered: outcome.ps_recovered,
                chaos_sent_messages: outcome.chaos.iter().map(|c| c.sent).sum(),
                chaos_dropped_messages: outcome.chaos.iter().map(|c| c.dropped).sum(),
                chaos_duplicated_messages: outcome.chaos.iter().map(|c| c.duplicated).sum(),
                chaos_corrupt_messages: outcome.chaos.iter().map(|c| c.corrupt).sum(),
                fault_fingerprint: format!(
                    "0x{:016x}",
                    outcome.chaos.iter().fold(0u64, |a, c| a ^ c.fingerprint)
                ),
                wall_ms: outcome.wall.as_millis() as u64,
            });
        }
    }
    println!();
    println!("full/N = workers that ran every step; a crashed or evicted rank stops early.");
    println!("Same seed ⇒ same per-link fault schedule on both fabrics.");
}
