//! Fig. 1b — FedAvg on IID vs. non-IID data.
//!
//! Paper setup: 10 workers, C = 1, E = 0.1; non-IID CIFAR10 split as 1
//! label/worker (ResNet101) and non-IID CIFAR100 as 10 labels/worker
//! (VGG11). The reproduction runs the mini analogues and shows the same
//! shape: the non-IID curves saturate far below the IID ones.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    data: &'static str,
    step: u64,
    metric: f32,
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 1b", "FedAvg: IID vs non-IID data (C=1, E=0.1)");
    // the paper's Fig 1b cluster is 10 workers (and the 1-label-per-
    // worker split needs workers × labels divisible by the class count)
    let workers = 10;
    for (kind, labels_per_worker) in [(ModelKind::ResNetMini, 1), (ModelKind::VggMini, 10)] {
        let wl = Workload::vision(kind, scale.data, scale.data / 4 + 32, 42);
        for (name, noniid) in [("IID", None), ("non-IID", Some(labels_per_worker))] {
            let mut cfg = paper_config(kind, Strategy::FedAvg { c: 1.0, e: 0.1 }, &scale);
            cfg.n_workers = workers;
            cfg.noniid_labels = noniid;
            if noniid.is_some() {
                cfg.partition = PartitionScheme::DefDp; // label split replaces it anyway
            }
            let r = run_and_report(kind, &cfg, &wl);
            for e in &r.evals {
                json_row(&Row {
                    model: kind.paper_name(),
                    data: name,
                    step: e.step,
                    metric: e.metric,
                });
            }
            println!(
                "{:<10} {:<8} final {} (best {})",
                kind.paper_name(),
                name,
                fmt_metric(kind, r.final_metric),
                fmt_metric(kind, r.best_metric(kind.lower_is_better()))
            );
        }
        println!();
    }
}
