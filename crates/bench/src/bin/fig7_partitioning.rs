//! Fig. 7 — DefDP vs. SelDP data-partitioning layouts.
//!
//! Reproduces the paper's 4-worker illustration: DefDP pins each worker
//! to one disjoint chunk; SelDP rotates a circular queue of all chunks
//! so every worker eventually sees the whole dataset while synchronized
//! steps still draw from distinct chunks.

use selsync_bench::banner;
use selsync_data::{chunk_bounds_of, partition_indices, PartitionScheme};

fn chunk_of(bounds: &[(usize, usize)], idx: usize) -> usize {
    bounds
        .iter()
        .position(|&(s, e)| idx >= s && idx < e)
        .unwrap()
}

fn main() {
    banner("Fig 7", "Data partitioning: DefDP vs SelDP (4 workers)");
    let n_samples = 16;
    let n_workers = 4;
    let bounds = chunk_bounds_of(n_samples, n_workers);
    for scheme in [PartitionScheme::DefDp, PartitionScheme::SelDp] {
        println!("{scheme:?}:");
        for w in 0..n_workers {
            let order = partition_indices(n_samples, n_workers, w, scheme);
            let chunks: Vec<String> = order
                .chunks(n_samples / n_workers)
                .map(|c| format!("DP{}", chunk_of(&bounds, c[0])))
                .collect();
            println!("  worker{w}: {}", chunks.join(" → "));
        }
        println!();
    }
    // verify the paper's stated properties programmatically
    for w in 0..n_workers {
        let sel = partition_indices(n_samples, n_workers, w, PartitionScheme::SelDp);
        assert_eq!(sel.len(), n_samples, "SelDP: every worker sees all data");
        assert_eq!(
            chunk_of(&bounds, sel[0]),
            w,
            "SelDP: worker {w}'s queue head is its own chunk"
        );
        let def = partition_indices(n_samples, n_workers, w, PartitionScheme::DefDp);
        assert!(def.iter().all(|&i| chunk_of(&bounds, i) == w));
    }
    println!("Verified: SelDP covers the full dataset per worker with rotated heads; DefDP is disjoint (paper Fig 7).");
}
