//! Ablation — sensitivity of SelSync to the Δ(g) EWMA window size.
//!
//! The paper fixes w = 25 after observing it "sufficed for detecting
//! inter-iteration gradient changes" (§IV-B). This ablation varies the
//! window and reports LSSR, final metric and the per-step tracking cost,
//! exposing the trade-off the paper's choice sits on: tiny windows react
//! to batch noise (oversyncing), huge windows oversmooth (undersyncing)
//! and cost more per step.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    window: usize,
    lssr: f64,
    final_metric: f32,
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "EWMA window size sensitivity (SelSync δ=0.25)");
    let kind = ModelKind::ResNetMini;
    let wl = selsync_bench::workload_for(kind, &scale);
    println!("{:>7} {:>8} {:>10}", "window", "LSSR", "metric");
    let mut rows = Vec::new();
    for &window in &[1usize, 5, 25, 100, 200] {
        let mut cfg = paper_config(
            kind,
            Strategy::SelSync {
                delta: 0.25,
                aggregation: Aggregation::Parameter,
            },
            &scale,
        );
        cfg.ewma_window = window;
        let r = run_and_report(kind, &cfg, &wl);
        println!(
            "{:>7} {:>8.3} {:>10}",
            window,
            r.lssr.lssr(),
            fmt_metric(kind, r.final_metric)
        );
        let row = Row {
            window,
            lssr: r.lssr.lssr(),
            final_metric: r.final_metric,
        };
        json_row(&row);
        rows.push(row);
    }
    let raw = rows.iter().find(|r| r.window == 1).unwrap();
    let paper = rows.iter().find(|r| r.window == 25).unwrap();
    println!(
        "\nw=1 (no smoothing) LSSR {:.3} vs w=25 (paper) LSSR {:.3}:",
        raw.lssr, paper.lssr
    );
    println!("unsmoothed Δ(g) reacts to batch noise and forces more synchronization.");
}
