//! Fig. 8 — SelSync's bookkeeping overheads, measured for real on this
//! host:
//!
//! * 8a: per-step cost of the Δ(g) computation (gradient sqnorm + the
//!   windowed EWMA) as the smoothing window grows 25 → 200. The paper
//!   measures 17 → 26 ms for ResNet101 and a ~2–4× rise for the others;
//!   the *shape* (monotone growth with window size, tiny vs. a training
//!   step) is the claim under test.
//! * 8b: one-time cost of building SelDP vs. DefDP index orders for each
//!   dataset scale.

use selsync_bench::{banner, json_row};
use selsync_core::workload::{Workload, WorkloadData};
use selsync_data::{partition_indices, PartitionScheme};
use selsync_nn::flat::flat_grads;
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::ModelKind;
use selsync_stats::RelativeGradChange;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct RowA {
    model: &'static str,
    window: usize,
    overhead_us: f64,
}

#[derive(Serialize)]
struct RowB {
    dataset_units: usize,
    scheme: &'static str,
    build_us: f64,
}

fn main() {
    banner("Fig 8a", "Δ(g) computation overhead vs EWMA window size");
    println!("{:<12} {:>7} {:>14}", "model", "window", "overhead(µs)");
    for kind in ModelKind::ALL {
        // a real gradient from one backprop step of the mini
        let wl = Workload::for_kind(kind, 256, 42);
        let mut model = wl.build_model();
        let batch = first_batch(&wl, 16);
        let logits = model.as_model().forward(&batch.input, true);
        let (_, dl) = softmax_cross_entropy(&logits, &batch.targets);
        model.as_model().zero_grad();
        model.as_model().backward(&dl);
        let grads = flat_grads(model.as_visitor());

        // the gradient-norm read-out is window-independent; report once
        let reps = 2000;
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(grads.iter().map(|g| g * g).sum::<f32>());
        }
        let norm_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!(
            "{:<12} {:>7} {:>14.2}   (norm read-out, window-independent)",
            kind.paper_name(),
            "-",
            norm_us
        );
        let mut base = 0.0;
        for &window in &[25usize, 50, 100, 200] {
            let mut tracker = RelativeGradChange::new(window, 0.16);
            // prime the window, then measure steady-state updates
            for i in 0..window {
                tracker.update(1.0 + i as f32);
            }
            let reps = 20_000;
            let start = Instant::now();
            for i in 0..reps {
                black_box(tracker.update(black_box(1.0 + (i % 7) as f32)));
            }
            let us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
            println!("{:<12} {:>7} {:>14.2}", kind.paper_name(), window, us);
            json_row(&RowA {
                model: kind.paper_name(),
                window,
                overhead_us: us,
            });
            if window == 25 {
                base = us;
            }
            if window == 200 {
                println!(
                    "             window 25 → 200: {:.0}% increase (paper: +53..178%)",
                    (us / base - 1.0) * 100.0
                );
            }
        }
        println!();
    }

    banner("Fig 8b", "Partition build time: SelDP vs DefDP");
    println!(
        "{:<14} {:<8} {:>12}",
        "dataset-units", "scheme", "build(µs)"
    );
    for &units in &[1_000usize, 10_000, 100_000, 1_000_000] {
        for (scheme, name) in [
            (PartitionScheme::DefDp, "DefDP"),
            (PartitionScheme::SelDp, "SelDP"),
        ] {
            let reps = 20;
            let start = Instant::now();
            for w in 0..reps {
                black_box(partition_indices(units, 16, w % 16, scheme));
            }
            let us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
            println!("{:<14} {:<8} {:>12.1}", units, name, us);
            json_row(&RowB {
                dataset_units: units,
                scheme: name,
                build_us: us,
            });
        }
    }
    println!("\nShape check: SelDP costs at most a small constant factor over DefDP and stays a sub-second one-time cost even at ImageNet scale (paper Fig 8b).");
}

fn first_batch(wl: &Workload, b: usize) -> selsync_nn::Batch {
    match &wl.data {
        WorkloadData::Vision { train, .. } => {
            let idx: Vec<usize> = (0..b.min(train.len())).collect();
            let (x, t) = train.gather(&idx);
            selsync_nn::Batch::dense(x, t)
        }
        WorkloadData::Text { train, .. } => {
            let seq = selsync_core::workload::SEQ_LEN;
            let mut seqs = Vec::new();
            let mut targets = Vec::new();
            for w in 0..b.min(train.num_windows(seq)) {
                let (x, y) = train.window(w, seq);
                seqs.push(x);
                targets.extend(y);
            }
            selsync_nn::Batch::tokens(seqs, targets)
        }
    }
}
