//! Ablation — PS push/pull vs. ring allreduce as SelSync's sync op.
//!
//! §III-E notes the PS calls in Alg. 1 can be swapped for an allreduce:
//! the PS wall grows linearly with N while ring allreduce is
//! bandwidth-optimal. This bench reports (a) the modeled sync cost per
//! collective across cluster sizes at each workload's paper-scale model
//! size, and (b) a *real* in-process timing of our ring implementation
//! vs. the root-based reduce on a paper-shaped vector.

use selsync_bench::{banner, json_row};
use selsync_comm::collectives::{ring_allreduce, root_allreduce};
use selsync_comm::{Fabric, NetworkModel};
use selsync_nn::models::ModelKind;
use serde::Serialize;
use std::thread;
use std::time::Instant;

#[derive(Serialize)]
struct ModelRow {
    model: &'static str,
    workers: usize,
    ps_sync_s: f64,
    ring_allreduce_s: f64,
}

#[derive(Serialize)]
struct RealRow {
    workers: usize,
    vector_len: usize,
    ring_ms: f64,
    root_ms: f64,
}

fn main() {
    banner("Ablation", "PS vs ring-allreduce synchronization cost");
    let net = NetworkModel::paper_cluster();
    println!(
        "{:<12} {:>3} {:>12} {:>14}",
        "model", "N", "PS sync(s)", "ring sync(s)"
    );
    for kind in ModelKind::ALL {
        let m = kind.paper_model_bytes();
        for &n in &[2usize, 4, 8, 16, 32] {
            let ps = net.ps_sync_time(m, n);
            let ring = net.ring_allreduce_time(m, n);
            println!(
                "{:<12} {:>3} {:>12.3} {:>14.3}",
                kind.paper_name(),
                n,
                ps,
                ring
            );
            json_row(&ModelRow {
                model: kind.paper_name(),
                workers: n,
                ps_sync_s: ps,
                ring_allreduce_s: ring,
            });
        }
        println!();
    }
    println!(
        "Modeled shape: PS grows ~linearly with N; the ring flattens out (bandwidth-optimal).\n"
    );

    println!("Real in-process collectives (threads + channels), 1M-float vector:");
    println!("{:>3} {:>12} {:>12}", "N", "ring(ms)", "root(ms)");
    for &n in &[2usize, 4, 8] {
        let len = 1_000_000;
        let time_it = |use_ring: bool| -> f64 {
            let eps = Fabric::new(n);
            let start = Instant::now();
            let handles: Vec<_> = eps
                .into_iter()
                .map(|mut ep| {
                    thread::spawn(move || {
                        let mut v = vec![1.0f32; len];
                        if use_ring {
                            ring_allreduce(&mut ep, n, 0, &mut v).unwrap();
                        } else {
                            root_allreduce(&mut ep, n, 0, &mut v).unwrap();
                        }
                        assert_eq!(v[0], n as f32);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            start.elapsed().as_secs_f64() * 1000.0
        };
        let ring = time_it(true);
        let root = time_it(false);
        println!("{n:>3} {ring:>12.1} {root:>12.1}");
        json_row(&RealRow {
            workers: n,
            vector_len: len,
            ring_ms: ring,
            root_ms: root,
        });
    }
    println!("\n(Host timings on a shared-memory fabric favor fewer total copies; the wire-model rows above give the 5 Gbps picture.)");
}
