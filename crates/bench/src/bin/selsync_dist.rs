//! `selsync_dist` — multi-process launcher: run one rank of a real
//! TCP-fabric training job. Start `n` worker processes (ranks `0..n`)
//! and one parameter-server process (rank `n`) with the same `--peers`
//! list and the same training flags; the ranks dial each other (with
//! retry, so start order is free) and run the exact trainer code the
//! in-process harness uses, so results are bit-identical to a same-seed
//! single-process run.
//!
//! ```sh
//! P="127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102"
//! selsync_dist --role ps     --rank 2 --peers $P --strategy selsync --delta 0.25 &
//! selsync_dist --role worker --rank 0 --peers $P --strategy selsync --delta 0.25 &
//! selsync_dist --role worker --rank 1 --peers $P --strategy selsync --delta 0.25 &
//! wait
//! ```
//!
//! A dead peer is a *diagnosed failure*, not a hang: every rank exits
//! nonzero with a one-line `fatal:` message when the fabric faults.
//! `--elastic` upgrades the failure to a tolerated event — the PS evicts
//! silent workers and the survivors keep training — and `--fault-plan`
//! injects a seeded chaos schedule (drops, duplicates, delays,
//! stragglers, crashes) for reproducible failure experiments.

use selsync_bench::cli::parse_args;
use selsync_chaos::{ChaosTransport, FaultPlan, ServerCrash};
use selsync_comm::elastic::{ElasticReport, ServerCrashPoint, StandbyOutcome};
use selsync_comm::{Transport, TransportError};
use selsync_core::checkpoint::load_state_with_fallback;
use selsync_core::elastic::{
    run_elastic_server_rank, run_elastic_server_rank_from, run_elastic_worker_rank,
    run_standby_server_rank, ElasticOptions,
};
use selsync_core::shard::{
    run_shard_server_rank, run_shard_server_rank_from, run_shard_standby_rank,
    run_shard_worker_rank, shard_state_path,
};
use selsync_core::trainer::{run_server_rank, run_worker_rank, WorkerOutput};
use selsync_core::Workload;
use selsync_net::{PollTcpEndpoint, TcpEndpoint, TcpFabricConfig};
use selsync_shard::{Role, ShardLayout};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const DIST_USAGE: &str = "\
selsync_dist — run one rank of a multi-process TCP training job

USAGE:
  selsync_dist --role ps|worker|standby --rank N --peers host:port,...
               [training flags]

DIST KEYS:
  --role             ps | worker | standby             (required)
  --rank             this process's rank; workers are 0..n, the ps is
                     n, the standby (with --standby) n+1 (required)
  --peers            comma-separated host:port of every rank, in rank
                     order; the ps follows the workers and the standby
                     (if any) is last                   (required)
  --connect-timeout  seconds to keep redialing peers    (default 60)
  --recv-timeout     watchdog seconds for blocking receives; a silent
                     fabric fails instead of hanging    (default 300)
  --fabric           tcp | poll — thread-per-connection blocking fabric
                     or the single-thread event-driven poll loop; the
                     wire protocol is identical, so ranks may mix
                     fabrics freely                     (default tcp)

FAULT TOLERANCE:
  --elastic            run the elastic membership protocol: the ps
                       evicts silent workers, survivors re-partition
                       and keep training, crashed workers may rejoin
  --round-timeout-ms   elastic ps silence deadline per round (default 1000)
  --max-missed         missed rounds before eviction      (default 3)
  --fault-plan FILE    JSON FaultPlan (selsync-chaos) injected at this
                       rank's transport; scheduled worker crashes and
                       the server_crash are honored in --elastic mode

RECOVERY (all require --elastic):
  --checkpoint FILE    ps: write a crash-consistent v2 state checkpoint
                       (atomic rename + retained .prev generation)
                       after every sync round; workers mirror their
                       private state to FILE.w<rank>
  --resume FILE        ps: restart from the last durable sync round in
                       FILE (falls back to FILE.prev on a torn write)
                       and print a one-line `recovery=` report
  --standby            every rank: the cluster has a hot-standby ps at
                       rank n+1 shadowing each sync; workers fail over
                       to it when the primary goes silent
  --ps-patience-ms     worker budget for re-reaching a silent ps before
                       failing over (default 3 x reply timeout)

SHARDED PS (requires --elastic):
  --ps-shards K        run a K-shard PS group instead of one monolithic
                       ps. Rank layout changes to shards-first: shards
                       are ranks 0..K, workers K..K+W, and (with
                       --standby) one standby per shard at K+W..K+W+K.
                       --role ps serves the shard equal to its rank;
                       each shard checkpoints to FILE.s<shard> and
                       --resume reloads that shard's own file, so one
                       shard can be killed and restarted while the
                       others keep serving. --ps-shards 1 runs the
                       sharded code path with one shard — bit-identical
                       results to the monolithic layout, different rank
                       numbering.

The worker count is taken from --peers (entries minus the ps, minus the
standby when --standby is given); any --workers flag must agree. All
ranks must be given identical training flags and the same --seed, or
they will disagree on partitions and initial state.

Training flags are those of selsync_run (see selsync_run --help).
--save-params writes the final parameters in the legacy v1 format: on
the ps rank the final global parameters, on a worker rank that
replica's; per-sync durable state goes to --checkpoint.

EXIT CODES: 0 ok (including a scheduled crash) / 1 comm fault or
eviction / 2 usage error.
";

struct DistArgs {
    role: String,
    rank: usize,
    peers: Vec<String>,
    connect_timeout: Duration,
    recv_timeout: Duration,
    poll_fabric: bool,
    elastic: bool,
    round_timeout: Duration,
    max_missed: u32,
    fault_plan: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    standby: bool,
    ps_patience: Option<Duration>,
    ps_shards: Option<usize>,
    rest: Vec<String>,
}

#[allow(clippy::too_many_lines)]
fn split_dist_args(args: &[String]) -> Result<DistArgs, String> {
    let mut role = None;
    let mut rank = None;
    let mut peers: Option<Vec<String>> = None;
    let mut connect_timeout = Duration::from_secs(60);
    let mut recv_timeout = Duration::from_secs(300);
    let mut poll_fabric = false;
    let mut elastic = false;
    let mut round_timeout = Duration::from_millis(1000);
    let mut max_missed = 3u32;
    let mut fault_plan = None;
    let mut checkpoint = None;
    let mut resume = None;
    let mut standby = false;
    let mut ps_patience = None;
    let mut ps_shards = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        if key == "--help" {
            return Err(DIST_USAGE.to_string());
        }
        if key == "--elastic" {
            elastic = true;
            continue;
        }
        if key == "--standby" {
            standby = true;
            continue;
        }
        let mut dist_value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key.as_str() {
            "--role" => role = Some(dist_value()?),
            "--rank" => {
                rank = Some(
                    dist_value()?
                        .parse()
                        .map_err(|_| "--rank must be an integer".to_string())?,
                )
            }
            "--peers" => peers = Some(dist_value()?.split(',').map(str::to_string).collect()),
            "--connect-timeout" => {
                connect_timeout = Duration::from_secs(
                    dist_value()?
                        .parse()
                        .map_err(|_| "--connect-timeout must be seconds".to_string())?,
                )
            }
            "--recv-timeout" => {
                recv_timeout = Duration::from_secs(
                    dist_value()?
                        .parse()
                        .map_err(|_| "--recv-timeout must be seconds".to_string())?,
                )
            }
            "--fabric" => {
                poll_fabric = match dist_value()?.as_str() {
                    "tcp" => false,
                    "poll" => true,
                    other => return Err(format!("--fabric takes tcp|poll, got '{other}'")),
                }
            }
            "--round-timeout-ms" => {
                round_timeout = Duration::from_millis(
                    dist_value()?
                        .parse()
                        .map_err(|_| "--round-timeout-ms must be milliseconds".to_string())?,
                )
            }
            "--max-missed" => {
                max_missed = dist_value()?
                    .parse()
                    .map_err(|_| "--max-missed must be an integer".to_string())?
            }
            "--fault-plan" => fault_plan = Some(PathBuf::from(dist_value()?)),
            "--checkpoint" => checkpoint = Some(PathBuf::from(dist_value()?)),
            "--resume" => resume = Some(PathBuf::from(dist_value()?)),
            "--ps-patience-ms" => {
                ps_patience =
                    Some(Duration::from_millis(dist_value()?.parse().map_err(
                        |_| "--ps-patience-ms must be milliseconds".to_string(),
                    )?))
            }
            "--ps-shards" => {
                let k: usize = dist_value()?
                    .parse()
                    .map_err(|_| "--ps-shards must be an integer".to_string())?;
                if k == 0 {
                    return Err("--ps-shards must be at least 1".to_string());
                }
                ps_shards = Some(k);
            }
            _ => {
                rest.push(key.clone());
                rest.push(
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("missing value for {key}"))?,
                );
            }
        }
    }
    Ok(DistArgs {
        role: role.ok_or("--role is required")?,
        rank: rank.ok_or("--rank is required")?,
        peers: peers.ok_or("--peers is required")?,
        connect_timeout,
        recv_timeout,
        poll_fabric,
        elastic,
        round_timeout,
        max_missed,
        fault_plan,
        checkpoint,
        resume,
        standby,
        ps_patience,
        ps_shards,
        rest,
    })
}

/// Stable checksum of a parameter vector's exact bit pattern, so ranks
/// from separate runs can be compared by eye.
fn params_fingerprint(params: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in params {
        for b in v.to_bits().to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

struct RankJob<'a> {
    dist: &'a DistArgs,
    run: &'a selsync_bench::cli::CliRun,
    workload: &'a Workload,
    fabric_stats: Arc<selsync_comm::CommStats>,
    crash_at: Option<u64>,
    server_crash: Option<ServerCrash>,
    /// Shards-first rank layout when `--ps-shards` is given.
    shards: Option<ShardLayout>,
}

/// The worker's result lines, identical across the monolithic and
/// sharded paths so same-seed runs can be compared field by field.
fn print_worker_output(job: &RankJob, out: &WorkerOutput) {
    let dist = job.dist;
    println!(
        "role=worker rank={} steps={} steps_run={}",
        dist.rank,
        job.run.config.max_steps,
        out.lssr.total()
    );
    println!("lssr={:.6}", out.lssr.lssr());
    println!(
        "params_fingerprint=0x{:016x}",
        params_fingerprint(&out.final_params)
    );
    println!("fabric_bytes_sent={}", job.fabric_stats.total_bytes());
    if out.worker == 0 {
        // step-for-step sync decision log: 1 = synchronized step
        let decisions: String = out
            .records
            .iter()
            .map(|r| if r.synced { '1' } else { '0' })
            .collect();
        println!("decisions={decisions}");
        if let Some(r) = out.records.last() {
            println!("final_loss={:.6}", r.loss);
        }
        if let Some(e) = out.evals.last() {
            println!("final_metric={:.6}", e.metric);
        }
    }
    if let Some(path) = &job.run.save_params {
        selsync_core::checkpoint::save_params(path, &out.final_params)
            .expect("writable checkpoint path");
        eprintln!("[rank {}] saved replica params to {path}", dist.rank);
    }
}

fn print_ps_report(rank: usize, steps: u64, report: &ElasticReport) {
    println!(
        "role=ps rank={rank} steps={steps} elastic=1 rounds={} syncs={}",
        report.rounds, report.syncs
    );
    let fmt = |v: &[(u64, usize)]| {
        v.iter()
            .map(|(s, r)| format!("{s}:{r}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!("evictions={}", fmt(&report.evictions));
    println!("joins={}", fmt(&report.joins));
}

/// Run the elastic PS to completion, honoring `--resume` at startup and
/// the fault plan's scheduled `server_crash` (crash mid-sync, then —
/// when a restart delay is set — reload the durable checkpoint and
/// continue on the same fabric). Each recovery prints one
/// `recovery=ps_resumed` line.
fn run_elastic_ps<T: Transport>(
    ep: &mut T,
    job: &RankJob,
    eopts: &mut ElasticOptions,
) -> Result<ElasticReport, TransportError> {
    let (dist, run) = (job.dist, job.run);
    let load = |path: &PathBuf| {
        load_state_with_fallback(path).map_err(|e| {
            TransportError::Protocol(format!("loading checkpoint {}: {e}", path.display()))
        })
    };
    eopts.server_crash = job
        .server_crash
        .as_ref()
        .map(|c| ServerCrashPoint::MidSync(c.at_step));
    let mut report = if let Some(path) = &dist.resume {
        let (state, fallback) = load(path)?;
        println!(
            "recovery=ps_resumed step={} syncs={} fallback_prev={}",
            state.step,
            state.syncs,
            u8::from(fallback)
        );
        run_elastic_server_rank_from(&mut *ep, &run.config, job.workload, eopts, &state)?
    } else {
        run_elastic_server_rank(&mut *ep, &run.config, job.workload, eopts)?
    };
    while report.crashed {
        let restart_ms = job.server_crash.as_ref().map_or(0, |c| c.restart_after_ms);
        let Some(ckpt) = eopts.checkpoint.clone().filter(|_| restart_ms > 0) else {
            // no restart scheduled (or nothing durable): stay dead and
            // let the standby — if any — take over
            println!("recovery=ps_dead syncs={}", report.syncs);
            break;
        };
        eprintln!(
            "[rank {}] ps crashed at a scheduled point; restarting in {restart_ms} ms",
            dist.rank
        );
        std::thread::sleep(Duration::from_millis(restart_ms));
        let (state, fallback) = load(&ckpt)?;
        println!(
            "recovery=ps_resumed step={} syncs={} fallback_prev={}",
            state.step,
            state.syncs,
            u8::from(fallback)
        );
        eopts.server_crash = None;
        report = run_elastic_server_rank_from(&mut *ep, &run.config, job.workload, eopts, &state)?;
    }
    Ok(report)
}

/// Run this rank's role to completion over any transport; returns the
/// process exit code. Every comm fault becomes a one-line `fatal:`
/// diagnostic and a nonzero exit instead of a hang or a panic.
fn run_one_rank<T: Transport>(ep: &mut T, job: &RankJob) -> i32 {
    let dist = job.dist;
    let run = job.run;
    let steps = run.config.max_steps;
    let mut eopts = ElasticOptions::with_liveness(dist.round_timeout, dist.max_missed);
    eopts.crash_at = job.crash_at;
    eopts.standby = dist.standby;
    eopts.checkpoint = dist.checkpoint.clone().or_else(|| dist.resume.clone());
    if let Some(p) = dist.ps_patience {
        eopts.ps_patience = p;
    }
    if let Some(layout) = job.shards {
        return run_sharded_rank(&mut *ep, job, layout, &mut eopts);
    }
    if dist.role == "standby" {
        return match run_standby_server_rank(&mut *ep, &run.config, job.workload, &eopts) {
            Ok(StandbyOutcome::Retired { shadowed_syncs }) => {
                println!(
                    "role=standby rank={} promoted=0 shadowed_syncs={shadowed_syncs}",
                    dist.rank
                );
                0
            }
            Ok(StandbyOutcome::Promoted(report)) => {
                println!("recovery=promoted_standby syncs={}", report.syncs);
                print_ps_report(dist.rank, steps, &report);
                println!(
                    "params_fingerprint=0x{:016x}",
                    params_fingerprint(&report.final_params)
                );
                println!("fabric_bytes_sent={}", job.fabric_stats.total_bytes());
                0
            }
            Err(e) => {
                eprintln!("[rank {}] fatal: {e}", dist.rank);
                1
            }
        };
    }
    if dist.role == "ps" {
        let final_params = if dist.elastic {
            match run_elastic_ps(&mut *ep, job, &mut eopts) {
                Ok(report) => {
                    print_ps_report(dist.rank, steps, &report);
                    report.final_params
                }
                Err(e) => {
                    eprintln!("[rank {}] fatal: {e}", dist.rank);
                    return 1;
                }
            }
        } else {
            match run_server_rank(&mut *ep, &run.config, job.workload) {
                Ok(p) => {
                    println!("role=ps rank={} steps={steps}", dist.rank);
                    p
                }
                Err(e) => {
                    eprintln!("[rank {}] fatal: {e}", dist.rank);
                    return 1;
                }
            }
        };
        println!(
            "params_fingerprint=0x{:016x}",
            params_fingerprint(&final_params)
        );
        println!("fabric_bytes_sent={}", job.fabric_stats.total_bytes());
        if let Some(path) = &run.save_params {
            selsync_core::checkpoint::save_params(path, &final_params)
                .expect("writable checkpoint path");
            eprintln!("[rank {}] saved global params to {path}", dist.rank);
        }
        0
    } else {
        let out = if dist.elastic {
            match run_elastic_worker_rank(&mut *ep, &run.config, job.workload, &eopts) {
                Ok(out) => out,
                Err(e @ TransportError::Evicted { .. }) => {
                    eprintln!("[rank {}] fatal: {e}", dist.rank);
                    return 1;
                }
                Err(e) => {
                    eprintln!("[rank {}] fatal: {e}", dist.rank);
                    return 1;
                }
            }
        } else {
            match run_worker_rank(&mut *ep, &run.config, job.workload) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("[rank {}] fatal: {e}", dist.rank);
                    return 1;
                }
            }
        };
        print_worker_output(job, &out);
        0
    }
}

/// Run one shard of the PS group to completion: honor `--resume` from
/// this shard's own `FILE.s<shard>` checkpoint, then re-enter the serve
/// loop after any scheduled `server_crash`, exactly mirroring the
/// monolithic [`run_elastic_ps`] recovery loop but scoped to one range.
fn run_shard_ps<T: Transport>(
    ep: &mut T,
    job: &RankJob,
    layout: ShardLayout,
    shard: usize,
    eopts: &mut ElasticOptions,
) -> Result<ElasticReport, TransportError> {
    let (dist, run) = (job.dist, job.run);
    let load = |base: &PathBuf| {
        let path = shard_state_path(base, shard);
        load_state_with_fallback(&path).map_err(|e| {
            TransportError::Protocol(format!("loading checkpoint {}: {e}", path.display()))
        })
    };
    eopts.server_crash = job
        .server_crash
        .as_ref()
        .map(|c| ServerCrashPoint::MidSync(c.at_step));
    let mut report = if let Some(base) = &dist.resume {
        let (state, fallback) = load(base)?;
        println!(
            "recovery=shard_resumed shard={shard} step={} syncs={} fallback_prev={}",
            state.step,
            state.syncs,
            u8::from(fallback)
        );
        run_shard_server_rank_from(&mut *ep, &run.config, job.workload, eopts, layout, &state)?
    } else {
        run_shard_server_rank(&mut *ep, &run.config, job.workload, eopts, layout)?
    };
    while report.crashed {
        let restart_ms = job.server_crash.as_ref().map_or(0, |c| c.restart_after_ms);
        let Some(base) = eopts.checkpoint.clone().filter(|_| restart_ms > 0) else {
            println!("recovery=shard_dead shard={shard} syncs={}", report.syncs);
            break;
        };
        eprintln!(
            "[rank {}] shard {shard} crashed at a scheduled point; restarting in {restart_ms} ms",
            dist.rank
        );
        std::thread::sleep(Duration::from_millis(restart_ms));
        let (state, fallback) = load(&base)?;
        println!(
            "recovery=shard_resumed shard={shard} step={} syncs={} fallback_prev={}",
            state.step,
            state.syncs,
            u8::from(fallback)
        );
        eopts.server_crash = None;
        report =
            run_shard_server_rank_from(&mut *ep, &run.config, job.workload, eopts, layout, &state)?;
    }
    Ok(report)
}

/// Sharded-layout dispatch: the same three roles as [`run_one_rank`],
/// but ranks are laid out shards-first and each PS rank serves one
/// range of the parameter vector.
fn run_sharded_rank<T: Transport>(
    ep: &mut T,
    job: &RankJob,
    layout: ShardLayout,
    eopts: &mut ElasticOptions,
) -> i32 {
    let dist = job.dist;
    let steps = job.run.config.max_steps;
    match layout.role_of(dist.rank) {
        Role::Standby(shard) => {
            match run_shard_standby_rank(&mut *ep, &job.run.config, job.workload, eopts, layout) {
                Ok(StandbyOutcome::Retired { shadowed_syncs }) => {
                    println!(
                        "role=standby rank={} shard={shard} promoted=0 shadowed_syncs={shadowed_syncs}",
                        dist.rank
                    );
                    0
                }
                Ok(StandbyOutcome::Promoted(report)) => {
                    println!(
                        "recovery=promoted_standby shard={shard} syncs={}",
                        report.syncs
                    );
                    print_ps_report(dist.rank, steps, &report);
                    println!(
                        "params_fingerprint=0x{:016x}",
                        params_fingerprint(&report.final_params)
                    );
                    println!("fabric_bytes_sent={}", job.fabric_stats.total_bytes());
                    0
                }
                Err(e) => {
                    eprintln!("[rank {}] fatal: {e}", dist.rank);
                    1
                }
            }
        }
        Role::Shard(shard) => match run_shard_ps(&mut *ep, job, layout, shard, eopts) {
            Ok(report) => {
                print_ps_report(dist.rank, steps, &report);
                println!("shard={shard} shard_len={}", report.final_params.len());
                println!(
                    "params_fingerprint=0x{:016x}",
                    params_fingerprint(&report.final_params)
                );
                println!("fabric_bytes_sent={}", job.fabric_stats.total_bytes());
                if let Some(path) = &job.run.save_params {
                    // per-shard range in the same v1 format, suffixed
                    // like the durable checkpoints
                    let p = shard_state_path(std::path::Path::new(path), shard);
                    selsync_core::checkpoint::save_params(&p, &report.final_params)
                        .expect("writable checkpoint path");
                    eprintln!(
                        "[rank {}] saved shard {shard} params to {}",
                        dist.rank,
                        p.display()
                    );
                }
                0
            }
            Err(e) => {
                eprintln!("[rank {}] fatal: {e}", dist.rank);
                1
            }
        },
        Role::Worker(_) => {
            let out =
                match run_shard_worker_rank(&mut *ep, &job.run.config, job.workload, eopts, layout)
                {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("[rank {}] fatal: {e}", dist.rank);
                        return 1;
                    }
                };
            print_worker_output(job, &out);
            0
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dist = match split_dist_args(&args) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if args.contains(&"--help".into()) {
                0
            } else {
                2
            });
        }
    };
    // server ranks the peer list must carry: K shards (plus K standbys)
    // in sharded mode, 1 ps (plus 1 standby) otherwise
    let k = dist.ps_shards.unwrap_or(1);
    let servers = k * (1 + usize::from(dist.standby));
    let n_workers = dist.peers.len().saturating_sub(servers);
    if n_workers == 0 {
        eprintln!(
            "--peers needs at least {} entries (1 worker + {k} server rank(s){})",
            1 + servers,
            if dist.standby {
                " + their standbys"
            } else {
                ""
            }
        );
        std::process::exit(2);
    }
    if !dist.elastic && (dist.standby || dist.resume.is_some() || dist.checkpoint.is_some()) {
        eprintln!("--standby / --resume / --checkpoint require --elastic");
        std::process::exit(2);
    }
    if dist.ps_shards.is_some() && !dist.elastic {
        eprintln!("--ps-shards requires --elastic");
        std::process::exit(2);
    }
    let shards = dist
        .ps_shards
        .map(|k| ShardLayout::new(k, n_workers, dist.standby));

    // force the cluster size the peer list implies; reject contradictions
    let mut training = dist.rest.clone();
    if let Some(i) = training.iter().position(|a| a == "--workers") {
        if training[i + 1] != n_workers.to_string() {
            eprintln!(
                "--workers {} contradicts --peers ({} workers + 1 ps)",
                training[i + 1],
                n_workers
            );
            std::process::exit(2);
        }
    } else {
        training.push("--workers".into());
        training.push(n_workers.to_string());
    }
    let run = match parse_args(&training) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let role_label = if let Some(layout) = shards {
        // shards-first layout: the rank decides the role, the --role
        // flag must agree
        if dist.rank >= layout.total_ranks() {
            eprintln!(
                "rank {} out of range 0..{} for a {k}-shard layout",
                dist.rank,
                layout.total_ranks()
            );
            std::process::exit(2);
        }
        let expected = match layout.role_of(dist.rank) {
            Role::Shard(_) => "ps",
            Role::Worker(_) => "worker",
            Role::Standby(_) => "standby",
        };
        if dist.role != expected {
            eprintln!(
                "rank {} is the {expected} rank in a {k}-shard layout (shards 0..{k}, \
                 workers {k}..{}, standbys after), got --role {}",
                dist.rank,
                k + n_workers,
                dist.role
            );
            std::process::exit(2);
        }
        if dist.role == "standby" && !dist.standby {
            eprintln!("--role standby requires the --standby cluster flag");
            std::process::exit(2);
        }
        expected
    } else {
        match dist.role.as_str() {
            "ps" => {
                if dist.rank != n_workers {
                    eprintln!("the ps must be rank {n_workers}, got {}", dist.rank);
                    std::process::exit(2);
                }
                "ps"
            }
            "worker" => {
                if dist.rank >= n_workers {
                    eprintln!("worker rank {} out of range 0..{n_workers}", dist.rank);
                    std::process::exit(2);
                }
                "worker"
            }
            "standby" => {
                if !dist.standby {
                    eprintln!("--role standby requires the --standby cluster flag");
                    std::process::exit(2);
                }
                if dist.rank != n_workers + 1 {
                    eprintln!(
                        "the standby must be rank {}, got {}",
                        n_workers + 1,
                        dist.rank
                    );
                    std::process::exit(2);
                }
                "standby"
            }
            other => {
                eprintln!("unknown role '{other}' (ps | worker | standby)");
                std::process::exit(2);
            }
        }
    };

    let plan = dist
        .fault_plan
        .as_ref()
        .map(|path| match FaultPlan::load(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("[rank {}] bad --fault-plan: {e}", dist.rank);
                std::process::exit(2);
            }
        });

    let mut workload = Workload::for_kind(run.kind, run.data_scale, run.config.seed);
    if let Some(path) = &run.load_params {
        workload.init_params =
            Some(selsync_core::checkpoint::load_params(path).expect("readable checkpoint"));
        eprintln!("[rank {}] warm-started from {path}", dist.rank);
    }

    let mut fabric = TcpFabricConfig::new(dist.rank, dist.peers.clone());
    fabric.connect_timeout = dist.connect_timeout;
    fabric.recv_timeout = dist.recv_timeout;
    eprintln!(
        "[rank {}] {} dialing {} peers ({} on {})...",
        dist.rank,
        role_label,
        n_workers,
        run.config.strategy.label(),
        dist.peers[dist.rank]
    );
    let code = if dist.poll_fabric {
        match PollTcpEndpoint::connect(fabric) {
            Ok(ep) => drive_endpoint(ep, &dist, &run, &workload, plan, shards),
            Err(e) => {
                eprintln!("[rank {}] fabric setup failed: {e}", dist.rank);
                1
            }
        }
    } else {
        match TcpEndpoint::connect(fabric) {
            Ok(ep) => drive_endpoint(ep, &dist, &run, &workload, plan, shards),
            Err(e) => {
                eprintln!("[rank {}] fabric setup failed: {e}", dist.rank);
                1
            }
        }
    };
    std::process::exit(code);
}

/// Run this rank over an established fabric endpoint (blocking or
/// poll — the training code is fabric-agnostic) and return the exit
/// code, with the fabric cleanly flushed before `main` exits.
fn drive_endpoint<T: Transport>(
    mut ep: T,
    dist: &DistArgs,
    run: &selsync_bench::cli::CliRun,
    workload: &Workload,
    plan: Option<FaultPlan>,
    shards: Option<ShardLayout>,
) -> i32 {
    let job = RankJob {
        dist,
        run,
        workload,
        fabric_stats: Arc::clone(ep.stats()),
        crash_at: plan.as_ref().and_then(|p| p.crash_step(dist.rank)),
        server_crash: plan.as_ref().and_then(|p| p.server_crash.clone()),
        shards,
    };
    match plan {
        Some(plan) => {
            let mut cep = ChaosTransport::new(ep, plan);
            let code = run_one_rank(&mut cep, &job);
            // chaos-layer accounting: sent − dropped − corrupt
            // + duplicated must equal the messages the inner fabric
            // actually framed
            let cs = Arc::clone(cep.stats());
            println!(
                "chaos_sent_messages={} chaos_dropped_messages={} \
                 chaos_duplicated_messages={} chaos_corrupt_messages={}",
                cs.total_messages(),
                cs.dropped_messages(),
                cs.duplicated_messages(),
                cs.corrupt_messages()
            );
            println!(
                "chaos_sent_bytes={} chaos_dropped_bytes={} \
                 chaos_duplicated_bytes={} chaos_corrupt_bytes={}",
                cs.total_bytes(),
                cs.dropped_bytes(),
                cs.duplicated_bytes(),
                cs.corrupt_bytes()
            );
            println!("fault_fingerprint=0x{:016x}", cep.log_fingerprint());
            // `std::process::exit` in main skips destructors; flush the
            // fabric here or the last queued frames (a worker's shutdown
            // round, the PS's final replies) race the process teardown
            // and can be silently lost, stranding peers until their
            // recv watchdog fires.
            drop(cep);
            code
        }
        None => {
            let code = run_one_rank(&mut ep, &job);
            drop(ep); // same reason as the chaos arm's drop
            code
        }
    }
}
