//! `selsync_dist` — multi-process launcher: run one rank of a real
//! TCP-fabric training job. Start `n` worker processes (ranks `0..n`)
//! and one parameter-server process (rank `n`) with the same `--peers`
//! list and the same training flags; the ranks dial each other (with
//! retry, so start order is free) and run the exact trainer code the
//! in-process harness uses, so results are bit-identical to a same-seed
//! single-process run.
//!
//! ```sh
//! P="127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102"
//! selsync_dist --role ps     --rank 2 --peers $P --strategy selsync --delta 0.25 &
//! selsync_dist --role worker --rank 0 --peers $P --strategy selsync --delta 0.25 &
//! selsync_dist --role worker --rank 1 --peers $P --strategy selsync --delta 0.25 &
//! wait
//! ```

use selsync_bench::cli::parse_args;
use selsync_comm::Transport;
use selsync_core::trainer::{run_server_rank, run_worker_rank};
use selsync_core::Workload;
use selsync_net::{TcpEndpoint, TcpFabricConfig};
use std::sync::Arc;
use std::time::Duration;

const DIST_USAGE: &str = "\
selsync_dist — run one rank of a multi-process TCP training job

USAGE:
  selsync_dist --role ps|worker --rank N --peers host:port,... [training flags]

DIST KEYS:
  --role             ps | worker                       (required)
  --rank             this process's rank; workers are 0..n,
                     the ps is n = peers-1              (required)
  --peers            comma-separated host:port of every rank, in rank
                     order; the last entry is the ps    (required)
  --connect-timeout  seconds to keep redialing peers    (default 60)

The cluster size is taken from --peers (n = entries - 1); any --workers
flag must agree. All ranks must be given identical training flags and
the same --seed, or they will disagree on partitions and initial state.

Training flags are those of selsync_run (see selsync_run --help).
--save-params on the ps rank writes the final global parameters; on a
worker rank it writes that replica's final parameters.
";

struct DistArgs {
    role: String,
    rank: usize,
    peers: Vec<String>,
    connect_timeout: Duration,
    rest: Vec<String>,
}

fn split_dist_args(args: &[String]) -> Result<DistArgs, String> {
    let mut role = None;
    let mut rank = None;
    let mut peers: Option<Vec<String>> = None;
    let mut connect_timeout = Duration::from_secs(60);
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        if key == "--help" {
            return Err(DIST_USAGE.to_string());
        }
        let mut dist_value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key.as_str() {
            "--role" => role = Some(dist_value()?),
            "--rank" => {
                rank = Some(
                    dist_value()?
                        .parse()
                        .map_err(|_| "--rank must be an integer".to_string())?,
                )
            }
            "--peers" => peers = Some(dist_value()?.split(',').map(str::to_string).collect()),
            "--connect-timeout" => {
                connect_timeout = Duration::from_secs(
                    dist_value()?
                        .parse()
                        .map_err(|_| "--connect-timeout must be seconds".to_string())?,
                )
            }
            _ => {
                rest.push(key.clone());
                rest.push(
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("missing value for {key}"))?,
                );
            }
        }
    }
    Ok(DistArgs {
        role: role.ok_or("--role is required")?,
        rank: rank.ok_or("--rank is required")?,
        peers: peers.ok_or("--peers is required")?,
        connect_timeout,
        rest,
    })
}

/// Stable checksum of a parameter vector's exact bit pattern, so ranks
/// from separate runs can be compared by eye.
fn params_fingerprint(params: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in params {
        for b in v.to_bits().to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dist = match split_dist_args(&args) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if args.contains(&"--help".into()) {
                0
            } else {
                2
            });
        }
    };
    let n_workers = dist.peers.len().saturating_sub(1);
    if n_workers == 0 {
        eprintln!("--peers needs at least two entries (1 worker + the ps)");
        std::process::exit(2);
    }

    // force the cluster size the peer list implies; reject contradictions
    let mut training = dist.rest.clone();
    if let Some(i) = training.iter().position(|a| a == "--workers") {
        if training[i + 1] != n_workers.to_string() {
            eprintln!(
                "--workers {} contradicts --peers ({} workers + 1 ps)",
                training[i + 1],
                n_workers
            );
            std::process::exit(2);
        }
    } else {
        training.push("--workers".into());
        training.push(n_workers.to_string());
    }
    let run = match parse_args(&training) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let expected_rank_range = match dist.role.as_str() {
        "ps" => {
            if dist.rank != n_workers {
                eprintln!(
                    "the ps must be the last rank ({n_workers}), got {}",
                    dist.rank
                );
                std::process::exit(2);
            }
            "ps"
        }
        "worker" => {
            if dist.rank >= n_workers {
                eprintln!("worker rank {} out of range 0..{n_workers}", dist.rank);
                std::process::exit(2);
            }
            "worker"
        }
        other => {
            eprintln!("unknown role '{other}' (ps | worker)");
            std::process::exit(2);
        }
    };

    let mut workload = Workload::for_kind(run.kind, run.data_scale, run.config.seed);
    if let Some(path) = &run.load_params {
        workload.init_params =
            Some(selsync_core::checkpoint::load_params(path).expect("readable checkpoint"));
        eprintln!("[rank {}] warm-started from {path}", dist.rank);
    }

    let mut fabric = TcpFabricConfig::new(dist.rank, dist.peers.clone());
    fabric.connect_timeout = dist.connect_timeout;
    eprintln!(
        "[rank {}] {} dialing {} peers ({} on {})...",
        dist.rank,
        expected_rank_range,
        n_workers,
        run.config.strategy.label(),
        dist.peers[dist.rank]
    );
    let ep = match TcpEndpoint::connect(fabric) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("[rank {}] fabric setup failed: {e}", dist.rank);
            std::process::exit(1);
        }
    };
    let stats = Arc::clone(ep.stats());

    if dist.role == "ps" {
        let final_params = run_server_rank(ep, &run.config, &workload);
        println!("role=ps rank={} steps={}", dist.rank, run.config.max_steps);
        println!(
            "params_fingerprint=0x{:016x}",
            params_fingerprint(&final_params)
        );
        println!("fabric_bytes_sent={}", stats.total_bytes());
        if let Some(path) = &run.save_params {
            selsync_core::checkpoint::save_params(path, &final_params)
                .expect("writable checkpoint path");
            eprintln!("[rank {}] saved global params to {path}", dist.rank);
        }
    } else {
        let out = run_worker_rank(ep, &run.config, &workload);
        println!(
            "role=worker rank={} steps={}",
            dist.rank, run.config.max_steps
        );
        println!("lssr={:.6}", out.lssr.lssr());
        println!(
            "params_fingerprint=0x{:016x}",
            params_fingerprint(&out.final_params)
        );
        println!("fabric_bytes_sent={}", stats.total_bytes());
        if out.worker == 0 {
            // step-for-step sync decision log: 1 = synchronized step
            let decisions: String = out
                .records
                .iter()
                .map(|r| if r.synced { '1' } else { '0' })
                .collect();
            println!("decisions={decisions}");
            if let Some(e) = out.evals.last() {
                println!("final_metric={:.6}", e.metric);
            }
        }
        if let Some(path) = &run.save_params {
            selsync_core::checkpoint::save_params(path, &out.final_params)
                .expect("writable checkpoint path");
            eprintln!("[rank {}] saved replica params to {path}", dist.rank);
        }
    }
}
