//! Ablation — gradient compression (§II-D baselines) vs. SelSync's
//! step-skipping, compared on the communication-volume axis.
//!
//! Compression shrinks every message; SelSync skips most messages. This
//! bench takes a *real* gradient from each mini model, applies Top-k,
//! signSGD and PowerSGD at several settings, and reports compression
//! ratio and reconstruction error — then shows the volume reduction an
//! equivalent-LSSR SelSync run achieves with zero reconstruction error
//! on the steps it does communicate.

use selsync_bench::{banner, json_row};
use selsync_core::compression::{
    powersgd_factorize, powersgd_reconstruct, powersgd_wire_bytes, sign_compress, sign_decompress,
    topk_compress,
};
use selsync_core::workload::{Workload, WorkloadData};
use selsync_nn::flat::flat_grads;
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    scheme: String,
    compression_ratio: f64,
    relative_l2_error: f64,
}

fn rel_err(orig: &[f32], rec: &[f32]) -> f64 {
    let num: f64 = orig
        .iter()
        .zip(rec)
        .map(|(a, b)| ((a - b) * (a - b)) as f64)
        .sum();
    let den: f64 = orig.iter().map(|a| (a * a) as f64).sum();
    (num / den.max(1e-30)).sqrt()
}

fn main() {
    banner(
        "Ablation",
        "Gradient compression (Top-k / signSGD / PowerSGD) vs SelSync step-skipping",
    );
    println!(
        "{:<12} {:<18} {:>10} {:>12}",
        "model", "scheme", "ratio", "rel-L2-err"
    );
    for kind in [ModelKind::ResNetMini, ModelKind::VggMini] {
        let wl = Workload::for_kind(kind, 128, 42);
        let WorkloadData::Vision { train, .. } = &wl.data else {
            unreachable!()
        };
        let mut model = wl.build_model();
        let idx: Vec<usize> = (0..32).collect();
        let (x, t) = train.gather(&idx);
        let logits = model.as_model().forward(&selsync_nn::Input::Dense(x), true);
        let (_, dl) = softmax_cross_entropy(&logits, &t);
        model.as_model().zero_grad();
        model.as_model().backward(&dl);
        let grads = flat_grads(model.as_visitor());
        let dense_bytes = 4.0 * grads.len() as f64;

        let report = |scheme: String, ratio: f64, err: f64| {
            println!(
                "{:<12} {:<18} {:>9.1}x {:>12.4}",
                kind.paper_name(),
                scheme,
                ratio,
                err
            );
            json_row(&Row {
                model: kind.paper_name(),
                scheme,
                compression_ratio: ratio,
                relative_l2_error: err,
            });
        };

        for &frac in &[0.1f64, 0.01] {
            let k = ((grads.len() as f64 * frac) as usize).max(1);
            let s = topk_compress(&grads, k);
            report(
                format!("top-k ({:.0}%)", frac * 100.0),
                s.compression_ratio(),
                rel_err(&grads, &s.to_dense()),
            );
        }
        {
            let s = sign_compress(&grads);
            let rec = sign_decompress(&s);
            report(
                "signSGD".into(),
                dense_bytes / s.wire_bytes() as f64,
                rel_err(&grads, &rec),
            );
        }
        for &rank in &[1usize, 4] {
            // view the flat gradient as a zero-padded near-square matrix
            // (parameter counts rarely have convenient divisors)
            let n = grads.len();
            let rows = (n as f64).sqrt().ceil() as usize;
            let cols = n.div_ceil(rows);
            let mut padded = grads.clone();
            padded.resize(rows * cols, 0.0);
            let (p, q) = powersgd_factorize(&padded, rows, rank, 2, 7);
            let mut rec = powersgd_reconstruct(&p, &q);
            rec.truncate(n);
            report(
                format!("PowerSGD r={rank}"),
                dense_bytes / powersgd_wire_bytes(rows, cols, rank) as f64,
                rel_err(&grads, &rec),
            );
        }
        // SelSync's axis: at LSSR 0.9 the volume falls 10x with exact
        // payloads on the steps that do communicate
        for &lssr in &[0.83f64, 0.9, 0.95] {
            report(format!("SelSync LSSR={lssr}"), 1.0 / (1.0 - lssr), 0.0);
        }
        println!();
    }
    println!("Reading: compression buys volume at the cost of per-step gradient error;");
    println!("SelSync buys volume by skipping steps whose updates are insignificant,");
    println!("sending exact state when it does communicate (§II-D discussion).");
}
