//! Fig. 4 — the largest Hessian eigenvalue tracks first-order gradient
//! variance across training.
//!
//! The paper's point: the Hessian eigenvalue detects critical periods
//! but is expensive; the EWMA-smoothed first-order gradient norm is a
//! cheap proxy whose *relative inter-iteration changes* follow the same
//! course. We train the minis and emit both series plus their rank
//! correlation, and measure the cost ratio of the two instruments.

use selsync_bench::{banner, json_row};
use selsync_core::workload::{Workload, WorkloadData};
use selsync_nn::flat::{flat_grads, flat_params, set_flat_params};
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::ModelKind;
use selsync_nn::optim::{Optimizer, Sgd};
use selsync_nn::Batch;
use selsync_stats::hessian::hessian_top_eigenvalue;
use selsync_stats::Ewma;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    step: u64,
    hessian_eig: f32,
    grad_variance: f32,
}

fn main() {
    banner(
        "Fig 4",
        "Hessian top eigenvalue vs first-order gradient variance",
    );
    for kind in [ModelKind::ResNetMini, ModelKind::VggMini] {
        let wl = Workload::for_kind(kind, 384, 42);
        let WorkloadData::Vision { train, .. } = &wl.data else {
            unreachable!()
        };
        let mut model = wl.build_model();
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        let mut smoother = Ewma::new(0.3);
        let mut eigs = Vec::new();
        let mut vars = Vec::new();
        let mut t_eig = 0.0;
        let mut t_proxy = 0.0;
        // a fixed probe batch so the Hessian is of a fixed function
        let probe_idx: Vec<usize> = (0..32).collect();
        let (px, pt) = train.gather(&probe_idx);
        let probe = Batch::dense(px, pt);
        for step in 0..120u64 {
            let idx: Vec<usize> = (0..16)
                .map(|i| ((step as usize * 16) + i) % train.len())
                .collect();
            let (x, t) = train.gather(&idx);
            let batch = Batch::dense(x, t);
            let logits = model.as_model().forward(&batch.input, true);
            let (_, dl) = softmax_cross_entropy(&logits, &batch.targets);
            model.as_model().zero_grad();
            model.as_model().backward(&dl);
            // cheap proxy: smoothed squared gradient norm
            let t0 = Instant::now();
            let gn: f32 = flat_grads(model.as_visitor()).iter().map(|g| g * g).sum();
            let var = smoother.update(gn);
            t_proxy += t0.elapsed().as_secs_f64();
            opt.step(model.as_model());

            if step % 10 == 0 {
                let t1 = Instant::now();
                let params = flat_params(model.as_visitor());
                let mut probe_model = wl.build_model();
                let probe_batch = probe.clone();
                let eig = hessian_top_eigenvalue(
                    |w: &[f32]| {
                        set_flat_params(probe_model.as_model(), w);
                        let lg = probe_model.as_model().forward(&probe_batch.input, true);
                        let (_, dlg) = softmax_cross_entropy(&lg, &probe_batch.targets);
                        probe_model.as_model().zero_grad();
                        probe_model.as_model().backward(&dlg);
                        flat_grads(probe_model.as_visitor())
                    },
                    &params,
                    5,
                    1e-2,
                    step,
                );
                t_eig += t1.elapsed().as_secs_f64();
                eigs.push(eig);
                vars.push(var);
                json_row(&Row {
                    model: kind.paper_name(),
                    step,
                    hessian_eig: eig,
                    grad_variance: var,
                });
            }
        }
        let corr = spearman(&eigs, &vars);
        // the paper's exact claim is about *relative inter-iteration
        // changes*, not levels — correlate those too
        let changes = |xs: &[f32]| -> Vec<f32> {
            xs.windows(2)
                .map(|w| ((w[1] - w[0]) / w[0].abs().max(1e-9)).abs())
                .collect()
        };
        let dcorr = spearman(&changes(&eigs), &changes(&vars));
        println!(
            "{:<10} Spearman levels = {corr:.2}, Spearman |relative changes| = {dcorr:.2}; Hessian probe cost {:.0}x the proxy",
            kind.paper_name(),
            t_eig / t_proxy.max(1e-9)
        );
        assert!(
            t_eig > 10.0 * t_proxy,
            "the paper's cost argument: Hessian ≫ first-order proxy"
        );
    }
}

/// Spearman rank correlation of two equal-length series.
fn spearman(a: &[f32], b: &[f32]) -> f32 {
    fn ranks(v: &[f32]) -> Vec<f32> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f32;
        }
        r
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f32;
    let d2: f32 = ra.iter().zip(&rb).map(|(x, y)| (x - y) * (x - y)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}
