//! Fig. 6 — sliding the δ threshold between fully-synchronous and fully
//! local training.
//!
//! δ = 0 reproduces BSP (LSSR 0); a δ above the run's maximum observed
//! Δ(g) trains purely locally (LSSR → 1); intermediate settings trade
//! communication for statistical efficiency. The sweep prints LSSR, the
//! implied communication reduction, and the final metric per δ.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    delta: f32,
    lssr: f64,
    comm_reduction: f64,
    final_metric: f32,
    comm_bytes: u64,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 6",
        "δ sweep: LSSR and accuracy between BSP and local-SGD",
    );
    let kind = ModelKind::ResNetMini;
    let wl = selsync_bench::workload_for(kind, &scale);
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>14}",
        "δ", "LSSR", "comm-red", "metric", "fabric-bytes"
    );
    let mut last_lssr = -1.0;
    for &delta in &[0.0f32, 0.05, 0.1, 0.25, 0.5, 1.0, 1e9] {
        let cfg = paper_config(
            kind,
            Strategy::SelSync {
                delta,
                aggregation: Aggregation::Parameter,
            },
            &scale,
        );
        let r = run_and_report(kind, &cfg, &wl);
        let lssr = r.lssr.lssr();
        println!(
            "{:>8} {:>8.3} {:>9.1}x {:>12} {:>14}",
            if delta > 1e6 {
                "∞".to_string()
            } else {
                format!("{delta}")
            },
            lssr,
            r.lssr.comm_reduction(),
            fmt_metric(kind, r.final_metric),
            r.comm_bytes
        );
        json_row(&Row {
            model: kind.paper_name(),
            delta,
            lssr,
            comm_reduction: r.lssr.comm_reduction(),
            final_metric: r.final_metric,
            comm_bytes: r.comm_bytes,
        });
        assert!(
            lssr + 1e-9 >= last_lssr,
            "LSSR must grow monotonically with δ ({lssr} after {last_lssr})"
        );
        last_lssr = lssr;
    }
    println!("\nShape check: δ=0 → LSSR 0 (BSP); δ→∞ → LSSR→1 (local SGD); monotone in between (paper Fig 6).");
}
