//! Fig. 11 — weight-distribution density of a ResNet layer under three
//! independent runs: BSP, SelSync+PA and SelSync+GA.
//!
//! The paper compares `layer1_1_conv1_weight` KDEs at two checkpoints:
//! BSP and SelSync+PA stay distributionally close, while GA's weights
//! drift into a visibly different (narrower/shifted) distribution. We
//! run the three regimes, fit KDEs to the same named layer, and report
//! the KDE (total-variation) distance of each SelSync variant from BSP.

use selsync_bench::{banner, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use selsync_stats::kde::{kde_distance, Kde};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    regime: &'static str,
    x: f32,
    density: f32,
}

#[derive(Serialize)]
struct Summary {
    pa_vs_bsp_distance: f32,
    ga_vs_bsp_distance: f32,
}

const LAYER: &str = "layer1_0.conv1.weight";

fn layer_weights(wl: &Workload, params: &[f32]) -> Vec<f32> {
    // rebuild a model, load the params, and read the named layer
    let mut m = wl.build_model();
    selsync_nn::flat::set_flat_params(m.as_model(), params);
    let mut out = Vec::new();
    selsync_nn::module::ParamVisitor::visit_params(m.as_visitor(), &mut |p| {
        if p.name == LAYER {
            out = p.value.as_slice().to_vec();
        }
    });
    assert!(!out.is_empty(), "layer {LAYER} not found");
    out
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 11", "Weight KDEs: BSP vs SelSync-PA vs SelSync-GA");
    let kind = ModelKind::ResNetMini;
    let wl = selsync_bench::workload_for(kind, &scale);
    let regimes: [(&'static str, Strategy); 3] = [
        (
            "BSP",
            Strategy::Bsp {
                aggregation: Aggregation::Parameter,
            },
        ),
        (
            "SelSync-PA",
            Strategy::SelSync {
                delta: 0.25,
                aggregation: Aggregation::Parameter,
            },
        ),
        (
            "SelSync-GA",
            Strategy::SelSync {
                delta: 0.25,
                aggregation: Aggregation::Gradient,
            },
        ),
    ];
    let mut kdes = Vec::new();
    for (name, strategy) in regimes {
        let cfg = paper_config(kind, strategy, &scale);
        let r = run_and_report(kind, &cfg, &wl);
        // GA leaves the PS stale, so compare worker-0 replicas everywhere
        let weights = layer_weights(&wl, &r.worker_params[0]);
        let kde = Kde::fit(&weights);
        let (lo, hi) = kde.support();
        let (xs, ds) = kde.grid(lo, hi, 41);
        for (x, d) in xs.iter().zip(&ds) {
            json_row(&Row {
                regime: name,
                x: *x,
                density: *d,
            });
        }
        println!(
            "{name:<12} layer {LAYER}: bandwidth {:.5}, support [{:.3}, {:.3}]",
            kde.bandwidth(),
            lo,
            hi
        );
        kdes.push(kde);
    }
    let pa = kde_distance(&kdes[0], &kdes[1], 400);
    let ga = kde_distance(&kdes[0], &kdes[2], 400);
    println!("\nKDE distance from BSP: PA {pa:.4}, GA {ga:.4}");
    json_row(&Summary {
        pa_vs_bsp_distance: pa,
        ga_vs_bsp_distance: ga,
    });
    println!(
        "Shape check (paper Fig 11): PA's weight distribution tracks BSP more closely than GA's."
    );
}
