//! Fig. 10 — SelSync with gradient aggregation (GA) vs. parameter
//! aggregation (PA), δ = 0.25, SelDP.
//!
//! The paper's §IV-D result: PA converges as well or better than GA for
//! the same training, because averaging parameters bounds local/global
//! divergence while GA lets replicas drift. We report the convergence
//! curves *and* the end-of-run replica divergence that explains them.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    aggregation: &'static str,
    step: u64,
    metric: f32,
}

#[derive(Serialize)]
struct Summary {
    model: &'static str,
    pa_metric: f32,
    ga_metric: f32,
    pa_divergence: f32,
    ga_divergence: f32,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 10",
        "SelSync: gradient vs parameter aggregation (δ=0.25)",
    );
    for kind in ModelKind::ALL {
        let wl = selsync_bench::workload_for(kind, &scale);
        let mut results = Vec::new();
        for (agg, name) in [
            (Aggregation::Parameter, "PA"),
            (Aggregation::Gradient, "GA"),
        ] {
            let cfg = paper_config(
                kind,
                Strategy::SelSync {
                    delta: 0.25,
                    aggregation: agg,
                },
                &scale,
            );
            let r = run_and_report(kind, &cfg, &wl);
            for e in &r.evals {
                json_row(&Row {
                    model: kind.paper_name(),
                    aggregation: name,
                    step: e.step,
                    metric: e.metric,
                });
            }
            results.push(r);
        }
        let (pa, ga) = (&results[0], &results[1]);
        let s = Summary {
            model: kind.paper_name(),
            pa_metric: pa.best_metric(kind.lower_is_better()),
            ga_metric: ga.best_metric(kind.lower_is_better()),
            pa_divergence: pa.replica_divergence(),
            ga_divergence: ga.replica_divergence(),
        };
        println!(
            "{:<12} PA {} (divergence {:.4}) vs GA {} (divergence {:.4})",
            kind.paper_name(),
            fmt_metric(kind, s.pa_metric),
            s.pa_divergence,
            fmt_metric(kind, s.ga_metric),
            s.ga_divergence,
        );
        json_row(&s);
    }
    println!("\nShape check (paper Fig 10/§IV-D): PA's replicas stay bounded to the global state");
    println!("(near-zero divergence right after a sync), while GA's replicas drift apart.");
}
