//! Sharded parameter-server sweep: K ∈ {1, 2, 4} shards × N workers.
//!
//! Two row families, merged into `BENCH_kernels.json` (run *after*
//! `kernel_bench`, which rewrites that file wholesale; this harness
//! reads it back, drops any stale `shard_*` rows and appends fresh
//! ones, so the two tables coexist in one report):
//!
//! * `shard_sync` — *measured*: a real in-process sharded cluster per K
//!   (channel fabric, VGG-mini, same seed), reporting wall time per
//!   step and validating two invariants end-to-end: the worker's fan-out
//!   wire bytes match the closed-form accounting (each extra sub-frame
//!   costs exactly one header + count prefix) and the final parameters
//!   are bit-identical across every K — sharding is a pure re-layout of
//!   the same arithmetic.
//! * `shard_sync_model` / `shard_crossover` — *modeled*: the calibrated
//!   [`NetworkModel::paper_cluster`] at the paper's scale (VGG11 over
//!   16 workers), where splitting the PS genuinely pays: the sweep must
//!   show K = 4 beating K = 1 at the congested point, and the
//!   crossover row records the model size where fan-out latency stops
//!   dominating and bandwidth sharding starts winning.
//!
//! Flags:
//!
//! * `--quick`     smaller cluster / fewer steps (CI mode)
//! * `--out PATH`  merge into this JSON table (default BENCH_kernels.json)
//!
//! Exits nonzero if any invariant fails or the merged file does not
//! read back with every shard row intact and positive.

use selsync_bench::{banner, json_row};
use selsync_comm::shard::fanout_push_wire_bytes;
use selsync_comm::{Fabric, NetworkModel, Payload};
use selsync_core::prelude::*;
use selsync_core::trainer::WorkerOutput;
use selsync_core::ElasticOptions;
use selsync_core::{run_shard_server_rank, run_shard_standby_rank, run_shard_worker_rank};
use selsync_shard::{Role, ShardLayout, ShardMap};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Same row/report shape as `kernel_bench` — the two binaries share one
/// JSON table, so the schema string and field names must match exactly.
#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    shape: String,
    impl_name: String,
    ms_per_call: f64,
    gflops: Option<f64>,
    steps_per_sec: Option<f64>,
    checksum: f64,
    checksum_ok: Option<bool>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    mode: String,
    rows: Vec<Row>,
}

const SCHEMA: &str = "selsync-kernel-bench-v1";
const SWEEP_K: [usize; 3] = [1, 2, 4];

/// One measured sharded run: wall seconds, the cluster's total wire
/// bytes and sync count, and every worker's final parameters.
struct Measured {
    secs: f64,
    cluster_bytes: u64,
    syncs: u64,
    outs: Vec<WorkerOutput>,
}

fn sweep_config(n_workers: usize, steps: u64) -> RunConfig {
    RunConfig {
        strategy: Strategy::SelSync {
            delta: 0.25,
            aggregation: Aggregation::Parameter,
        },
        n_workers,
        max_steps: steps,
        eval_every: steps,
        ..RunConfig::quick_defaults()
    }
}

/// Run a full K-shard cluster on the channel fabric and collect the
/// measurements. Mirrors the layout convention everywhere else: shards
/// first, then workers.
fn run_measured(cfg: &RunConfig, wl: &Workload, opts: &ElasticOptions, k: usize) -> Measured {
    let layout = ShardLayout::new(k, cfg.n_workers, opts.standby);
    let mut eps: Vec<_> = Fabric::new(layout.total_ranks()).into_iter().collect();
    // the channel fabric shares one CommStats across every endpoint, so
    // any endpoint's counter reads the whole cluster's traffic
    let mut fabric_stats = None;
    let mut shard_handles = Vec::new();
    let mut worker_handles = Vec::new();
    let start = Instant::now();
    while let Some(ep) = eps.pop() {
        let (cfg, wl, opts) = (cfg.clone(), wl.clone(), opts.clone());
        match layout.role_of(ep.id()) {
            Role::Shard(s) => shard_handles.push((
                s,
                thread::spawn(move || run_shard_server_rank(ep, &cfg, &wl, &opts, layout)),
            )),
            Role::Worker(w) => {
                if w == 0 {
                    fabric_stats = Some(Arc::clone(ep.stats()));
                }
                worker_handles.push((
                    w,
                    thread::spawn(move || {
                        let mut ep = ep;
                        run_shard_worker_rank(&mut ep, &cfg, &wl, &opts, layout)
                    }),
                ));
            }
            Role::Standby(_) => {
                thread::spawn(move || run_shard_standby_rank(ep, &cfg, &wl, &opts, layout));
            }
        }
    }
    worker_handles.sort_by_key(|(w, _)| *w);
    let outs: Vec<WorkerOutput> = worker_handles
        .into_iter()
        .map(|(_, h)| h.join().expect("worker thread").expect("worker ok"))
        .collect();
    for (_, h) in shard_handles {
        h.join().expect("shard thread").expect("shard ok");
    }
    let secs = start.elapsed().as_secs_f64();
    let syncs = outs[0].records.iter().filter(|r| r.synced).count() as u64;
    Measured {
        secs,
        cluster_bytes: fabric_stats.expect("worker 0 endpoint").total_bytes(),
        syncs,
        outs,
    }
}

/// Closed-form wire bytes the *whole cluster* sends in a fault-free
/// K-shard run — every frame of the protocol, both directions:
///
/// * handshake: each worker sends its map to every shard, each shard
///   echoes it back;
/// * per step: each worker fans a 1-byte flags frame to every shard,
///   each shard answers with the n-byte status vector;
/// * per sync: each worker's push splits into K sub-frames
///   ([`fanout_push_wire_bytes`]), and the K range replies cost exactly
///   the same bytes coming back;
/// * shutdown: one control frame from each worker to every shard.
///
/// Measured bytes must match this *exactly* — any drift means a frame
/// the accounting forgot (or an unplanned retry/catch-up).
fn expected_cluster_bytes(params: usize, n: usize, k: usize, steps: u64, syncs: u64) -> u64 {
    let map = ShardMap::compute(params as u64, k);
    let map_frame = Payload::ShardMap(map.spec().clone()).wire_bytes();
    let flags_up = Payload::Flags(vec![0]).wire_bytes();
    let flags_down = Payload::Flags(vec![0; n]).wire_bytes();
    let ctrl_frame = Payload::Control(0).wire_bytes();
    let (n64, k64) = (n as u64, k as u64);
    2 * n64 * k64 * map_frame
        + steps * n64 * k64 * (flags_up + flags_down)
        + 2 * syncs * n64 * fanout_push_wire_bytes(params, k)
        + n64 * k64 * ctrl_frame
}

fn checksum(v: &[f32]) -> f64 {
    v.iter().map(|&x| f64::from(x)).sum()
}

fn fmt_row(r: &Row) {
    println!(
        "  {:<18} {:<20} {:<10} {:>10.3} ms   checksum {:>14.4} {}",
        r.bench,
        r.shape,
        r.impl_name,
        r.ms_per_call,
        r.checksum,
        match r.checksum_ok {
            Some(true) => "ok",
            Some(false) => "MISMATCH",
            None => "-",
        }
    );
    json_row(r);
}

/// Measured sweep: one row per K, validated for byte-exact accounting
/// and bit-identical results across shard counts.
fn measured_rows(quick: bool) -> (Vec<Row>, bool) {
    let (n, steps) = if quick { (2, 6) } else { (4, 12) };
    let cfg = sweep_config(n, steps);
    let wl = Workload::vision(ModelKind::VggMini, 96, 32, 7);
    let opts = ElasticOptions::with_liveness(Duration::from_millis(500), 3);
    let params = selsync_core::shard_map_for(&wl, &ShardLayout::new(1, n, false)).total() as usize;

    let mut rows = Vec::new();
    let mut all_ok = true;
    let mut reference: Option<Vec<Vec<f32>>> = None;
    for k in SWEEP_K {
        let m = run_measured(&cfg, &wl, &opts, k);
        let expected = expected_cluster_bytes(params, n, k, steps, m.syncs);
        let bytes_ok = m.cluster_bytes == expected;
        if !bytes_ok {
            eprintln!(
                "  !! k={k}: cluster sent {} wire bytes, accounting predicts {expected}",
                m.cluster_bytes
            );
        }
        let finals: Vec<Vec<f32>> = m.outs.iter().map(|o| o.final_params.clone()).collect();
        let params_ok = match &reference {
            None => {
                reference = Some(finals.clone());
                true
            }
            Some(r) => r == &finals,
        };
        if !params_ok {
            eprintln!("  !! k={k}: final parameters diverge from the k=1 run");
        }
        all_ok &= bytes_ok && params_ok;
        let row = Row {
            bench: "shard_sync".into(),
            shape: format!("vgg-mini:w{n}k{k}"),
            impl_name: "measured".into(),
            ms_per_call: m.secs * 1e3 / steps as f64,
            gflops: None,
            steps_per_sec: Some(steps as f64 / m.secs),
            checksum: checksum(&m.outs[0].final_params),
            checksum_ok: Some(bytes_ok && params_ok),
        };
        fmt_row(&row);
        rows.push(row);
    }
    (rows, all_ok)
}

/// Modeled sweep at the paper's scale: VGG11 (507 MB of f32 parameters)
/// over 16 workers on the calibrated cluster. This is where sharding
/// pays: the acceptance bar is K = 4 strictly beating K = 1 at the
/// congested point, with K = 1 exactly reproducing the monolithic
/// model's prediction.
fn model_rows() -> (Vec<Row>, bool) {
    let net = NetworkModel::paper_cluster();
    let vgg11_bytes: u64 = 507 * 1024 * 1024;
    let n = 16;

    let mut rows = Vec::new();
    let times: Vec<f64> = SWEEP_K
        .iter()
        .map(|&k| net.sharded_ps_sync_time(vgg11_bytes, n, k))
        .collect();
    let k1_matches_mono = times[0].to_bits() == net.ps_sync_time(vgg11_bytes, n).to_bits();
    let k4_wins = times[SWEEP_K.len() - 1] < times[0];
    if !k1_matches_mono {
        eprintln!("  !! modeled k=1 time diverges from the monolithic model");
    }
    if !k4_wins {
        eprintln!("  !! modeled k=4 does not beat k=1 at the congested point");
    }
    for (&k, &t) in SWEEP_K.iter().zip(&times) {
        let row = Row {
            bench: "shard_sync_model".into(),
            shape: format!("vgg11-507MB:n{n}k{k}"),
            impl_name: "netmodel".into(),
            ms_per_call: t * 1e3,
            gflops: None,
            steps_per_sec: None,
            checksum: t,
            checksum_ok: Some(k1_matches_mono && k4_wins),
        };
        fmt_row(&row);
        rows.push(row);
    }

    // the break-even model size: below it fan-out latency dominates and
    // K = 1 is at least as fast; above it the per-shard bandwidth share
    // wins. Probe both sides to prove the row means what it says.
    let cross = net.shard_crossover_bytes(n, 4);
    let below = cross / 4;
    let above = cross * 4;
    let cross_ok = cross > 0
        && net.sharded_ps_sync_time(below, n, 4) >= net.sharded_ps_sync_time(below, n, 1)
        && net.sharded_ps_sync_time(above, n, 4) < net.sharded_ps_sync_time(above, n, 1);
    if !cross_ok {
        eprintln!("  !! crossover row fails its two-sided probe at {cross} bytes");
    }
    let row = Row {
        bench: "shard_crossover".into(),
        shape: format!("n{n}k4"),
        impl_name: "netmodel".into(),
        ms_per_call: net.sharded_ps_sync_time(cross, n, 4) * 1e3,
        gflops: None,
        steps_per_sec: None,
        checksum: cross as f64,
        checksum_ok: Some(cross_ok),
    };
    fmt_row(&row);
    rows.push(row);
    (rows, k1_matches_mono && k4_wins && cross_ok)
}

/// Merge the shard rows into the existing kernel table: keep everything
/// `kernel_bench` wrote, replace any stale `shard_*` rows.
fn merge_into(path: &str, mode: &str, fresh: Vec<Row>) -> Report {
    let mut report = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Report>(&s).ok())
        .unwrap_or_else(|| Report {
            schema: SCHEMA.to_string(),
            mode: mode.to_string(),
            rows: Vec::new(),
        });
    report.rows.retain(|r| !r.bench.starts_with("shard_"));
    report.rows.extend(fresh);
    report
}

fn parse_flags() -> (bool, String) {
    let mut quick = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other:?} (expected --quick / --out PATH)");
                std::process::exit(2);
            }
        }
    }
    (quick, out_path)
}

fn main() {
    let (quick, out_path) = parse_flags();
    let mode = if quick { "quick" } else { "full" };
    banner(
        "shard-bench",
        &format!("sharded PS sweep (K in {SWEEP_K:?}, mode {mode})"),
    );

    println!("measured (channel fabric):");
    let (mrows, measured_ok) = measured_rows(quick);
    println!("modeled (paper cluster):");
    let (crows, model_ok) = model_rows();

    let fresh: Vec<Row> = mrows.into_iter().chain(crows).collect();
    let n_fresh = fresh.len();
    let report = merge_into(&out_path, mode, fresh);
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, json).expect("write report");

    // read back and re-validate: the merged table must hold every fresh
    // shard row, all positive and none flagged as a mismatch
    let back: Report =
        serde_json::from_str(&std::fs::read_to_string(&out_path).expect("re-read report"))
            .expect("parse merged report");
    let shard_rows: Vec<&Row> = back
        .rows
        .iter()
        .filter(|r| r.bench.starts_with("shard_"))
        .collect();
    let readback_ok = back.schema == SCHEMA
        && shard_rows.len() == n_fresh
        && shard_rows.iter().all(|r| {
            r.ms_per_call.is_finite() && r.ms_per_call > 0.0 && r.checksum_ok != Some(false)
        });

    if !(measured_ok && model_ok && readback_ok) {
        eprintln!(
            "FAILED: measured_ok={measured_ok} model_ok={model_ok} readback_ok={readback_ok}"
        );
        std::process::exit(1);
    }
    println!(
        "wrote {n_fresh} shard rows into {out_path} ({} rows total)",
        back.rows.len()
    );
}
