//! Kernel micro-benchmarks — the perf trajectory recorder.
//!
//! Times the packed/tiled GEMM kernels, the im2col-based convolution
//! and the attention layer against the naive reference kernels kept in
//! `selsync_tensor::matmul::reference`, plus end-to-end
//! `run_distributed` steps/sec for the mini workloads, and writes the
//! whole table to `BENCH_kernels.json` at the repo root.
//!
//! Every kernel row carries a checksum of its output; an optimized row
//! whose checksum diverges from the reference row beyond float
//! reassociation tolerance fails the run (nonzero exit), so CI catches
//! a kernel that got fast by getting wrong. Training rows carry no
//! checksum comparison — reference and optimized kernels reassociate
//! float sums differently, so their trajectories legitimately diverge.
//! The `overlap_steps_per_sec` rows are stricter: the bucketed pipeline
//! reduces in a fixed order by construction (DESIGN.md §12), so the
//! `overlap=on` row must match `overlap=off` **bit for bit** — any
//! divergence fails the run.
//!
//! Flags:
//!
//! * `--quick`      smaller rep counts and train budgets (CI scale)
//! * `--reference`  emit only the reference (baseline) rows
//! * `--out PATH`   write the JSON table here (default BENCH_kernels.json)

use selsync_bench::{banner, json_row, paper_config, Scale};
use selsync_core::prelude::*;
use selsync_nn::layers::{Conv2d, MultiHeadSelfAttention};
use selsync_nn::Module;
use selsync_tensor::matmul::{matmul_into, matmul_nt_into, matmul_tn_into, set_reference_mode};
use selsync_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::Instant;

/// Relative tolerance for reference-vs-optimized checksums: the packed
/// kernels reassociate the k-dimension sum (KC blocking + FMA), so
/// bit-equality is not expected, but anything past ~1e-3 relative on a
/// whole-matrix sum means a real indexing bug, not rounding.
const CHECKSUM_RTOL: f64 = 1e-3;

// Plain field names and explicit nulls: the vendored offline serde
// derive does not process field attributes (rename / skip_serializing),
// so the schema uses what the derive actually emits.
#[derive(Debug, Serialize, Deserialize)]
struct Row {
    bench: String,
    shape: String,
    impl_name: String,
    ms_per_call: f64,
    gflops: Option<f64>,
    steps_per_sec: Option<f64>,
    checksum: f64,
    checksum_ok: Option<bool>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    mode: String,
    rows: Vec<Row>,
}

/// Deterministic pseudo-random fill (no RNG dependency, same data every
/// run and in both impl modes).
fn fill(t: &mut Tensor, seed: u64) {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for x in t.as_mut_slice() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
}

fn filled(shape: [usize; 2], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(shape);
    fill(&mut t, seed);
    t
}

fn checksum(t: &Tensor) -> f64 {
    t.as_slice().iter().map(|&x| x as f64).sum()
}

/// Time `f` over enough repetitions to fill `min_secs`, returning
/// ms/call. One warm-up call runs first (fills pack buffers, pages in
/// the operands), then a probe call sizes the rep count.
fn time_ms<F: FnMut()>(mut f: F, min_secs: f64) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-6);
    let reps = ((min_secs / once).ceil() as usize).clamp(1, 10_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

struct Bench {
    quick: bool,
    reference_only: bool,
    rows: Vec<Row>,
    failures: Vec<String>,
}

impl Bench {
    fn min_secs(&self) -> f64 {
        if self.quick {
            0.1
        } else {
            0.5
        }
    }

    fn impls(&self) -> &'static [bool] {
        // reference first so the optimized row can compare against it
        if self.reference_only {
            &[true]
        } else {
            &[true, false]
        }
    }

    /// Run one kernel benchmark in reference and optimized mode.
    /// `flops` is per call (0 = don't report GFLOP/s); `check`
    /// summarizes whatever output `run` produced last.
    fn kernel<F, C>(&mut self, bench: &str, shape: &str, flops: f64, mut run: F, check: C)
    where
        F: FnMut(),
        C: Fn() -> f64,
    {
        let mut reference_sum = None;
        for &reference in self.impls() {
            set_reference_mode(reference);
            let ms = time_ms(&mut run, self.min_secs());
            set_reference_mode(false);
            let sum = check();
            let checksum_ok = if reference {
                reference_sum = Some(sum);
                None
            } else {
                let want = reference_sum.expect("reference row ran first");
                let tol = CHECKSUM_RTOL * want.abs().max(1.0);
                Some((sum - want).abs() <= tol)
            };
            if checksum_ok == Some(false) {
                self.failures.push(format!(
                    "{bench} {shape}: optimized checksum {sum} diverged from reference {}",
                    reference_sum.unwrap_or(f64::NAN)
                ));
            }
            self.push(Row {
                bench: bench.to_string(),
                shape: shape.to_string(),
                impl_name: if reference { "reference" } else { "optimized" }.to_string(),
                ms_per_call: ms,
                gflops: (flops > 0.0).then(|| flops / (ms * 1e-3) / 1e9),
                steps_per_sec: None,
                checksum: sum,
                checksum_ok,
            });
        }
    }

    /// End-to-end distributed training throughput for one mini model.
    fn train(&mut self, kind: ModelKind, scale: &Scale) {
        let workload = Workload::for_kind(kind, scale.data, 42);
        let config = paper_config(
            kind,
            Strategy::SelSync {
                delta: 0.3,
                aggregation: Aggregation::Parameter,
            },
            scale,
        );
        for &reference in self.impls() {
            set_reference_mode(reference);
            let start = Instant::now();
            let result = run_distributed(&config, &workload);
            let secs = start.elapsed().as_secs_f64();
            set_reference_mode(false);
            self.push(Row {
                bench: "train_steps_per_sec".to_string(),
                shape: format!("{}:w{}b8", kind.paper_name(), scale.workers),
                impl_name: if reference { "reference" } else { "optimized" }.to_string(),
                ms_per_call: secs * 1e3 / scale.steps as f64,
                gflops: None,
                steps_per_sec: Some(scale.steps as f64 / secs),
                checksum: result.final_params.iter().map(|&x| x as f64).sum(),
                // trajectories under the two kernel sets legitimately
                // differ (float reassociation), so no equality check
                checksum_ok: None,
            });
        }
    }

    /// Bucketed compute/comm overlap rows (DESIGN.md §12): run the
    /// real BSP+GA cluster monolithic (`overlap=off`) and bucketed
    /// (`overlap=on`) — the two runs must produce bit-identical final
    /// parameters, checked here exactly, not within tolerance — and
    /// report the paper-scale modeled steps/sec at the 5 Gbps point:
    /// serial `1/(Tc+Ts)` vs pipelined `1/max(Tc, Ts)`. The `ms_per_call`
    /// column carries the real local wall time per step.
    fn overlap(&mut self, kind: ModelKind, scale: &Scale) {
        let workload = Workload::for_kind(kind, scale.data, 42);
        let base = paper_config(
            kind,
            Strategy::Bsp {
                aggregation: Aggregation::Gradient,
            },
            scale,
        );
        let p = TimingParams::paper(kind, scale.workers);
        let serial_step = p.compute_time_s + p.net.ps_sync_time(p.model_bytes, p.n_workers);
        let pipelined_step =
            p.net
                .pipelined_sync_time(p.model_bytes, p.n_workers, p.compute_time_s);
        set_reference_mode(self.reference_only);
        let mut baseline_bits: Option<Vec<u32>> = None;
        for overlap_on in [false, true] {
            let mut config = base.clone();
            config.overlap_buckets = overlap_on.then_some(4096);
            let start = Instant::now();
            let result = run_distributed(&config, &workload);
            let secs = start.elapsed().as_secs_f64();
            let bits: Vec<u32> = result.final_params.iter().map(|v| v.to_bits()).collect();
            let checksum_ok = if overlap_on {
                Some(baseline_bits.as_deref() == Some(&bits[..]))
            } else {
                baseline_bits = Some(bits);
                None
            };
            if checksum_ok == Some(false) {
                self.failures.push(format!(
                    "overlap_steps_per_sec {}: bucketed run diverged bit-wise from monolithic",
                    kind.paper_name()
                ));
            }
            self.push(Row {
                bench: "overlap_steps_per_sec".to_string(),
                shape: format!("{}:w{}b8", kind.paper_name(), scale.workers),
                impl_name: if overlap_on {
                    "overlap=on"
                } else {
                    "overlap=off"
                }
                .to_string(),
                ms_per_call: secs * 1e3 / scale.steps as f64,
                gflops: None,
                steps_per_sec: Some(
                    1.0 / if overlap_on {
                        pipelined_step
                    } else {
                        serial_step
                    },
                ),
                checksum: result.final_params.iter().map(|&x| x as f64).sum(),
                checksum_ok,
            });
        }
        set_reference_mode(false);
    }

    fn push(&mut self, row: Row) {
        println!(
            "{:<20} {:<26} {:<10} {:>10.3} ms {}",
            row.bench,
            row.shape,
            row.impl_name,
            row.ms_per_call,
            match (row.gflops, row.steps_per_sec) {
                (Some(g), _) => format!("{g:>8.2} GFLOP/s"),
                (_, Some(s)) => format!("{s:>8.2} steps/s"),
                _ => String::new(),
            }
        );
        json_row(&row);
        self.rows.push(row);
    }
}

fn matmul_benches(b: &mut Bench) {
    // (label, m, k, n): the acceptance shape plus shapes the minis
    // actually hit (transformer FF/projection GEMMs, conv im2col GEMMs)
    let nn_shapes: &[(&str, usize, usize, usize)] = &[
        ("256x256x256", 256, 256, 256),
        ("transformer-ff:128x64x128", 128, 64, 128),
        ("conv-gemm:256x72x8", 256, 72, 8),
    ];
    for &(label, m, k, n) in nn_shapes {
        let a = filled([m, k], 1);
        let bm = filled([k, n], 2);
        let c = RefCell::new(Tensor::zeros([m, n]));
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        b.kernel(
            "matmul_nn",
            label,
            flops,
            || matmul_into(&a, &bm, &mut c.borrow_mut()),
            || checksum(&c.borrow()),
        );
    }
    // transposed variants at the acceptance shape
    let (m, k, n) = (256usize, 256usize, 256usize);
    let flops = 2.0 * (m * k * n) as f64;
    {
        let a = filled([m, k], 3);
        let bm = filled([m, n], 4);
        let c = RefCell::new(Tensor::zeros([k, n]));
        b.kernel(
            "matmul_tn",
            "256x256x256",
            flops,
            || matmul_tn_into(&a, &bm, &mut c.borrow_mut()),
            || checksum(&c.borrow()),
        );
    }
    {
        let a = filled([m, n], 5);
        let bm = filled([k, n], 6);
        let c = RefCell::new(Tensor::zeros([m, k]));
        b.kernel(
            "matmul_nt",
            "256x256x256",
            flops,
            || matmul_nt_into(&a, &bm, &mut c.borrow_mut()),
            || checksum(&c.borrow()),
        );
    }
}

fn layer_benches(b: &mut Bench) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // ResNetMini block-1 geometry: 8 images of 8×16×16, 3×3 kernel
    let mut rng = StdRng::seed_from_u64(7);
    let conv = RefCell::new(Conv2d::new("bench.conv", 8, 8, 16, 16, 3, 1, 1, &mut rng));
    let mut x = Tensor::zeros([8, 8, 16, 16]);
    fill(&mut x, 8);
    let out = RefCell::new(Tensor::zeros([0]));
    let flops = 2.0 * (8 * 16 * 16) as f64 * (8 * 3 * 3) as f64 * 8.0;
    b.kernel(
        "conv2d_fwd",
        "8x8x16x16-k3",
        flops,
        || *out.borrow_mut() = conv.borrow_mut().forward(&x, false),
        || checksum(&out.borrow()),
    );

    // TransformerMini attention geometry: batch 4, seq 32, dim 64
    let mut rng = StdRng::seed_from_u64(9);
    let attn = RefCell::new(MultiHeadSelfAttention::new("bench.attn", 64, 4, &mut rng));
    let x = filled([4 * 32, 64], 10);
    b.kernel(
        "attention_fwd",
        "b4-s32-d64-h4",
        0.0,
        || *out.borrow_mut() = attn.borrow_mut().forward_seq(&x, 4, 32, true),
        || checksum(&out.borrow()),
    );
}

fn parse_flags(args: &[String]) -> Result<(bool, bool, String), String> {
    let mut quick = false;
    let mut reference_only = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--reference" => reference_only = true,
            "--out" => {
                out_path = it.next().ok_or("missing value for --out")?.clone();
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' (kernel_bench [--quick] [--reference] [--out PATH])"
                ))
            }
        }
    }
    Ok((quick, reference_only, out_path))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, reference_only, out_path) = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    banner(
        "Kernels",
        "Packed-GEMM / conv / attention / train throughput",
    );
    let mut b = Bench {
        quick,
        reference_only,
        rows: Vec::new(),
        failures: Vec::new(),
    };

    matmul_benches(&mut b);
    layer_benches(&mut b);

    let train_scale = Scale {
        workers: 4,
        steps: if quick { 12 } else { 48 },
        data: if quick { 192 } else { 512 },
        eval_every: u64::MAX, // timing run: one eval at the end only
    };
    let kinds: &[ModelKind] = if quick {
        &[ModelKind::ResNetMini, ModelKind::TransformerMini]
    } else {
        &ModelKind::ALL
    };
    for &kind in kinds {
        b.train(kind, &train_scale);
    }
    for &kind in kinds {
        b.overlap(kind, &train_scale);
    }

    let report = Report {
        schema: "selsync-kernel-bench-v1".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        rows: b.rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    // Re-read and validate what actually landed on disk: CI trusts the
    // file, so the file (not the in-memory table) is what gets checked.
    let disk = std::fs::read_to_string(&out_path).expect("re-read report");
    let parsed: Report = match serde_json::from_str(&disk) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {out_path} is not valid kernel-bench JSON: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = b.failures;
    for row in &parsed.rows {
        if !row.ms_per_call.is_finite() || row.ms_per_call <= 0.0 {
            failures.push(format!(
                "{} {} ({}): non-positive ms_per_call {}",
                row.bench, row.shape, row.impl_name, row.ms_per_call
            ));
        }
        if row.checksum_ok == Some(false) {
            failures.push(format!(
                "{} {} ({}): checksum diverged on disk",
                row.bench, row.shape, row.impl_name
            ));
        }
    }
    println!("\nwrote {} rows to {out_path}", parsed.rows.len());
    if !failures.is_empty() {
        failures.sort();
        failures.dedup();
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all checksums within {CHECKSUM_RTOL} relative tolerance");
}
