//! Fig. 12 — data injection in SelSync vs. FedAvg on non-IID data.
//!
//! Paper setup: 10 workers, CIFAR10-style 1-label-per-worker skew.
//! FedAvg oscillates around 60–70% while SelSync with data injection
//! climbs with (α, β, δ): (0.75, 0.75, 0.3) > (0.5, 0.5, 0.3) >
//! (0.5, 0.5, 0.05) > FedAvg.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    step: u64,
    metric: f32,
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig 12",
        "Data injection (α, β, δ) vs FedAvg on non-IID data",
    );
    let kind = ModelKind::ResNetMini;
    // 10 workers / 10 classes / 1 label per worker, like the paper
    let workers = 10;
    let wl = Workload::vision(kind, scale.data.max(600), scale.data / 4 + 32, 42);

    let mut runs: Vec<(String, RunConfig)> = Vec::new();
    {
        let mut cfg = paper_config(kind, Strategy::FedAvg { c: 1.0, e: 0.1 }, &scale);
        cfg.n_workers = workers;
        cfg.noniid_labels = Some(1);
        runs.push(("FedAvg(1, 0.1)".into(), cfg));
    }
    for (alpha, beta, delta) in [(0.5, 0.5, 0.05f32), (0.5, 0.5, 0.3), (0.75, 0.75, 0.3)] {
        let mut cfg = paper_config(
            kind,
            Strategy::SelSync {
                delta,
                aggregation: Aggregation::Parameter,
            },
            &scale,
        );
        cfg.n_workers = workers;
        cfg.noniid_labels = Some(1);
        cfg.injection = Some(InjectionConfig::new(alpha, beta));
        cfg.batch_size = 32; // Eqn. 3 shrinks the local share to b′
        runs.push((format!("SelSync({alpha}, {beta}, {delta})"), cfg));
    }

    let mut finals = Vec::new();
    for (name, cfg) in &runs {
        if let Some(inj) = cfg.injection {
            println!(
                "{name}: b′ = {} (Eqn. 3, b=32, N={workers})",
                inj.adjusted_batch_size(32, workers)
            );
        }
        let r = run_and_report(kind, cfg, &wl);
        for e in &r.evals {
            json_row(&Row {
                config: name.clone(),
                step: e.step,
                metric: e.metric,
            });
        }
        finals.push((name.clone(), r.best_metric(false)));
    }
    println!();
    for (name, m) in &finals {
        println!("{:<24} best {}", name, fmt_metric(kind, *m));
    }
    println!("\nShape check (paper Fig 12): every injection config beats plain FedAvg on");
    println!("non-IID data, and accuracy rises with stronger (α, β) injection.");
}
