//! `selsync_soak` — randomized fault-schedule sweeper with shrinking.
//!
//! Sweeps N seeded random [`FaultPlan`]s across four topologies
//! (monolithic elastic PS, the same cluster with bucketed parameter
//! pushes, sharded PS group with K = 2, serve router/replica group),
//! asserting the soak invariants on every run:
//! deadline, no panic, CommStats conservation, classified recovery,
//! no unexpected eviction, and bit-identity for benign schedules. On a
//! violation the failing plan is greedily shrunk to a 1-minimal
//! reproducing schedule and written as JSON (`--out`, default
//! `SOAK_repro.json`) so the exact failure replays from one file.
//!
//! Flags:
//!
//! * `--quick`        CI scale: 51 schedules, short runs
//! * `--schedules N`  override the schedule count
//! * `--seed S`       sweep seed (default 42); every plan is a pure
//!   function of `(seed, index, topology)`
//! * `--out PATH`     where a repro JSON lands on failure
//!
//! Exit status: 0 all green, 1 at least one violation (repro written),
//! 2 bad usage or a broken fault-free baseline.

use selsync_bench::banner;
use selsync_bench::soak::{
    classify, describe, random_plan, run_serve, run_training, shrink, verify_serve,
    verify_training, PlanClass, Repro, ServeKnobs, Topology, TrainingKnobs, Violation,
};
use selsync_chaos::FaultPlan;
use selsync_core::checkpoint::{prev_path, save_state, TrainState};
use selsync_nn::flat::flat_params;
use selsync_nn::models::Mlp;
use std::time::Instant;

struct Flags {
    quick: bool,
    schedules: u64,
    seed: u64,
    out: String,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        quick: false,
        schedules: 0,
        seed: 42,
        out: "SOAK_repro.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => f.quick = true,
            "--schedules" => {
                f.schedules = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--schedules needs a number".to_string())?;
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--seed needs a number".to_string())?;
            }
            "--out" => {
                f.out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--out needs a path".to_string())?;
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' \
                     (selsync_soak [--quick] [--schedules N] [--seed S] [--out PATH])"
                ))
            }
        }
    }
    if f.schedules == 0 {
        f.schedules = if f.quick { 51 } else { 120 };
    }
    Ok(f)
}

fn class_name(c: PlanClass) -> &'static str {
    match c {
        PlanClass::Benign => "benign",
        PlanClass::CrashOnly => "crash",
        PlanClass::Lossy => "lossy",
    }
}

/// Run + verify one schedule, returning the violation if any and a
/// short stats string for the table.
fn run_one(
    topo: Topology,
    plan: &FaultPlan,
    tk: &TrainingKnobs,
    sk: &ServeKnobs,
    baselines: &Baselines,
) -> (Option<Violation>, String) {
    match topo {
        Topology::Serve => match run_serve(plan, sk) {
            Ok(run) => {
                let v = verify_serve(plan, &run, baselines.serve, sk);
                let s = format!(
                    "req={} evict={} corrupt={} {}ms",
                    run.completed,
                    run.evicted.len(),
                    run.corrupt,
                    run.wall_ms
                );
                (v, s)
            }
            Err(v) => (Some(v), "-".to_string()),
        },
        _ => match run_training(topo, plan, tk) {
            Ok(run) => {
                let baseline = match topo {
                    Topology::Sharded(_) => baselines.sharded,
                    // bucketed is monolithic in a different wire format;
                    // benign schedules must land on the same fingerprint
                    _ => baselines.monolithic,
                };
                let v = verify_training(plan, &run, baseline, tk);
                let s = format!(
                    "sync={} evict={} fail={} drop={} corrupt={} {}ms",
                    run.syncs, run.evictions, run.failed, run.dropped, run.corrupt, run.wall_ms
                );
                (v, s)
            }
            Err(v) => (Some(v), "-".to_string()),
        },
    }
}

struct Baselines {
    monolithic: u64,
    sharded: u64,
    serve: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    banner(
        "selsync_soak",
        "Randomized fault-schedule sweep with invariant checks and shrinking",
    );

    let steps = if flags.quick { 4 } else { 8 };
    let requests = if flags.quick { 30 } else { 120 };
    let tk = TrainingKnobs::quick(steps);

    // one SSV2 checkpoint shared by every serve schedule
    let mut ckpt = std::env::temp_dir();
    ckpt.push(format!("selsync_soak_{}.ckpt", std::process::id()));
    let dims = selsync_bench::soak::soak_model_dims();
    let params = flat_params(&Mlp::new(&dims, 77));
    let state = TrainState {
        step: 1,
        ..TrainState::fresh(0, params)
    };
    save_state(&ckpt, &state).expect("write soak checkpoint");
    let sk = ServeKnobs::quick(ckpt.clone(), requests);

    // fault-free baselines per topology: the fingerprints the benign
    // invariant compares against — and a sanity gate: if the quiet
    // schedule itself misbehaves, the sweep has nothing to stand on
    let quiet = FaultPlan::quiet(flags.seed);
    let baselines = {
        let mono = run_training(Topology::Monolithic, &quiet, &tk)
            .map_err(|v| format!("{}: {}", v.invariant, v.detail));
        let shard = run_training(Topology::Sharded(2), &quiet, &tk)
            .map_err(|v| format!("{}: {}", v.invariant, v.detail));
        let serve = run_serve(&quiet, &sk).map_err(|v| format!("{}: {}", v.invariant, v.detail));
        match (mono, shard, serve) {
            (Ok(m), Ok(s), Ok(v)) => Baselines {
                monolithic: m.fingerprint,
                sharded: s.fingerprint,
                serve: v.fingerprint,
            },
            (m, s, v) => {
                for (name, err) in [
                    ("monolithic", m.err()),
                    ("sharded", s.err()),
                    ("serve", v.err().map(|e| e.to_string())),
                ] {
                    if let Some(e) = err {
                        eprintln!("FAIL: fault-free {name} baseline: {e}");
                    }
                }
                std::fs::remove_file(&ckpt).ok();
                std::fs::remove_file(prev_path(&ckpt)).ok();
                std::process::exit(2);
            }
        }
    };

    println!(
        "{:<5} {:<11} {:<7} {:<38} {:<6} stats",
        "idx", "topology", "class", "plan", "result"
    );
    let topos = [
        Topology::Monolithic,
        Topology::Bucketed,
        Topology::Sharded(2),
        Topology::Serve,
    ];
    let t0 = Instant::now();
    let mut violations = 0u64;
    for i in 0..flags.schedules {
        let topo = topos[(i % topos.len() as u64) as usize];
        // serve plans target replica ranks; training plans worker ranks
        let ranks = match topo {
            Topology::Serve => sk.replicas,
            _ => tk.workers,
        };
        let plan = random_plan(flags.seed, i, topo, ranks, tk.steps);
        let (violation, stats) = run_one(topo, &plan, &tk, &sk, &baselines);
        let verdict = if violation.is_some() { "FAIL" } else { "ok" };
        println!(
            "{:<5} {:<11} {:<7} {:<38} {:<6} {}",
            i,
            topo.name(),
            class_name(classify(&plan)),
            describe(&plan),
            verdict,
            stats
        );
        let Some(v) = violation else { continue };
        violations += 1;
        println!(
            "  violation: {} — {}; shrinking the schedule...",
            v.invariant, v.detail
        );
        // greedy shrink: keep any one-step-simpler plan that still
        // reproduces *some* violation of the same sweep
        let minimal = shrink(&plan, |cand| {
            run_one(topo, cand, &tk, &sk, &baselines).0.is_some()
        });
        let (min_violation, _) = run_one(topo, &minimal, &tk, &sk, &baselines);
        let v = min_violation.unwrap_or(v);
        let repro = Repro {
            schema: "selsync-soak-repro-v1".to_string(),
            sweep_seed: flags.seed,
            schedule: i,
            topology: topo.name().to_string(),
            invariant: v.invariant.clone(),
            detail: v.detail.clone(),
            shrunk_plan: minimal,
            original_plan: plan,
        };
        let json = repro.to_json();
        println!("  minimal repro:\n{json}");
        std::fs::write(&flags.out, &json)
            .unwrap_or_else(|e| eprintln!("  (could not write {}: {e})", flags.out));
    }

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(prev_path(&ckpt)).ok();
    println!();
    if violations == 0 {
        println!(
            "soak: {} schedules green in {:.1}s (seed {})",
            flags.schedules,
            t0.elapsed().as_secs_f64(),
            flags.seed
        );
    } else {
        println!(
            "soak: {violations} violation(s) in {} schedules; last minimal repro in {}",
            flags.schedules, flags.out
        );
        std::process::exit(1);
    }
}
