//! Fig. 9 — SelSync (δ = 0.25, gradient aggregation) trained with SelDP
//! vs. DefDP partitioning.
//!
//! The paper's finding: with most updates local, DefDP starves each
//! replica of the other workers' data and test performance collapses
//! (VGG11 64.1% vs 90.86%); SelDP restores it. Same harness, minis.

use selsync_bench::{banner, fmt_metric, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    partition: &'static str,
    step: u64,
    metric: f32,
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 9", "SelSync+GA convergence: SelDP vs DefDP");
    let strategy = Strategy::SelSync {
        delta: 0.25,
        aggregation: Aggregation::Gradient,
    };
    let mut summary = Vec::new();
    for kind in ModelKind::ALL {
        // the Transformer row uses the topic-switching corpus: a
        // stationary chain makes every DefDP chunk statistically
        // identical, so the §III-D starvation needs the heterogeneous
        // (WikiText-article-like) stream to manifest for text
        let wl = if kind == ModelKind::TransformerMini {
            Workload::text_with_topics(
                scale.data * selsync_core::workload::SEQ_LEN,
                42,
                selsync_core::workload::TEXT_TOPICS,
            )
        } else {
            selsync_bench::workload_for(kind, &scale)
        };
        let mut finals = Vec::new();
        for (scheme, name) in [
            (PartitionScheme::SelDp, "SelDP"),
            (PartitionScheme::DefDp, "DefDP"),
        ] {
            let mut cfg = paper_config(kind, strategy, &scale);
            cfg.partition = scheme;
            let r = run_and_report(kind, &cfg, &wl);
            for e in &r.evals {
                json_row(&Row {
                    model: kind.paper_name(),
                    partition: name,
                    step: e.step,
                    metric: e.metric,
                });
            }
            finals.push((name, r.best_metric(kind.lower_is_better())));
        }
        println!(
            "{:<12} SelDP {} vs DefDP {}",
            kind.paper_name(),
            fmt_metric(kind, finals[0].1),
            fmt_metric(kind, finals[1].1),
        );
        summary.push((kind, finals[0].1, finals[1].1));
    }
    println!("\nShape check (paper Fig 9): SelDP ≥ DefDP on every workload;");
    println!("the gap is largest for the plain conv net (VGG) and smallest for the skip-connection net (ResNet).");
    for (kind, seldp, defdp) in &summary {
        let better = if kind.lower_is_better() {
            seldp <= defdp
        } else {
            seldp >= defdp
        };
        println!(
            "  {:<12} SelDP better-or-equal: {}",
            kind.paper_name(),
            if better {
                "yes"
            } else {
                "NO (noise at quick scale)"
            }
        );
    }
}
