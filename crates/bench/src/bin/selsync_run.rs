//! `selsync_run` — the command-line front end: train any workload with
//! any strategy/backend/compression combination and print a summary plus
//! JSON result rows.
//!
//! ```sh
//! cargo run --release --bin selsync_run -- \
//!     --model resnet --strategy selsync --delta 0.3 --workers 8
//! ```

use selsync_bench::cli::parse_args;
use selsync_bench::json_row;
use selsync_core::prelude::*;
use selsync_core::timing::TimingParams;
use serde::Serialize;

#[derive(Serialize)]
struct Summary<'a> {
    model: &'a str,
    strategy: String,
    workers: usize,
    steps: u64,
    lssr: f64,
    final_metric: f32,
    best_metric: f32,
    comm_bytes: u64,
    logical_sync_bytes: u64,
    replica_divergence: f32,
    paper_scale_seconds: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = match parse_args(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(
                if msg.contains("USAGE") && args.contains(&"--help".into()) {
                    0
                } else {
                    2
                },
            );
        }
    };
    let mut workload = Workload::for_kind(run.kind, run.data_scale, run.config.seed);
    if let Some(path) = &run.load_params {
        workload.init_params =
            Some(selsync_core::checkpoint::load_params(path).expect("readable checkpoint"));
        eprintln!("warm-started from {path}");
    }
    eprintln!(
        "training {} with {} on {} workers ({} steps)...",
        run.kind.paper_name(),
        run.config.strategy.label(),
        run.config.n_workers,
        run.config.max_steps
    );
    let start = std::time::Instant::now();
    let result = run_distributed(&run.config, &workload);
    let host_s = start.elapsed().as_secs_f64();

    let timing = selsync_core::timing::simulate_timeline(
        run.config.strategy,
        &result.step_records,
        &TimingParams::paper(run.kind, run.config.n_workers),
    );
    let lower = run.kind.lower_is_better();
    println!(
        "\n{} | {} | {} workers",
        run.kind.paper_name(),
        run.config.strategy.label(),
        run.config.n_workers
    );
    println!(
        "  {:<26} {}",
        run.kind.metric(),
        fmt(run.kind, result.final_metric)
    );
    println!(
        "  {:<26} {}",
        "best",
        fmt(run.kind, result.best_metric(lower))
    );
    println!("  {:<26} {:.3}", "LSSR", result.lssr.lssr());
    println!(
        "  {:<26} {:.1}x",
        "comm reduction vs BSP",
        result.lssr.comm_reduction()
    );
    println!("  {:<26} {}", "fabric bytes", result.comm_bytes);
    println!(
        "  {:<26} {}",
        "sync payload bytes (w0)", result.logical_sync_bytes
    );
    println!(
        "  {:<26} {:.4}",
        "replica divergence",
        result.replica_divergence()
    );
    println!("  {:<26} {:.1}s", "paper-scale wall-clock", timing.total_s);
    println!("  {:<26} {:.1}s", "host wall-clock", host_s);
    if let Some(path) = &run.save_params {
        selsync_core::checkpoint::save_params(path, &result.final_params)
            .expect("writable checkpoint path");
        eprintln!("saved final parameters to {path}");
    }
    json_row(&Summary {
        model: run.kind.paper_name(),
        strategy: run.config.strategy.label(),
        workers: run.config.n_workers,
        steps: run.config.max_steps,
        lssr: result.lssr.lssr(),
        final_metric: result.final_metric,
        best_metric: result.best_metric(lower),
        comm_bytes: result.comm_bytes,
        logical_sync_bytes: result.logical_sync_bytes,
        replica_divergence: result.replica_divergence(),
        paper_scale_seconds: timing.total_s,
    });
}

fn fmt(kind: ModelKind, v: f32) -> String {
    if kind.lower_is_better() {
        format!("{v:.3} (perplexity)")
    } else {
        format!("{:.2}%", v * 100.0)
    }
}
