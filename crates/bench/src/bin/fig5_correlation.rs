//! Fig. 5 — correlation between relative gradient change Δ(g_i) and
//! model convergence under BSP.
//!
//! For each workload we run BSP with the paper's EWMA settings, logging
//! Δ(g_i) alongside the test metric: volatile Δ phases coincide with
//! fast metric movement, and as convergence plateaus so does Δ(g_i).

use selsync_bench::{banner, json_row, paper_config, run_and_report, Scale};
use selsync_core::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    step: u64,
    delta_g: f32,
    metric: Option<f32>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Fig 5", "Relative gradient change vs convergence (BSP)");
    for kind in ModelKind::ALL {
        let wl = selsync_bench::workload_for(kind, &scale);
        // SelSync with δ=0 syncs every step (≡ BSP) *and* records Δ(g_i)
        let cfg = paper_config(
            kind,
            Strategy::SelSync {
                delta: 0.0,
                aggregation: Aggregation::Parameter,
            },
            &scale,
        );
        let r = run_and_report(kind, &cfg, &wl);
        let evals: std::collections::HashMap<u64, f32> =
            r.evals.iter().map(|e| (e.step, e.metric)).collect();
        for rec in &r.step_records {
            if rec.step % 5 == 0 || evals.contains_key(&rec.step) {
                json_row(&Row {
                    model: kind.paper_name(),
                    step: rec.step,
                    delta_g: rec.delta_g,
                    metric: evals.get(&rec.step).copied(),
                });
            }
        }
        // quantify the paper's two observations:
        // (1) Δ(g) settles as the metric plateaus — compare the early
        //     quarter against the pre-decay plateau window (the LR decay
        //     itself spikes Δ, which is observation (2));
        // (2) the decay boundary produces a visible Δ(g) spike, exactly
        //     like the paper's "sudden peak ... corresponds to learning
        //     rate decay" in Fig 5a/5b.
        let n = r.step_records.len();
        let mean_over = |lo: usize, hi: usize| -> f32 {
            let xs: Vec<f32> = r.step_records[lo..hi]
                .iter()
                .map(|s| s.delta_g)
                .filter(|d| d.is_finite())
                .collect();
            xs.iter().sum::<f32>() / xs.len().max(1) as f32
        };
        let early = mean_over(1, n / 4);
        let plateau = mean_over(n / 2, n * 5 / 8); // before the first decay
        let decay_window = mean_over(n * 5 / 8, (n * 5 / 8 + n / 16).min(n));
        println!(
            "{:<12} mean Δ(g): early {:.4} → pre-decay plateau {:.4} ({:.1}x damping); decay spike {:.4}; final {}",
            kind.paper_name(),
            early,
            plateau,
            early / plateau.max(1e-6),
            decay_window,
            selsync_bench::fmt_metric(kind, r.final_metric)
        );
    }
    println!("\nShape checks (paper Fig 5): Δ(g) is largest in the volatile early phase, flattens");
    println!("as the metric plateaus, and spikes again at the LR-decay boundary (5a/5b).");
}
