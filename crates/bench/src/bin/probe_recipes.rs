//! Recipe probe: single-worker sanity sweep over learning rates per
//! model, used to validate the §IV-A-scaled recipes actually converge
//! at mini scale. Not a paper artifact; a tuning tool.

use selsync_core::workload::{Workload, WorkloadData, SEQ_LEN};
use selsync_nn::loss::{accuracy, softmax_cross_entropy, topk_accuracy};
use selsync_nn::models::ModelKind;
use selsync_nn::optim::{Adam, Optimizer, Sgd};
use selsync_nn::{Batch, Input};

fn batch(wl: &Workload, step: u64, b: usize) -> Batch {
    match &wl.data {
        WorkloadData::Vision { train, .. } => {
            let n = train.len();
            let idx: Vec<usize> = (0..b).map(|i| ((step as usize * b) + i) % n).collect();
            let (x, t) = train.gather(&idx);
            Batch::dense(x, t)
        }
        WorkloadData::Text { train, .. } => {
            let windows = train.num_windows(SEQ_LEN);
            let mut seqs = Vec::new();
            let mut targets = Vec::new();
            for i in 0..b {
                let w = ((step as usize * b) + i) % windows;
                let (x, y) = train.window(w, SEQ_LEN);
                seqs.push(x);
                targets.extend(y);
            }
            Batch::tokens(seqs, targets)
        }
    }
}

fn eval(wl: &Workload, model: &mut selsync_core::workload::AnyModel) -> f32 {
    match &wl.data {
        WorkloadData::Vision { test, .. } => {
            let idx: Vec<usize> = (0..test.len().min(200)).collect();
            let (x, t) = test.gather(&idx);
            let logits = model.as_model().forward(&Input::Dense(x), false);
            if wl.kind == ModelKind::AlexNetMini {
                topk_accuracy(&logits, &t, 5)
            } else {
                accuracy(&logits, &t)
            }
        }
        WorkloadData::Text { test, .. } => {
            let mut seqs = Vec::new();
            let mut targets = Vec::new();
            for w in 0..test.num_windows(SEQ_LEN).min(16) {
                let (x, y) = test.window(w, SEQ_LEN);
                seqs.push(x);
                targets.extend(y);
            }
            let logits = model.as_model().forward(&Input::Tokens(seqs), false);
            let (loss, _) = softmax_cross_entropy(&logits, &targets);
            loss.exp()
        }
    }
}

fn main() {
    let steps: u64 = std::env::var("PROBE_STEPS").map_or(400, |v| v.parse().unwrap());
    for kind in ModelKind::ALL {
        let wl = Workload::for_kind(kind, 768, 42);
        for &(lr, momentum, adam) in &[
            (0.01f32, 0.9f32, false),
            (0.03, 0.9, false),
            (0.08, 0.9, false),
            (0.2, 0.0, false),
            (0.003, 0.0, true),
        ] {
            let mut model = wl.build_model();
            let mut sgd = Sgd::with_momentum(lr, momentum, 0.0);
            let mut ad = Adam::new(lr);
            let mut last_loss = 0.0;
            for step in 0..steps {
                let b = batch(&wl, step, 64); // 8 workers × b8 equivalent
                let logits = model.as_model().forward(&b.input, true);
                let (loss, dl) = softmax_cross_entropy(&logits, &b.targets);
                last_loss = loss;
                model.as_model().zero_grad();
                model.as_model().backward(&dl);
                if adam {
                    ad.step(model.as_model());
                } else {
                    sgd.step(model.as_model());
                }
            }
            let m = eval(&wl, &mut model);
            println!(
                "{:<12} lr={lr:<6} mom={momentum:<4} adam={adam:<6} loss={last_loss:<8.3} metric={m:.3}",
                kind.paper_name()
            );
        }
        println!();
    }
}
