//! # selsync-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (§IV). Each binary in `src/bin/` reproduces one
//! artifact and prints (a) an aligned human-readable table/series and
//! (b) machine-readable JSON lines (one object per row) for plotting.
//!
//! All harnesses respect two environment variables:
//!
//! * `SELSYNC_SCALE` — `quick` (default; minutes on a laptop core) or
//!   `full` (longer runs, tighter curves);
//! * `SELSYNC_WORKERS` — override the cluster size.
//!
//! The mapping from paper artifact → binary is the experiment index in
//! DESIGN.md §3.

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

pub mod cli;
pub mod soak;

use selsync_core::prelude::*;
use serde::Serialize;

/// Run-scale knobs derived from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Cluster size for distributed runs.
    pub workers: usize,
    /// Step budget for convergence runs.
    pub steps: u64,
    /// Dataset size (samples / bptt windows).
    pub data: usize,
    /// Evaluation period.
    pub eval_every: u64,
}

impl Scale {
    /// Read `SELSYNC_SCALE` / `SELSYNC_WORKERS` / `SELSYNC_STEPS`.
    pub fn from_env() -> Self {
        let full = std::env::var("SELSYNC_SCALE").is_ok_and(|v| v == "full");
        let mut s = if full {
            Scale {
                workers: 16,
                steps: 1200,
                data: 2048,
                eval_every: 60,
            }
        } else {
            Scale {
                workers: 8,
                steps: 400,
                data: 768,
                eval_every: 40,
            }
        };
        if let Ok(w) = std::env::var("SELSYNC_WORKERS") {
            s.workers = parse_env_int("SELSYNC_WORKERS", &w);
        }
        if let Ok(st) = std::env::var("SELSYNC_STEPS") {
            s.steps = parse_env_int("SELSYNC_STEPS", &st);
        }
        s
    }
}

/// Parse an integer-valued environment variable, panicking with a
/// diagnostic that names both the variable and the offending value —
/// `SELSYNC_WORKERS=8x` should say so, not just "invalid digit".
fn parse_env_int<T: std::str::FromStr>(name: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        panic!("{name} must be an integer, got {name}={value:?}");
    })
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Emit one machine-readable result row.
pub fn json_row<T: Serialize>(row: &T) {
    println!(
        "JSON {}",
        serde_json::to_string(row).expect("serializable row")
    );
}

/// The standard experiment config for a workload under a strategy, at
/// the paper's recipes (§IV-A) scaled to the minis.
pub fn paper_config(kind: ModelKind, strategy: Strategy, scale: &Scale) -> RunConfig {
    let (lr, optim) = recipe(kind, scale.steps);
    RunConfig {
        strategy,
        n_workers: scale.workers,
        batch_size: 8,
        max_steps: scale.steps,
        eval_every: scale.eval_every,
        partition: PartitionScheme::SelDp,
        noniid_labels: None,
        injection: None,
        lr,
        optim,
        ewma_window: 25,
        ewma_alpha: RunConfig::paper_ewma_alpha(scale.workers),
        seed: 42,
        straggler: None,
        backend: SyncBackend::ParameterServer,
        compression: None,
        grad_clip: None,
        overlap_buckets: None,
        wire_compression: false,
    }
}

/// The per-model optimizer recipe of §IV-A, with LR boundaries scaled
/// from the paper's epochs to the mini's `steps` budget (the paper
/// decays ResNet at epochs 110/150 of ~160 and VGG at 50/75 of ~90 —
/// the same ~62%/88% points of the run reproduced here).
pub fn recipe(kind: ModelKind, steps: u64) -> (LrSchedule, OptimKind) {
    let b1 = steps * 5 / 8;
    let b2 = steps * 7 / 8;
    match kind {
        // ResNet101: SGD m=0.9 wd=4e-4, lr 0.1 ÷10 twice late in training
        ModelKind::ResNetMini => (
            LrSchedule::StepDecay {
                base_lr: 0.05,
                boundaries: vec![b1, b2],
                factor: 0.1,
            },
            OptimKind::Sgd {
                momentum: 0.9,
                weight_decay: 4e-4,
            },
        ),
        // VGG11: SGD m=0.9 wd=5e-4, lr ÷10 twice late in training.
        // The plain (norm-free) stack needs the smallest rate — the
        // paper's VGG recipe likewise uses a 10x lower lr than ResNet's.
        ModelKind::VggMini => (
            LrSchedule::StepDecay {
                base_lr: 0.01,
                boundaries: vec![b1, b2],
                factor: 0.1,
            },
            OptimKind::Sgd {
                momentum: 0.9,
                weight_decay: 5e-4,
            },
        ),
        // AlexNet: Adam, fixed lr (scaled up for the mini)
        ModelKind::AlexNetMini => (LrSchedule::Constant { lr: 3e-3 }, OptimKind::Adam),
        // Transformer: SGD, lr ×0.8 periodically (paper: every 2000 its);
        // the mini converges to near the source-entropy floor with
        // momentum at this rate
        ModelKind::TransformerMini => (
            LrSchedule::Exponential {
                base_lr: 0.08,
                every: (steps / 5).max(1),
                factor: 0.8,
            },
            OptimKind::Sgd {
                momentum: 0.9,
                weight_decay: 0.0,
            },
        ),
    }
}

/// Build the standard workload for a kind at this scale.
pub fn workload_for(kind: ModelKind, scale: &Scale) -> Workload {
    Workload::for_kind(kind, scale.data, 42)
}

/// Run one configuration and return the result, echoing a progress line.
pub fn run_and_report(kind: ModelKind, cfg: &RunConfig, wl: &Workload) -> RunResult {
    let start = std::time::Instant::now();
    let result = run_distributed(cfg, wl);
    eprintln!(
        "  [{}] {} — {} steps, LSSR {:.3}, metric {:.4} ({:.1}s host)",
        kind.paper_name(),
        cfg.strategy.label(),
        cfg.max_steps,
        result.lssr.lssr(),
        result.final_metric,
        start.elapsed().as_secs_f32(),
    );
    result
}

/// Format a metric the way the paper prints it (percent or perplexity).
pub fn fmt_metric(kind: ModelKind, v: f32) -> String {
    if kind.lower_is_better() {
        format!("{v:.2}")
    } else {
        format!("{:.2}%", v * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_small() {
        // default (no env) must stay laptop-sized
        let s = Scale {
            workers: 8,
            steps: 400,
            data: 768,
            eval_every: 40,
        };
        assert!(s.workers <= 16 && s.steps <= 2000);
    }

    #[test]
    fn recipes_match_paper_structure() {
        let (lr, opt) = recipe(ModelKind::ResNetMini, 400);
        if let LrSchedule::StepDecay { boundaries, .. } = &lr {
            assert_eq!(boundaries, &vec![250, 350], "decays land inside the budget");
        } else {
            panic!("ResNet decays stepwise");
        }
        assert!(matches!(opt, OptimKind::Sgd { .. }));
        let (lr_a, opt_a) = recipe(ModelKind::AlexNetMini, 400);
        assert!(
            matches!(lr_a, LrSchedule::Constant { .. }),
            "AlexNet fixed lr"
        );
        assert!(matches!(opt_a, OptimKind::Adam));
        let (lr_t, _) = recipe(ModelKind::TransformerMini, 400);
        assert!(matches!(lr_t, LrSchedule::Exponential { .. }));
    }

    #[test]
    fn parse_env_int_accepts_integers() {
        let w: usize = parse_env_int("SELSYNC_WORKERS", "12");
        assert_eq!(w, 12);
        let s: u64 = parse_env_int("SELSYNC_STEPS", "400");
        assert_eq!(s, 400);
    }

    #[test]
    fn parse_env_int_names_variable_and_value_on_failure() {
        let err = std::panic::catch_unwind(|| -> usize { parse_env_int("SELSYNC_WORKERS", "8x") })
            .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("SELSYNC_WORKERS"), "names the variable: {msg}");
        assert!(msg.contains("\"8x\""), "names the offending value: {msg}");
    }

    #[test]
    fn paper_config_uses_seldp_and_paper_alpha() {
        let s = Scale {
            workers: 16,
            steps: 10,
            data: 64,
            eval_every: 5,
        };
        let c = paper_config(ModelKind::VggMini, Strategy::LocalOnly, &s);
        assert_eq!(c.partition, PartitionScheme::SelDp);
        assert!((c.ewma_alpha - 0.16).abs() < 1e-6);
    }
}
