//! Randomized fault-schedule soak engine with shrinking.
//!
//! `selsync_soak` sweeps N seeded random [`FaultPlan`]s — drops,
//! duplicates, delays, stragglers, partitions, worker crashes, and
//! byte-level corruption/truncation — across four topologies
//! (monolithic elastic PS, the same cluster with bucketed parameter
//! pushes, sharded PS group, serve router/replica) and asserts global
//! invariants on every run:
//!
//! 1. **Deadline** — the run terminates within a budget (a watchdog
//!    thread converts a hang into a violation instead of a wedged CI).
//! 2. **No panic** — a panicking rank thread is a violation, not a
//!    crash of the sweeper.
//! 3. **Conservation** — summed over ranks, the chaos layer's
//!    `sent − dropped − corrupt + duplicated` equals the messages the
//!    underlying fabric actually forwarded.
//! 4. **Classified recovery** — a *benign* plan (delays/stragglers
//!    only) must evict nobody, fail nobody, and finish bit-identical
//!    to the fault-free baseline; a *crash-only* plan must evict
//!    exactly the scheduled ranks and fail nobody; a *lossy* plan
//!    (drops/dups/partitions/corruption) may evict and fail ranks, but
//!    must still terminate and conserve.
//!
//! On a violation the engine greedily **shrinks** the plan: it retries
//! simplified variants (one fault element removed or one probability
//! zeroed at a time) and keeps any that still reproduce, until no
//! single simplification does. The minimal plan is emitted as a JSON
//! repro so the schedule can be replayed directly.
//!
//! Runs use the in-process channel fabric: per-schedule TCP mesh setup
//! would dominate the sweep, and the wire-level integrity of real
//! sockets is covered separately (`crates/net` torn-frame suite,
//! `fault_experiments` TCP rows). Byte-level corruption still exercises
//! the real codec — [`ChaosTransport`] damages *encoded frames* and
//! feeds them back through `selsync_net::decode_frame`.

use selsync_chaos::{ChaosTransport, Crash, FaultPlan, Partition, Straggler};
use selsync_comm::{Fabric, Transport};
use selsync_core::prelude::*;
use selsync_core::trainer::WorkerOutput;
use selsync_core::ElasticOptions;
use selsync_core::{
    run_elastic_server_rank, run_elastic_worker_rank, run_shard_server_rank, run_shard_worker_rank,
};
use selsync_nn::models::ModelKind;
use selsync_serve::{
    run_client, run_replica, run_router, ClientConfig, ModelSpec, PredictEngine, Ranks,
    ReplicaConfig, RouterConfig,
};
use selsync_shard::{Role, ShardLayout};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Which cluster shape a schedule runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Workers `0..W`, one elastic PS on rank `W`.
    Monolithic,
    /// Same cluster as [`Topology::Monolithic`], but every parameter
    /// push ships as [`SOAK_BUCKET_VALUES`]-value `Bucket` frames, so
    /// drops/corruption land mid-assembly and retries resend whole
    /// bucket sets (DESIGN.md §12).
    Bucketed,
    /// Sharded PS group: shards `0..K`, workers `K..K+W`.
    Sharded(usize),
    /// Serving tier: replicas `0..R`, router `R`, client `R+1`.
    Serve,
}

/// Bucket size (in f32 values) used by [`Topology::Bucketed`]: small
/// enough to split the soak model's flat vector into several frames.
pub const SOAK_BUCKET_VALUES: usize = 1000;

impl Topology {
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Monolithic => "monolithic",
            Topology::Bucketed => "bucketed",
            Topology::Sharded(_) => "sharded",
            Topology::Serve => "serve",
        }
    }
}

/// What a plan is allowed to do to the run, derived from its knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanClass {
    /// Delays and stragglers only: nothing may be lost, nobody evicted,
    /// and the outcome must be bit-identical to the fault-free run.
    Benign,
    /// Scheduled rank crashes on an otherwise clean network: the
    /// crashed ranks are evicted, everyone else finishes cleanly.
    CrashOnly,
    /// Messages can be lost (drops, partitions, corruption, truncation)
    /// or duplicated: evictions and worker failures are legitimate
    /// recovery outcomes, but termination and conservation still hold.
    Lossy,
}

/// Classify `plan`. Duplicates count as lossy: a duplicated push can
/// legally perturb aggregation timing, so bit-identity is not claimed.
pub fn classify(plan: &FaultPlan) -> PlanClass {
    let lossy = plan.drop_prob > 0.0
        || plan.duplicate_prob > 0.0
        || plan.corrupt_prob > 0.0
        || plan.truncate_prob > 0.0
        || !plan.partitions.is_empty()
        || plan.server_crash.is_some();
    if lossy {
        PlanClass::Lossy
    } else if !plan.crashes.is_empty() {
        PlanClass::CrashOnly
    } else {
        PlanClass::Benign
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Draw(u64);

impl Draw {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform in `[lo, hi)` with 53-bit precision.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The seeded random plan for schedule `index` of a sweep — a pure
/// function of `(sweep_seed, index, topology, workers, steps)`, so a
/// repro needs only those numbers (or the emitted plan JSON). For
/// [`Topology::Serve`], `workers` is the *replica* count (crash and
/// straggler ranks must land on replicas, not the router or client)
/// and `steps` is read as a served-batch budget.
pub fn random_plan(
    sweep_seed: u64,
    index: u64,
    topo: Topology,
    workers: usize,
    steps: u64,
) -> FaultPlan {
    let mut d = Draw(sweep_seed ^ splitmix64(index.wrapping_mul(0x5851_F42D_4C95_7F2D)));
    let mut plan = FaultPlan::quiet(d.next());
    match topo {
        Topology::Serve => {
            // the serving tier's chaos menu is narrower: its protocol
            // has no retry layer, so loss-type faults would test the
            // sweeper, not the system. Stragglers, jitter, and replica
            // crashes are the faults its router is built to absorb.
            match d.below(4) {
                0 => {} // fault-free schedule
                1 => plan.stragglers.push(Straggler {
                    rank: d.below(workers as u64) as usize,
                    delay_ms: 1 + d.below(2),
                }),
                2 => plan.crashes.push(Crash {
                    rank: d.below(workers as u64) as usize,
                    at_step: 1 + d.below(3), // read as served batches
                }),
                _ => plan.delay_ms_max = 1 + d.below(2),
            }
        }
        Topology::Monolithic | Topology::Bucketed | Topology::Sharded(_) => {
            let wbase = match topo {
                Topology::Sharded(k) => k,
                _ => 0,
            };
            let server_of = |d: &mut Draw| match topo {
                Topology::Sharded(k) => d.below(k as u64) as usize,
                _ => workers, // the monolithic PS rank
            };
            // 1–3 distinct fault kinds per schedule (or none, ~1 in 8)
            if d.below(8) == 0 {
                return plan;
            }
            let kinds = 1 + d.below(3);
            for _ in 0..kinds {
                match d.below(8) {
                    0 => plan.drop_prob = 0.01 + d.unit() * 0.04,
                    1 => plan.duplicate_prob = 0.01 + d.unit() * 0.04,
                    2 => plan.delay_ms_max = 1 + d.below(2),
                    3 => {
                        let rank = wbase + d.below(workers as u64) as usize;
                        if plan.stragglers.iter().all(|s| s.rank != rank) {
                            plan.stragglers.push(Straggler {
                                rank,
                                delay_ms: 1 + d.below(2),
                            });
                        }
                    }
                    4 => {
                        let from_seq = d.below(16);
                        plan.partitions.push(Partition {
                            a: wbase + d.below(workers as u64) as usize,
                            b: server_of(&mut d),
                            from_seq,
                            to_seq: from_seq + 2 + d.below(4),
                        });
                    }
                    5 => {
                        let rank = wbase + d.below(workers as u64) as usize;
                        if plan.crashes.iter().all(|c| c.rank != rank) {
                            plan.crashes.push(Crash {
                                rank,
                                at_step: 1 + d.below(steps.saturating_sub(1).max(1)),
                            });
                        }
                    }
                    6 => plan.corrupt_prob = 0.01 + d.unit() * 0.05,
                    _ => plan.truncate_prob = 0.01 + d.unit() * 0.03,
                }
            }
        }
    }
    plan
}

/// One invariant violation: which invariant, and the evidence.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    pub invariant: String,
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: String) -> Violation {
        Violation {
            invariant: invariant.to_string(),
            detail,
        }
    }
}

/// The minimal reproduction emitted when a schedule fails — everything
/// needed to replay: the shrunk plan (and the original it came from),
/// the topology, and what broke.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct Repro {
    pub schema: String,
    pub sweep_seed: u64,
    pub schedule: u64,
    pub topology: String,
    pub invariant: String,
    pub detail: String,
    pub shrunk_plan: FaultPlan,
    pub original_plan: FaultPlan,
}

impl Repro {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Bit-exact fingerprint of a training outcome: each completed
/// worker's id, step counts, and every final parameter's raw bits.
fn training_fingerprint(completed: &[WorkerOutput]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for o in completed {
        fnv(&mut h, o.worker as u64);
        fnv(&mut h, o.lssr.total());
        for p in &o.final_params {
            fnv(&mut h, u64::from(p.to_bits()));
        }
    }
    h
}

/// Everything a training schedule produced, condensed for checking.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    pub rounds: u64,
    pub syncs: u64,
    pub evictions: usize,
    pub completed: usize,
    pub failed: usize,
    pub full_run: usize,
    pub fingerprint: u64,
    pub sent: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupt: u64,
    pub forwarded: u64,
    pub wall_ms: u64,
}

/// Fixed per-sweep training parameters (model, cluster size, budget).
#[derive(Clone)]
pub struct TrainingKnobs {
    pub workers: usize,
    pub steps: u64,
    pub cfg: RunConfig,
    pub wl: Workload,
    pub opts: ElasticOptions,
    pub deadline: Duration,
}

impl TrainingKnobs {
    /// CI-scale knobs: 3 workers, a few steps of the small conv net,
    /// liveness tuned so loss-type faults resolve in a second or two.
    pub fn quick(steps: u64) -> TrainingKnobs {
        let workers = 3;
        let cfg = RunConfig {
            strategy: Strategy::SelSync {
                delta: 0.25,
                aggregation: Aggregation::Parameter,
            },
            n_workers: workers,
            max_steps: steps,
            eval_every: steps,
            ..RunConfig::quick_defaults()
        };
        let wl = Workload::vision(ModelKind::VggMini, 64, 16, 7);
        let mut opts = ElasticOptions::with_liveness(Duration::from_millis(150), 3);
        opts.comm_retries = 6;
        TrainingKnobs {
            workers,
            steps,
            cfg,
            wl,
            opts,
            deadline: Duration::from_secs(60),
        }
    }
}

struct RawRun {
    rounds: u64,
    syncs: u64,
    evictions: usize,
    completed: Vec<WorkerOutput>,
    failed: usize,
    sent: u64,
    dropped: u64,
    duplicated: u64,
    corrupt: u64,
    forwarded: u64,
}

/// Tally one rank's chaos layer into the run totals.
fn tally<T: Transport>(raw: &mut RawRun, cep: &ChaosTransport<T>) {
    let s = cep.stats();
    raw.sent += s.total_messages();
    raw.dropped += s.dropped_messages();
    raw.duplicated += s.duplicated_messages();
    raw.corrupt += s.corrupt_messages();
}

fn drive_monolithic(plan: &FaultPlan, knobs: &TrainingKnobs) -> Result<RawRun, String> {
    let mut endpoints = Fabric::new(knobs.workers + 1);
    // the channel fabric shares one CommStats across endpoints: its
    // total is exactly "messages every rank's chaos layer forwarded"
    let fabric_stats = endpoints[0].stats().clone();
    let server_ep = endpoints.pop().expect("fabric includes the PS rank");
    let server = {
        let (cfg, wl, opts, plan) = (
            knobs.cfg.clone(),
            knobs.wl.clone(),
            knobs.opts.clone(),
            plan.clone(),
        );
        thread::spawn(move || {
            let mut cep = ChaosTransport::new(server_ep, plan);
            let res = run_elastic_server_rank(&mut cep, &cfg, &wl, &opts);
            (res, cep)
        })
    };
    let workers: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let (cfg, wl, plan) = (knobs.cfg.clone(), knobs.wl.clone(), plan.clone());
            let mut opts = knobs.opts.clone();
            opts.crash_at = plan.crash_step(ep.id());
            thread::spawn(move || {
                let mut cep = ChaosTransport::new(ep, plan);
                let res = run_elastic_worker_rank(&mut cep, &cfg, &wl, &opts);
                (res, cep)
            })
        })
        .collect();

    let mut raw = RawRun {
        rounds: 0,
        syncs: 0,
        evictions: 0,
        completed: Vec::new(),
        failed: 0,
        sent: 0,
        dropped: 0,
        duplicated: 0,
        corrupt: 0,
        forwarded: 0,
    };
    for h in workers {
        let (res, cep) = h.join().expect("worker thread");
        tally(&mut raw, &cep);
        match res {
            Ok(out) => raw.completed.push(out),
            Err(_) => raw.failed += 1,
        }
    }
    let (report, cep) = server.join().expect("server thread");
    tally(&mut raw, &cep);
    let report = report.map_err(|e| format!("PS failed: {e}"))?;
    raw.rounds = report.rounds;
    raw.syncs = report.syncs;
    raw.evictions = report.evictions.len();
    raw.completed.sort_by_key(|o| o.worker);
    raw.forwarded = fabric_stats.total_messages();
    Ok(raw)
}

fn drive_sharded(k: usize, plan: &FaultPlan, knobs: &TrainingKnobs) -> Result<RawRun, String> {
    let layout = ShardLayout::new(k, knobs.workers, false);
    let mut endpoints = Fabric::new(layout.total_ranks());
    let fabric_stats = endpoints[0].stats().clone();
    let mut shard_handles = Vec::new();
    let mut worker_handles = Vec::new();
    while let Some(ep) = endpoints.pop() {
        let (cfg, wl, plan) = (knobs.cfg.clone(), knobs.wl.clone(), plan.clone());
        let mut opts = knobs.opts.clone();
        match layout.role_of(ep.id()) {
            Role::Shard(s) => {
                shard_handles.push((
                    s,
                    thread::spawn(move || {
                        let mut cep = ChaosTransport::new(ep, plan);
                        let res = run_shard_server_rank(&mut cep, &cfg, &wl, &opts, layout);
                        (res, cep)
                    }),
                ));
            }
            Role::Worker(_) => {
                opts.crash_at = plan.crash_step(ep.id());
                worker_handles.push(thread::spawn(move || {
                    let mut cep = ChaosTransport::new(ep, plan);
                    let res = run_shard_worker_rank(&mut cep, &cfg, &wl, &opts, layout);
                    (res, cep)
                }));
            }
            Role::Standby(_) => unreachable!("soak runs without standbys"),
        }
    }

    let mut raw = RawRun {
        rounds: 0,
        syncs: 0,
        evictions: 0,
        completed: Vec::new(),
        failed: 0,
        sent: 0,
        dropped: 0,
        duplicated: 0,
        corrupt: 0,
        forwarded: 0,
    };
    for h in worker_handles {
        let (res, cep) = h.join().expect("worker thread");
        tally(&mut raw, &cep);
        match res {
            Ok(out) => raw.completed.push(out),
            Err(_) => raw.failed += 1,
        }
    }
    shard_handles.sort_by_key(|(s, _)| *s);
    for (s, h) in shard_handles {
        let (res, cep) = h.join().expect("shard thread");
        tally(&mut raw, &cep);
        let report = res.map_err(|e| format!("shard {s} failed: {e}"))?;
        if s == 0 {
            // shard 0 is the authoritative membership view
            raw.rounds = report.rounds;
            raw.syncs = report.syncs;
            raw.evictions = report.evictions.len();
        }
    }
    raw.completed.sort_by_key(|o| o.worker);
    raw.forwarded = fabric_stats.total_messages();
    Ok(raw)
}

/// Run one training schedule under a deadline watchdog. A hang becomes
/// a `deadline` violation, a panicking rank a `no-panic` violation, a
/// dead server a `server-survival` violation.
pub fn run_training(
    topo: Topology,
    plan: &FaultPlan,
    knobs: &TrainingKnobs,
) -> Result<TrainingRun, Violation> {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    {
        let (plan, knobs) = (plan.clone(), knobs.clone());
        thread::spawn(move || {
            let res = match topo {
                Topology::Monolithic => drive_monolithic(&plan, &knobs),
                Topology::Bucketed => {
                    // identical cluster, bucketed wire format: the
                    // elastic param push becomes several Bucket frames
                    let mut knobs = knobs;
                    knobs.cfg.overlap_buckets = Some(SOAK_BUCKET_VALUES);
                    drive_monolithic(&plan, &knobs)
                }
                Topology::Sharded(k) => drive_sharded(k, &plan, &knobs),
                Topology::Serve => unreachable!("serve schedules use run_serve"),
            };
            let _ = tx.send(res);
        });
    }
    let raw = match rx.recv_timeout(knobs.deadline) {
        Ok(Ok(raw)) => raw,
        Ok(Err(e)) => return Err(Violation::new("server-survival", e)),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            return Err(Violation::new(
                "deadline",
                format!("run exceeded the {:?} budget", knobs.deadline),
            ))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            return Err(Violation::new(
                "no-panic",
                "a rank thread panicked mid-run".to_string(),
            ))
        }
    };
    let full_run = raw
        .completed
        .iter()
        .filter(|o| o.lssr.total() == knobs.steps)
        .count();
    Ok(TrainingRun {
        rounds: raw.rounds,
        syncs: raw.syncs,
        evictions: raw.evictions,
        completed: raw.completed.len(),
        failed: raw.failed,
        full_run,
        fingerprint: training_fingerprint(&raw.completed),
        sent: raw.sent,
        dropped: raw.dropped,
        duplicated: raw.duplicated,
        corrupt: raw.corrupt,
        forwarded: raw.forwarded,
        wall_ms: start.elapsed().as_millis() as u64,
    })
}

/// Check every class-dependent invariant of a completed training run.
/// `baseline` is the fault-free fingerprint for the same topology.
pub fn verify_training(
    plan: &FaultPlan,
    run: &TrainingRun,
    baseline: u64,
    knobs: &TrainingKnobs,
) -> Option<Violation> {
    // conservation holds for every class: nothing the chaos layer did
    // is unaccounted for
    let balance = run.sent - run.dropped - run.corrupt + run.duplicated;
    if balance != run.forwarded {
        return Some(Violation::new(
            "conservation",
            format!(
                "sent {} − dropped {} − corrupt {} + duplicated {} = {} ≠ forwarded {}",
                run.sent, run.dropped, run.corrupt, run.duplicated, balance, run.forwarded
            ),
        ));
    }
    match classify(plan) {
        PlanClass::Benign => {
            if run.evictions != 0 {
                return Some(Violation::new(
                    "no-unexpected-eviction",
                    format!("benign plan evicted {} rank(s)", run.evictions),
                ));
            }
            if run.failed != 0 || run.full_run != knobs.workers {
                return Some(Violation::new(
                    "classified-recovery",
                    format!(
                        "benign plan: {} failed, {}/{} full-run workers",
                        run.failed, run.full_run, knobs.workers
                    ),
                ));
            }
            if run.fingerprint != baseline {
                return Some(Violation::new(
                    "bit-identity",
                    format!(
                        "benign run fingerprint 0x{:016x} ≠ fault-free 0x{:016x}",
                        run.fingerprint, baseline
                    ),
                ));
            }
        }
        PlanClass::CrashOnly => {
            let crashes = plan.crashes.len();
            if run.failed != 0 {
                return Some(Violation::new(
                    "classified-recovery",
                    format!(
                        "crash-only plan: {} unexplained worker failure(s)",
                        run.failed
                    ),
                ));
            }
            if run.evictions != crashes {
                return Some(Violation::new(
                    "classified-recovery",
                    format!(
                        "crash-only plan scheduled {} crash(es) but {} eviction(s) happened",
                        crashes, run.evictions
                    ),
                ));
            }
            if run.full_run != knobs.workers - crashes {
                return Some(Violation::new(
                    "classified-recovery",
                    format!(
                        "{} survivors should have run all {} steps, {} did",
                        knobs.workers - crashes,
                        knobs.steps,
                        run.full_run
                    ),
                ));
            }
        }
        PlanClass::Lossy => {
            // evictions/failures are legitimate recovery here; what
            // must still hold is the accounting above and that every
            // worker resolved one way or the other
            if run.completed + run.failed != knobs.workers {
                return Some(Violation::new(
                    "classified-recovery",
                    format!(
                        "{} completed + {} failed ≠ {} workers",
                        run.completed, run.failed, knobs.workers
                    ),
                ));
            }
        }
    }
    None
}

/// Everything a serve schedule produced, condensed for checking.
#[derive(Debug, Clone)]
pub struct ServeRun {
    pub completed: u64,
    pub evicted: Vec<usize>,
    pub requeued: u64,
    pub fingerprint: u64,
    pub sent: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupt: u64,
    pub forwarded: u64,
    pub wall_ms: u64,
}

/// Fixed per-sweep serving parameters.
#[derive(Clone)]
pub struct ServeKnobs {
    pub replicas: usize,
    pub requests: u64,
    pub ckpt: PathBuf,
    pub deadline: Duration,
}

impl ServeKnobs {
    pub fn quick(ckpt: PathBuf, requests: u64) -> ServeKnobs {
        ServeKnobs {
            replicas: 2,
            requests,
            ckpt,
            deadline: Duration::from_secs(60),
        }
    }
}

const SOAK_MLP_DIMS: [usize; 3] = [16, 32, 8];

/// The MLP spec the soak checkpoint is written for (binary + tests).
pub fn soak_model_dims() -> Vec<usize> {
    SOAK_MLP_DIMS.to_vec()
}

fn drive_serve(plan: &FaultPlan, knobs: &ServeKnobs) -> Result<RawServe, String> {
    let ranks = Ranks::new(knobs.replicas);
    let mut eps = Fabric::new(knobs.replicas + 2);
    let fabric_stats = eps[0].stats().clone();
    let client_ep = eps.pop().expect("client endpoint");
    let router_ep = eps.pop().expect("router endpoint");

    let mut replica_handles = Vec::new();
    for ep in eps {
        let ckpt = knobs.ckpt.clone();
        let router = ranks.router();
        let plan = plan.clone();
        let crash_after = plan.crash_step(ep.id());
        replica_handles.push(thread::spawn(move || {
            let (state, _) = selsync_core::checkpoint::load_state_with_fallback(&ckpt)
                .expect("soak checkpoint readable");
            let spec = ModelSpec::Mlp {
                dims: SOAK_MLP_DIMS.to_vec(),
            };
            let mut engine =
                PredictEngine::new(&spec, 0, &state.params).expect("soak checkpoint fits its spec");
            let cfg = ReplicaConfig {
                router,
                heartbeat: Duration::from_millis(50),
                warmup_rows: 8,
                warmup_dims: vec![SOAK_MLP_DIMS[0]],
                crash_after_batches: crash_after,
            };
            let mut cep = ChaosTransport::new(ep, plan);
            let res = run_replica(&mut cep, &mut engine, None, &cfg);
            (res.map(|_| ()).map_err(|e| e.to_string()), cep)
        }));
    }
    let router_cfg = RouterConfig {
        replicas: knobs.replicas,
        clients: 1,
        max_batch: 8,
        deadline: Duration::from_millis(2),
        heartbeat: Duration::from_millis(50),
        max_missed: 3,
    };
    let router = {
        let plan = plan.clone();
        thread::spawn(move || {
            let mut cep = ChaosTransport::new(router_ep, plan);
            let res = run_router(&mut cep, &router_cfg);
            (res.map_err(|e| e.to_string()), cep)
        })
    };
    let client_cfg = ClientConfig {
        router: ranks.router(),
        requests: knobs.requests,
        concurrency: 4,
        dims: vec![SOAK_MLP_DIMS[0]],
        spacing: Duration::ZERO,
        seed: 1,
        fixed_input: false,
        recv_timeout: Duration::from_secs(30),
    };
    let mut client = ChaosTransport::new(client_ep, plan.clone());
    let report = run_client(&mut client, &client_cfg).map_err(|e| format!("client: {e}"))?;

    let mut raw = RawServe {
        completed: report.completed,
        evicted: Vec::new(),
        requeued: 0,
        fingerprint: 0,
        sent: 0,
        dropped: 0,
        duplicated: 0,
        corrupt: 0,
        forwarded: 0,
    };
    let s = client.stats();
    raw.sent += s.total_messages();
    raw.dropped += s.dropped_messages();
    raw.duplicated += s.duplicated_messages();
    raw.corrupt += s.corrupt_messages();
    for h in replica_handles {
        let (res, cep) = h.join().expect("replica thread");
        let s = cep.stats();
        raw.sent += s.total_messages();
        raw.dropped += s.dropped_messages();
        raw.duplicated += s.duplicated_messages();
        raw.corrupt += s.corrupt_messages();
        res.map_err(|e| format!("replica: {e}"))?;
    }
    let (router_res, cep) = router.join().expect("router thread");
    let s = cep.stats();
    raw.sent += s.total_messages();
    raw.dropped += s.dropped_messages();
    raw.duplicated += s.duplicated_messages();
    raw.corrupt += s.corrupt_messages();
    let router_report = router_res.map_err(|e| format!("router: {e}"))?;
    raw.evicted = router_report.evicted;
    raw.requeued = router_report.requeued_batches;

    // reply fingerprints in request order: the serving tier's outputs
    // are a pure function of (checkpoint, inputs), so this is stable
    // across batching, stragglers, and replica failover
    let mut replies: Vec<_> = report
        .replies
        .iter()
        .map(|r| (r.request, r.fingerprint))
        .collect();
    replies.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (req, fp) in replies {
        fnv(&mut h, req);
        fnv(&mut h, fp);
    }
    raw.fingerprint = h;
    raw.forwarded = fabric_stats.total_messages();
    Ok(raw)
}

struct RawServe {
    completed: u64,
    evicted: Vec<usize>,
    requeued: u64,
    fingerprint: u64,
    sent: u64,
    dropped: u64,
    duplicated: u64,
    corrupt: u64,
    forwarded: u64,
}

/// Run one serve schedule under the same watchdog contract as
/// [`run_training`].
pub fn run_serve(plan: &FaultPlan, knobs: &ServeKnobs) -> Result<ServeRun, Violation> {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    {
        let (plan, knobs) = (plan.clone(), knobs.clone());
        thread::spawn(move || {
            let _ = tx.send(drive_serve(&plan, &knobs));
        });
    }
    let raw = match rx.recv_timeout(knobs.deadline) {
        Ok(Ok(raw)) => raw,
        Ok(Err(e)) => return Err(Violation::new("server-survival", e)),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            return Err(Violation::new(
                "deadline",
                format!("serve run exceeded the {:?} budget", knobs.deadline),
            ))
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            return Err(Violation::new(
                "no-panic",
                "a serving thread panicked mid-run".to_string(),
            ))
        }
    };
    Ok(ServeRun {
        completed: raw.completed,
        evicted: raw.evicted,
        requeued: raw.requeued,
        fingerprint: raw.fingerprint,
        sent: raw.sent,
        dropped: raw.dropped,
        duplicated: raw.duplicated,
        corrupt: raw.corrupt,
        forwarded: raw.forwarded,
        wall_ms: start.elapsed().as_millis() as u64,
    })
}

/// Check every invariant of a completed serve run.
pub fn verify_serve(
    plan: &FaultPlan,
    run: &ServeRun,
    baseline: u64,
    knobs: &ServeKnobs,
) -> Option<Violation> {
    let balance = run.sent - run.dropped - run.corrupt + run.duplicated;
    if balance != run.forwarded {
        return Some(Violation::new(
            "conservation",
            format!(
                "sent {} − dropped {} − corrupt {} + duplicated {} = {} ≠ forwarded {}",
                run.sent, run.dropped, run.corrupt, run.duplicated, balance, run.forwarded
            ),
        ));
    }
    if run.completed != knobs.requests {
        return Some(Violation::new(
            "classified-recovery",
            format!("{}/{} requests answered", run.completed, knobs.requests),
        ));
    }
    let crashed: Vec<usize> = plan.crashes.iter().map(|c| c.rank).collect();
    for rank in &run.evicted {
        if !crashed.contains(rank) {
            return Some(Violation::new(
                "no-unexpected-eviction",
                format!("replica {rank} evicted without a scheduled crash"),
            ));
        }
    }
    for rank in &crashed {
        if !run.evicted.contains(rank) {
            return Some(Violation::new(
                "classified-recovery",
                format!("replica {rank} was scheduled to crash but never evicted"),
            ));
        }
    }
    // output bit-identity holds for the whole serve menu: failover and
    // stragglers reroute work, they never change a logit
    if run.fingerprint != baseline {
        return Some(Violation::new(
            "bit-identity",
            format!(
                "reply fingerprint 0x{:016x} ≠ fault-free 0x{:016x}",
                run.fingerprint, baseline
            ),
        ));
    }
    None
}

/// Every plan that is exactly one simplification step smaller: one
/// schedule entry removed, or one probability/knob zeroed.
pub fn simplifications(p: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    for i in 0..p.crashes.len() {
        let mut c = p.clone();
        c.crashes.remove(i);
        out.push(c);
    }
    for i in 0..p.partitions.len() {
        let mut c = p.clone();
        c.partitions.remove(i);
        out.push(c);
    }
    for i in 0..p.stragglers.len() {
        let mut c = p.clone();
        c.stragglers.remove(i);
        out.push(c);
    }
    if p.server_crash.is_some() {
        let mut c = p.clone();
        c.server_crash = None;
        out.push(c);
    }
    if p.drop_prob > 0.0 {
        let mut c = p.clone();
        c.drop_prob = 0.0;
        out.push(c);
    }
    if p.duplicate_prob > 0.0 {
        let mut c = p.clone();
        c.duplicate_prob = 0.0;
        out.push(c);
    }
    if p.corrupt_prob > 0.0 {
        let mut c = p.clone();
        c.corrupt_prob = 0.0;
        out.push(c);
    }
    if p.truncate_prob > 0.0 {
        let mut c = p.clone();
        c.truncate_prob = 0.0;
        out.push(c);
    }
    if p.delay_ms_max > 0 {
        let mut c = p.clone();
        c.delay_ms_max = 0;
        out.push(c);
    }
    out
}

/// Greedy shrink: repeatedly take the first one-step simplification
/// that still fails `still_fails`, until none does. Terminates because
/// every simplification strictly shrinks the plan (one list element or
/// one nonzero knob fewer). The result is 1-minimal: removing any
/// single remaining fault makes the failure disappear.
pub fn shrink(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut cur = plan.clone();
    loop {
        match simplifications(&cur).into_iter().find(|c| still_fails(c)) {
            Some(simpler) => cur = simpler,
            None => return cur,
        }
    }
}

/// One-line human summary of what a plan injects.
pub fn describe(p: &FaultPlan) -> String {
    let mut parts = Vec::new();
    if p.drop_prob > 0.0 {
        parts.push(format!("drop={:.3}", p.drop_prob));
    }
    if p.duplicate_prob > 0.0 {
        parts.push(format!("dup={:.3}", p.duplicate_prob));
    }
    if p.corrupt_prob > 0.0 {
        parts.push(format!("corrupt={:.3}", p.corrupt_prob));
    }
    if p.truncate_prob > 0.0 {
        parts.push(format!("trunc={:.3}", p.truncate_prob));
    }
    if p.delay_ms_max > 0 {
        parts.push(format!("delay<={}ms", p.delay_ms_max));
    }
    for s in &p.stragglers {
        parts.push(format!("slow[{}]={}ms", s.rank, s.delay_ms));
    }
    for c in &p.crashes {
        parts.push(format!("crash[{}]@{}", c.rank, c.at_step));
    }
    for pa in &p.partitions {
        parts.push(format!(
            "part[{}-{}]@{}..{}",
            pa.a, pa.b, pa.from_seq, pa.to_seq
        ));
    }
    if p.server_crash.is_some() {
        parts.push("ps-crash".to_string());
    }
    if parts.is_empty() {
        "quiet".to_string()
    } else {
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_generator_is_pure_and_covers_all_classes() {
        let topos = [
            Topology::Monolithic,
            Topology::Bucketed,
            Topology::Sharded(2),
            Topology::Serve,
        ];
        let mut seen = std::collections::HashSet::new();
        for i in 0..160u64 {
            let topo = topos[(i % 4) as usize];
            // serve plans are drawn over the replica count (2), not the
            // training worker count — rank 2 would be the router
            let ranks = if topo == Topology::Serve { 2 } else { 3 };
            let a = random_plan(9, i, topo, ranks, 6);
            let b = random_plan(9, i, topo, ranks, 6);
            assert_eq!(a, b, "pure function of (seed, index, topo, W, steps)");
            seen.insert(classify(&a));
            if topo == Topology::Serve {
                // the serve menu never schedules loss-type faults
                assert_eq!(a.drop_prob, 0.0);
                assert_eq!(a.corrupt_prob, 0.0);
                assert_eq!(a.truncate_prob, 0.0);
                assert!(a.partitions.is_empty());
                assert!(a.crashes.len() <= 1, "at most one replica crash");
                for c in &a.crashes {
                    assert!(c.rank < ranks, "crash rank lands on a replica");
                }
                for s in &a.stragglers {
                    assert!(s.rank < ranks, "straggler rank lands on a replica");
                }
            }
        }
        assert!(seen.contains(&PlanClass::Benign));
        assert!(seen.contains(&PlanClass::CrashOnly));
        assert!(seen.contains(&PlanClass::Lossy));
        // a different sweep seed reshuffles the schedules
        assert_ne!(
            random_plan(9, 5, Topology::Monolithic, 3, 6),
            random_plan(10, 5, Topology::Monolithic, 3, 6)
        );
    }

    #[test]
    fn classification_matches_the_knobs() {
        assert_eq!(classify(&FaultPlan::quiet(1)), PlanClass::Benign);
        assert_eq!(
            classify(&FaultPlan::slow_straggler(1, 0, 2)),
            PlanClass::Benign
        );
        assert_eq!(
            classify(&FaultPlan::crash_one(1, 2, 3)),
            PlanClass::CrashOnly
        );
        assert_eq!(
            classify(&FaultPlan::corrupt_link(1, 0.1, 0.0)),
            PlanClass::Lossy
        );
        assert_eq!(
            classify(&FaultPlan::flaky_network(1, 0.1, 0.0, 0)),
            PlanClass::Lossy
        );
    }

    /// The acceptance demo: against a deliberately broken invariant
    /// ("any plan that crashes rank 1 fails"), the shrinker must strip
    /// a kitchen-sink plan down to exactly that one crash and emit a
    /// replayable JSON repro.
    #[test]
    fn shrinker_reduces_a_kitchen_sink_plan_to_the_minimal_repro() {
        let mut plan = FaultPlan::flaky_network(5, 0.05, 0.04, 2);
        plan.corrupt_prob = 0.03;
        plan.truncate_prob = 0.02;
        plan.stragglers.push(Straggler {
            rank: 0,
            delay_ms: 2,
        });
        plan.crashes.push(Crash {
            rank: 1,
            at_step: 4,
        });
        plan.crashes.push(Crash {
            rank: 2,
            at_step: 5,
        });
        plan.partitions.push(Partition {
            a: 0,
            b: 3,
            from_seq: 2,
            to_seq: 6,
        });

        let mut checks = 0u32;
        let broken_invariant =
            |p: &FaultPlan| p.crashes.iter().any(|c| c.rank == 1 && c.at_step == 4);
        let minimal = shrink(&plan, |p| {
            checks += 1;
            broken_invariant(p)
        });

        let mut expected = FaultPlan::quiet(plan.seed);
        expected.crashes.push(Crash {
            rank: 1,
            at_step: 4,
        });
        assert_eq!(minimal, expected, "1-minimal: only the culprit remains");
        assert!(checks > 0 && checks < 200, "greedy, not exhaustive");

        let repro = Repro {
            schema: "selsync-soak-repro-v1".to_string(),
            sweep_seed: 9,
            schedule: 3,
            topology: "monolithic".to_string(),
            invariant: "classified-recovery".to_string(),
            detail: "demo".to_string(),
            shrunk_plan: minimal.clone(),
            original_plan: plan,
        };
        let json = repro.to_json();
        // the repro replays: the emitted plan parses back to the minimum
        let parsed: Repro = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.shrunk_plan, minimal);
        assert_eq!(parsed.shrunk_plan.crashes.len(), 1);
        assert_eq!(parsed.shrunk_plan.drop_prob, 0.0);
    }

    #[test]
    fn shrinker_returns_an_unshrinkable_plan_unchanged() {
        let plan = FaultPlan::crash_one(3, 0, 2);
        let out = shrink(&plan, |p| !p.crashes.is_empty());
        assert_eq!(out, plan);
        // and a never-failing check shrinks all the way to quiet
        let noisy = FaultPlan::flaky_network(3, 0.1, 0.1, 2);
        let out = shrink(&noisy, |_| true);
        assert_eq!(out, FaultPlan::quiet(3));
    }

    /// A real (tiny) end-to-end run: the fault-free monolithic schedule
    /// is its own baseline and must pass every invariant, twice, with
    /// identical fingerprints (the bit-identity floor the sweep's
    /// benign checks stand on).
    #[test]
    fn fault_free_training_run_is_reproducible_and_clean() {
        let knobs = TrainingKnobs::quick(3);
        let quiet = FaultPlan::quiet(1);
        let a = run_training(Topology::Monolithic, &quiet, &knobs).expect("baseline run");
        let b = run_training(Topology::Monolithic, &quiet, &knobs).expect("baseline rerun");
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "fault-free runs are bit-identical"
        );
        assert!(verify_training(&quiet, &a, b.fingerprint, &knobs).is_none());
        assert_eq!(a.evictions, 0);
        assert_eq!(a.failed, 0);
        assert_eq!(a.full_run, knobs.workers);
    }

    /// The bucketed topology is the monolithic one in a different wire
    /// format: fault-free it must land on the *same* fingerprint, and a
    /// lossy schedule (drops + frame corruption, landing mid-assembly)
    /// must still satisfy every sweep invariant.
    #[test]
    fn bucketed_topology_matches_monolithic_and_survives_loss() {
        let knobs = TrainingKnobs::quick(3);
        let quiet = FaultPlan::quiet(1);
        let bucketed = run_training(Topology::Bucketed, &quiet, &knobs).expect("bucketed baseline");
        let mono = run_training(Topology::Monolithic, &quiet, &knobs).expect("monolithic baseline");
        assert_eq!(
            bucketed.fingerprint, mono.fingerprint,
            "bucketing changes the wire format, not the outcome"
        );
        assert!(verify_training(&quiet, &bucketed, mono.fingerprint, &knobs).is_none());

        let mut lossy = FaultPlan::flaky_network(7, 0.05, 0.0, 0);
        lossy.corrupt_prob = 0.03;
        let run = run_training(Topology::Bucketed, &lossy, &knobs).expect("lossy bucketed run");
        assert!(
            verify_training(&lossy, &run, bucketed.fingerprint, &knobs).is_none(),
            "lossy bucketed run must terminate, conserve, and resolve every worker"
        );
    }
}
