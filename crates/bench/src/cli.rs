//! Argument parsing for the `selsync_run` command-line tool.
//!
//! Dependency-free flag parser: `--key value` pairs mapped onto a
//! [`RunConfig`] + [`ModelKind`]. See `selsync_run --help` for the
//! surface.

use selsync_core::prelude::*;

/// Parsed CLI invocation.
#[derive(Debug, Clone)]
pub struct CliRun {
    /// Which workload to train.
    pub kind: ModelKind,
    /// Full run configuration.
    pub config: RunConfig,
    /// Dataset scale (samples / windows).
    pub data_scale: usize,
    /// Write the final global parameters here after the run.
    pub save_params: Option<String>,
    /// Warm-start every replica from this checkpoint.
    pub load_params: Option<String>,
}

/// Usage text for `--help`.
pub const USAGE: &str = "\
selsync_run — train a workload with a selectable distribution strategy

USAGE:
  selsync_run [--key value]...

KEYS:
  --model        resnet | vgg | alexnet | transformer    (default resnet)
  --strategy     bsp | fedavg | ssp | selsync | local    (default selsync)
  --delta        SelSync threshold δ                     (default 0.3)
  --aggregation  pa | ga                                 (default pa)
  --c            FedAvg participation fraction           (default 1.0)
  --e            FedAvg sync factor E                    (default 0.25)
  --staleness    SSP staleness bound                     (default 40)
  --workers      cluster size                            (default 8)
  --steps        training steps                          (default 400)
  --batch        per-worker batch size                   (default 8)
  --data         dataset scale                           (default 768)
  --eval-every   evaluation period                       (default 40)
  --partition    seldp | defdp                           (default seldp)
  --backend      ps | ring                               (default ps)
  --noniid       labels per worker (enables label skew)
  --alpha        injection α (with --beta, enables injection)
  --beta         injection β
  --compression  topk:<ratio> | sign | powersgd:<rank>
  --seed         RNG seed                                (default 42)
  --grad-clip    global gradient-norm clip
  --overlap-buckets  pipelined push bucket size in f32 values
                     (bsp+ga over ps only; see DESIGN.md §12)
  --wire-compression on | off   ship compressed payloads in compact
                     wire form (requires --compression; default off)
  --save-params  write the final global parameters to this file
  --load-params  warm-start replicas from a saved checkpoint
  --help         print this text
";

/// Parse `args` (without the program name). `Err` carries a message to
/// print (including for `--help`).
pub fn parse_args(args: &[String]) -> Result<CliRun, String> {
    let mut kind = ModelKind::ResNetMini;
    let mut strategy_name = "selsync".to_string();
    let mut delta = 0.3f32;
    let mut aggregation = Aggregation::Parameter;
    let mut c = 1.0f32;
    let mut e = 0.25f32;
    let mut staleness = 40u64;
    let mut cfg_workers = 8usize;
    let mut steps = 400u64;
    let mut batch = 8usize;
    let mut data_scale = 768usize;
    let mut eval_every = 40u64;
    let mut partition = PartitionScheme::SelDp;
    let mut backend = SyncBackend::ParameterServer;
    let mut noniid: Option<usize> = None;
    let mut alpha: Option<f32> = None;
    let mut beta: Option<f32> = None;
    let mut compression: Option<CompressionKind> = None;
    let mut seed = 42u64;
    let mut save_params = None;
    let mut load_params = None;
    let mut grad_clip = None;
    let mut overlap_buckets = None;
    let mut wire_compression = false;

    let mut it = args.iter();
    while let Some(key) = it.next() {
        if key == "--help" {
            return Err(USAGE.to_string());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {key}"))?;
        match key.as_str() {
            "--model" => {
                kind = match value.as_str() {
                    "resnet" => ModelKind::ResNetMini,
                    "vgg" => ModelKind::VggMini,
                    "alexnet" => ModelKind::AlexNetMini,
                    "transformer" => ModelKind::TransformerMini,
                    other => return Err(format!("unknown model '{other}'")),
                }
            }
            "--strategy" => strategy_name = value.clone(),
            "--delta" => delta = num(key, value)?,
            "--aggregation" => {
                aggregation = match value.as_str() {
                    "pa" => Aggregation::Parameter,
                    "ga" => Aggregation::Gradient,
                    other => return Err(format!("unknown aggregation '{other}'")),
                }
            }
            "--c" => c = num(key, value)?,
            "--e" => e = num(key, value)?,
            "--staleness" => staleness = num(key, value)?,
            "--workers" => cfg_workers = num(key, value)?,
            "--steps" => steps = num(key, value)?,
            "--batch" => batch = num(key, value)?,
            "--data" => data_scale = num(key, value)?,
            "--eval-every" => eval_every = num(key, value)?,
            "--partition" => {
                partition = match value.as_str() {
                    "seldp" => PartitionScheme::SelDp,
                    "defdp" => PartitionScheme::DefDp,
                    other => return Err(format!("unknown partition '{other}'")),
                }
            }
            "--backend" => {
                backend = match value.as_str() {
                    "ps" => SyncBackend::ParameterServer,
                    "ring" => SyncBackend::RingAllReduce,
                    other => return Err(format!("unknown backend '{other}'")),
                }
            }
            "--noniid" => noniid = Some(num(key, value)?),
            "--alpha" => alpha = Some(num(key, value)?),
            "--beta" => beta = Some(num(key, value)?),
            "--compression" => compression = Some(parse_compression(value)?),
            "--seed" => seed = num(key, value)?,
            "--grad-clip" => grad_clip = Some(num(key, value)?),
            "--overlap-buckets" => overlap_buckets = Some(num(key, value)?),
            "--wire-compression" => {
                wire_compression = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--wire-compression takes on|off, got '{other}'")),
                }
            }
            "--save-params" => save_params = Some(value.clone()),
            "--load-params" => load_params = Some(value.clone()),
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }

    let strategy = match strategy_name.as_str() {
        "bsp" => Strategy::Bsp { aggregation },
        "fedavg" => Strategy::FedAvg { c, e },
        "ssp" => Strategy::Ssp { staleness },
        "selsync" => Strategy::SelSync { delta, aggregation },
        "local" => Strategy::LocalOnly,
        other => return Err(format!("unknown strategy '{other}'")),
    };
    let injection = match (alpha, beta) {
        (Some(a), Some(b)) => Some(InjectionConfig::new(a, b)),
        (None, None) => None,
        _ => return Err("--alpha and --beta must be given together".into()),
    };

    let (lr, optim) = crate::recipe(kind, steps);
    Ok(CliRun {
        kind,
        data_scale,
        save_params,
        load_params,
        config: RunConfig {
            strategy,
            n_workers: cfg_workers,
            batch_size: batch,
            max_steps: steps,
            eval_every,
            partition,
            noniid_labels: noniid,
            injection,
            lr,
            optim,
            ewma_window: 25,
            ewma_alpha: RunConfig::paper_ewma_alpha(cfg_workers),
            seed,
            straggler: None,
            backend,
            compression,
            grad_clip,
            overlap_buckets,
            wire_compression,
        },
    })
}

fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value '{value}' for {key}"))
}

fn parse_compression(value: &str) -> Result<CompressionKind, String> {
    if value == "sign" {
        return Ok(CompressionKind::SignSgd);
    }
    if let Some(ratio) = value.strip_prefix("topk:") {
        return Ok(CompressionKind::TopK {
            ratio: num("--compression", ratio)?,
        });
    }
    if let Some(rank) = value.strip_prefix("powersgd:") {
        return Ok(CompressionKind::PowerSgd {
            rank: num("--compression", rank)?,
        });
    }
    Err(format!(
        "unknown compression '{value}' (topk:<ratio> | sign | powersgd:<rank>)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CliRun, String> {
        parse_args(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_are_selsync_resnet() {
        let r = parse("").unwrap();
        assert_eq!(r.kind, ModelKind::ResNetMini);
        assert!(matches!(
            r.config.strategy,
            Strategy::SelSync { delta, .. } if (delta - 0.3).abs() < 1e-6
        ));
        assert_eq!(r.config.n_workers, 8);
    }

    #[test]
    fn full_flag_set_parses() {
        let r = parse(
            "--model vgg --strategy fedavg --c 0.5 --e 0.125 --workers 16 \
             --steps 100 --batch 4 --partition defdp --seed 7",
        )
        .unwrap();
        assert_eq!(r.kind, ModelKind::VggMini);
        assert_eq!(r.config.strategy, Strategy::FedAvg { c: 0.5, e: 0.125 });
        assert_eq!(r.config.n_workers, 16);
        assert_eq!(r.config.partition, PartitionScheme::DefDp);
        assert_eq!(r.config.seed, 7);
    }

    #[test]
    fn compression_variants() {
        let t = parse("--strategy bsp --aggregation ga --compression topk:0.01").unwrap();
        assert_eq!(
            t.config.compression,
            Some(CompressionKind::TopK { ratio: 0.01 })
        );
        let s = parse("--strategy bsp --aggregation ga --compression sign").unwrap();
        assert_eq!(s.config.compression, Some(CompressionKind::SignSgd));
        let p = parse("--strategy bsp --aggregation ga --compression powersgd:4").unwrap();
        assert_eq!(
            p.config.compression,
            Some(CompressionKind::PowerSgd { rank: 4 })
        );
    }

    #[test]
    fn injection_requires_both_fractions() {
        assert!(parse("--alpha 0.5").is_err());
        let ok = parse("--noniid 1 --alpha 0.5 --beta 0.5").unwrap();
        assert!(ok.config.injection.is_some());
        assert_eq!(ok.config.noniid_labels, Some(1));
    }

    #[test]
    fn grad_clip_flag_parses() {
        let r = parse("--grad-clip 1.5").unwrap();
        assert_eq!(r.config.grad_clip, Some(1.5));
    }

    #[test]
    fn overlap_and_wire_flags_parse() {
        let r = parse("--strategy bsp --aggregation ga --overlap-buckets 4096").unwrap();
        assert_eq!(r.config.overlap_buckets, Some(4096));
        assert!(!r.config.wire_compression, "off by default");
        let w = parse("--strategy bsp --aggregation ga --compression sign --wire-compression on")
            .unwrap();
        assert!(w.config.wire_compression);
        let off = parse("--wire-compression off").unwrap();
        assert!(!off.config.wire_compression);
        assert!(parse("--wire-compression yes")
            .unwrap_err()
            .contains("on|off"));
    }

    #[test]
    fn checkpoint_flags_parse() {
        let r = parse("--save-params out.bin --load-params in.bin").unwrap();
        assert_eq!(r.save_params.as_deref(), Some("out.bin"));
        assert_eq!(r.load_params.as_deref(), Some("in.bin"));
    }

    #[test]
    fn ring_backend_flag() {
        let r = parse("--backend ring").unwrap();
        assert_eq!(r.config.backend, SyncBackend::RingAllReduce);
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse("--model inception")
            .unwrap_err()
            .contains("unknown model"));
        assert!(parse("--bogus 1").unwrap_err().contains("unknown flag"));
        assert!(parse("--steps abc").unwrap_err().contains("invalid value"));
        assert!(parse("--help").unwrap_err().contains("USAGE"));
    }
}
