//! Criterion micro-benchmarks for the hot substrate kernels backing the
//! Fig. 8 overhead claims: Δ(g) tracking (per EWMA window), partition
//! construction, the 1-bit flags allgather, the ring allreduce, and the
//! tensor kernels everything sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_comm::collectives::{allgather_flags, ring_allreduce};
use selsync_comm::Fabric;
use selsync_data::{partition_indices, PartitionScheme};
use selsync_stats::RelativeGradChange;
use selsync_tensor::{init, matmul};
use std::hint::black_box;
use std::thread;

fn bench_relchange(c: &mut Criterion) {
    // Fig 8a: cost of one Δ(g) update as the window grows
    let mut g = c.benchmark_group("relchange_update");
    for window in [25usize, 50, 100, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            let mut tracker = RelativeGradChange::new(w, 0.16);
            for i in 0..w {
                tracker.update(i as f32 + 1.0);
            }
            b.iter(|| black_box(tracker.update(black_box(3.25))));
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    // Fig 8b: SelDP vs DefDP build cost
    let mut g = c.benchmark_group("partition_build");
    for units in [10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("DefDP", units), &units, |b, &n| {
            b.iter(|| black_box(partition_indices(n, 16, 3, PartitionScheme::DefDp)));
        });
        g.bench_with_input(BenchmarkId::new("SelDP", units), &units, |b, &n| {
            b.iter(|| black_box(partition_indices(n, 16, 3, PartitionScheme::SelDp)));
        });
    }
    g.finish();
}

fn bench_flags_allgather(c: &mut Criterion) {
    // the Alg. 1 line-12 op the paper measured at 2–4 ms on its fabric
    c.bench_function("flags_allgather_4_workers", |b| {
        b.iter(|| {
            let eps = Fabric::new(4);
            let handles: Vec<_> = eps
                .into_iter()
                .map(|mut ep| {
                    thread::spawn(move || {
                        let id = ep.id();
                        allgather_flags(&mut ep, 4, 0, (id % 2) as u8).unwrap()
                    })
                })
                .collect();
            for h in handles {
                black_box(h.join().unwrap());
            }
        });
    });
}

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_allreduce_4_workers");
    g.sample_size(20);
    for len in [10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &l| {
            b.iter(|| {
                let eps = Fabric::new(4);
                let handles: Vec<_> = eps
                    .into_iter()
                    .map(|mut ep| {
                        thread::spawn(move || {
                            let mut v = vec![1.0f32; l];
                            ring_allreduce(&mut ep, 4, 0, &mut v).unwrap();
                            v[0]
                        })
                    })
                    .collect();
                for h in handles {
                    black_box(h.join().unwrap());
                }
            });
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::randn([64, 64], 1.0, &mut rng);
    let b_ = init::randn([64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bch| {
        bch.iter(|| black_box(matmul::matmul(black_box(&a), black_box(&b_))));
    });
    c.bench_function("matmul_nt_64x64", |bch| {
        bch.iter(|| black_box(matmul::matmul_nt(black_box(&a), black_box(&b_))));
    });
}

fn bench_conv_im2col(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::randn([8, 3, 8, 8], 1.0, &mut rng);
    let g = selsync_tensor::conv::ConvGeom {
        in_ch: 3,
        in_h: 8,
        in_w: 8,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    c.bench_function("im2col_8x3x8x8_k3", |b| {
        b.iter(|| black_box(selsync_tensor::conv::im2col(black_box(&x), &g)));
    });
}

criterion_group!(
    benches,
    bench_relchange,
    bench_partition,
    bench_flags_allgather,
    bench_ring_allreduce,
    bench_matmul,
    bench_conv_im2col
);
criterion_main!(benches);
