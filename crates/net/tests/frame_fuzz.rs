//! Seeded mutational frame fuzzer: proof that decode is *total*.
//!
//! Every iteration encodes a frame from one of the 15 `Payload`
//! variants, damages it (bit flips, truncation, extension, hostile
//! length/count overwrites with a restamped CRC, or pure garbage), and
//! feeds it to the decoder. Two properties must hold for every input:
//!
//! 1. **No panic** — arbitrary bytes produce `Ok` or a typed
//!    `FrameError`, nothing else (the test process dying is the
//!    failure signal).
//! 2. **No mis-decode** — any *accepted* frame re-encodes to exactly
//!    the bytes that were decoded, so a damaged frame can never decode
//!    into a plausible-but-wrong message silently.
//!
//! Deterministic: the schedule is a pure function of `FRAME_FUZZ_SEED`
//! (default 0xC0FFEE). `FRAME_FUZZ_ITERS` (default 12288, spread over
//! all variants) scales the run for longer offline sweeps.

use selsync_comm::{Payload, ShardSpec};
use selsync_net::{decode_frame, encode_frame};
use std::sync::Arc;

/// splitmix64: tiny, seedable, and good enough to explore the damage
/// space reproducibly without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn f32(&mut self) -> f32 {
        // raw bit pattern: covers NaN, infinities, subnormals
        f32::from_bits(self.next() as u32)
    }

    fn f32_vec(&mut self, max: usize) -> Vec<f32> {
        let n = self.below(max + 1);
        (0..n).map(|_| self.f32()).collect()
    }

    fn usize_vec(&mut self, max: usize) -> Vec<usize> {
        let n = self.below(max + 1);
        (0..n).map(|_| self.below(1 << 20)).collect()
    }
}

/// One of the 15 payload variants, sized small so tens of thousands of
/// iterations stay fast.
fn gen_payload(rng: &mut Rng, variant: usize) -> Payload {
    match variant {
        0 => Payload::Params(rng.f32_vec(24)),
        1 => Payload::SharedParams(Arc::new(rng.f32_vec(24))),
        2 => Payload::Grads(rng.f32_vec(24)),
        3 => Payload::Flags((0..rng.below(17)).map(|_| rng.next() as u8).collect()),
        4 => Payload::Samples {
            data: rng.f32_vec(16),
            targets: rng.usize_vec(8),
            dims: rng.usize_vec(4),
        },
        5 => Payload::Control(rng.next()),
        6 => Payload::Predict {
            data: rng.f32_vec(16),
            dims: rng.usize_vec(4),
        },
        7 => Payload::Logits {
            rows: rng.f32_vec(16),
            classes: rng.below(1000),
        },
        8 => Payload::ShardMap(ShardSpec {
            version: rng.next(),
            total: rng.next(),
            starts: (0..rng.below(9)).map(|_| rng.next()).collect(),
        }),
        9 => Payload::ShardPush(rng.f32_vec(24)),
        10 => Payload::ShardPull(rng.f32_vec(24)),
        11 => Payload::Bucket {
            bucket: rng.next() as u32,
            n_buckets: rng.next() as u32,
            values: rng.f32_vec(16),
        },
        12 => Payload::SparseGrad {
            len: rng.next() as u32,
            indices: (0..rng.below(9)).map(|_| rng.next() as u32).collect(),
            values: rng.f32_vec(8),
        },
        13 => Payload::SignGrad {
            len: rng.next() as u32,
            scale: rng.f32(),
            bits: (0..rng.below(9)).map(|_| rng.next() as u8).collect(),
        },
        _ => Payload::LowRank {
            rows: rng.next() as u32,
            cols: rng.next() as u32,
            rank: rng.next() as u32,
            p: rng.f32_vec(12),
            q: rng.f32_vec(12),
        },
    }
}

/// Recompute the CRC trailer after a mutation, so mutations exercise
/// the decode paths *behind* the checksum, not just the checksum.
fn restamp(frame: &mut [u8]) {
    let end = frame.len() - 4;
    let crc = selsync_net::crc32(&frame[4..end]);
    frame[end..].copy_from_slice(&crc.to_be_bytes());
}

/// Apply one seeded damage strategy; returns the mutated bytes.
fn mutate(rng: &mut Rng, frame: &[u8], strategy: usize) -> Vec<u8> {
    let mut out = frame.to_vec();
    match strategy {
        // pristine: must decode and re-encode identically
        0 => {}
        // 1..=8 random bit flips anywhere
        1 => {
            for _ in 0..1 + rng.below(8) {
                let pos = rng.below(out.len());
                out[pos] ^= 1 << rng.below(8);
            }
        }
        // truncate at a random boundary (including empty)
        2 => out.truncate(rng.below(out.len() + 1)),
        // extend with random garbage
        3 => {
            for _ in 0..1 + rng.below(16) {
                out.push(rng.next() as u8);
            }
        }
        // overwrite one aligned u32 with an extreme value and restamp
        // the CRC: drives hostile lengths/counts past the checksum
        4 => {
            let vals = [u32::MAX, u32::MAX - 1, 1 << 31, 0x7FFF_FFFF, 0];
            let pos = rng
                .below(out.len().saturating_sub(8) + 1)
                .min(out.len() - 4);
            out[pos..pos + 4].copy_from_slice(&vals[rng.below(vals.len())].to_be_bytes());
            if out.len() >= 21 {
                restamp(&mut out);
            }
        }
        // rewrite the kind byte (valid or invalid) and restamp
        5 => {
            if out.len() > 16 {
                out[16] = rng.next() as u8 % 16;
                restamp(&mut out);
            }
        }
        // pure garbage of arbitrary length, no structure at all
        _ => {
            let n = rng.below(96);
            out = (0..n).map(|_| rng.next() as u8).collect();
        }
    }
    out
}

#[test]
fn mutated_frames_never_panic_or_misdecode() {
    let seed = std::env::var("FRAME_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE_u64);
    let iters: usize = std::env::var("FRAME_FUZZ_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_288);
    let mut rng = Rng(seed);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let variant = i % 15;
        let payload = gen_payload(&mut rng, variant);
        let from = rng.below(1 << 16);
        let tag = rng.next();
        let frame = encode_frame(from, tag, &payload);
        let strategy = rng.below(7);
        let bad = mutate(&mut rng, &frame, strategy);
        match decode_frame(&bad) {
            Ok(msg) => {
                accepted += 1;
                // an accepted frame must re-encode to exactly the bytes
                // decoded — acceptance of damaged bytes that still
                // parse (e.g. a value flip with a restamped CRC) is
                // fine only because nothing was *mis*-read
                let re = encode_frame(msg.from, msg.tag, &msg.payload);
                assert_eq!(
                    re.as_ref(),
                    bad.as_slice(),
                    "iter {i}: accepted frame re-encoded differently \
                     (variant {variant}, strategy {strategy}, seed {seed})"
                );
            }
            Err(_) => rejected += 1,
        }
    }
    // sanity on the schedule itself: both outcomes must actually occur
    // (pristine frames decode; garbage is rejected)
    assert!(accepted > 0, "schedule produced no accepted frames");
    assert!(rejected > 0, "schedule produced no rejected frames");
}
