//! Torn-frame sweep against the real TCP reader: a raw connection
//! delivers an encoded frame truncated at every possible byte
//! boundary, and each cut must surface as a typed link fault carrying
//! the peer address and stream byte offset — never a panic, never a
//! silent generic disconnect. Plus: CRC damage and hostile length
//! prefixes on the wire are typed and tallied the same way.

use selsync_comm::{Payload, Transport, TransportError};
use selsync_net::{encode_frame, encode_handshake, TcpEndpoint, TcpFabricConfig, HANDSHAKE_BYTES};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// A two-rank loopback fabric; rank 0 is the observation point.
fn fabric2(max_frame_bytes: usize) -> (TcpEndpoint, TcpEndpoint) {
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let mut handles = Vec::new();
    for (rank, listener) in listeners.into_iter().enumerate() {
        let mut config = TcpFabricConfig::new(rank, peers.clone());
        config.recv_timeout = Duration::from_secs(20);
        config.max_frame_bytes = max_frame_bytes;
        handles.push(thread::spawn(move || {
            TcpEndpoint::connect_with_listener(config, listener).unwrap()
        }));
    }
    let b = handles.pop().unwrap().join().unwrap();
    let a = handles.pop().unwrap().join().unwrap();
    (a, b)
}

/// Open a raw connection into `ep`'s listener and complete the
/// protocol preamble, returning a stream ready for frame bytes.
fn raw_dial(ep: &TcpEndpoint) -> TcpStream {
    let mut s = TcpStream::connect(ep.local_addr()).unwrap();
    s.write_all(&encode_handshake()).unwrap();
    let mut echo = [0u8; HANDSHAKE_BYTES];
    s.read_exact(&mut echo).unwrap();
    s
}

/// Poll until rank 0 has collected `want` link faults (reader threads
/// report asynchronously).
fn wait_for_faults(ep: &mut TcpEndpoint, want: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let have = ep.link_faults().len();
        if have >= want || Instant::now() >= deadline {
            return have;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn every_truncation_boundary_is_a_typed_fault() {
    let (mut a, b) = fabric2(1 << 30);
    let frame = encode_frame(1, 42, &Payload::Params(vec![1.0, -2.0, 3.5])).to_vec();

    // cut the frame at every boundary short of complete: 1..4 tears the
    // length prefix itself, 4.. tears the body
    let cuts: Vec<usize> = (1..frame.len()).collect();
    for &cut in &cuts {
        let mut s = raw_dial(&a);
        s.write_all(&frame[..cut]).unwrap();
        drop(s); // FIN mid-frame
    }

    let got = wait_for_faults(&mut a, cuts.len());
    assert_eq!(got, cuts.len(), "one typed fault per torn connection");
    for f in a.link_faults() {
        match &f.error {
            TransportError::Protocol(detail) => {
                assert!(
                    detail.contains("torn frame") && detail.contains("byte offset"),
                    "fault lacks torn-frame context: {detail}"
                );
                assert!(detail.contains(&f.peer.to_string()), "fault names its peer");
            }
            other => panic!("torn frame surfaced as {other:?}, not Protocol"),
        }
        // every fault's offset lands inside the attempted first frame
        // (positions count from after the 8-byte handshake)
        assert!(
            (f.offset as usize) < HANDSHAKE_BYTES + frame.len(),
            "offset {} outside the torn frame",
            f.offset
        );
    }
    // torn frames are damage, tallied as corrupt — one per connection
    assert_eq!(a.stats().corrupt_messages(), cuts.len() as u64);

    // the un-torn control case: the complete frame still delivers
    let mut s = raw_dial(&a);
    s.write_all(&frame).unwrap();
    let m = a
        .recv_deadline(Some(1), Some(42), Duration::from_secs(10))
        .expect("pristine frame after the sweep");
    assert_eq!(m.payload, Payload::Params(vec![1.0, -2.0, 3.5]));
    drop(s);
    a.close();
    b.close();
}

#[test]
fn crc_damage_on_the_wire_is_typed_and_tallied() {
    let (mut a, b) = fabric2(1 << 30);
    let mut frame = encode_frame(1, 7, &Payload::Params(vec![4.0, 5.0])).to_vec();
    frame[20] ^= 0x40; // flip one covered bit; CRC must catch it

    let mut s = raw_dial(&a);
    s.write_all(&frame).unwrap();
    let got = wait_for_faults(&mut a, 1);
    assert_eq!(got, 1);
    let f = &a.link_faults()[0];
    match &f.error {
        TransportError::Protocol(detail) => {
            assert!(
                detail.contains("CRC"),
                "fault should name the CRC: {detail}"
            );
        }
        other => panic!("CRC damage surfaced as {other:?}"),
    }
    assert_eq!(f.offset, HANDSHAKE_BYTES as u64, "fault at the first frame");
    assert_eq!(a.stats().corrupt_messages(), 1);
    assert_eq!(a.stats().corrupt_bytes(), frame.len() as u64);
    drop(s);
    a.close();
    b.close();
}

#[test]
fn hostile_length_prefix_respects_the_configured_cap() {
    // a deliberately tiny cap: a frame claiming 2 KiB must be rejected
    // before any allocation, even though the default cap would take it
    let (mut a, b) = fabric2(1024);
    let mut s = raw_dial(&a);
    s.write_all(&2048u32.to_be_bytes()).unwrap();
    let got = wait_for_faults(&mut a, 1);
    assert_eq!(got, 1);
    match &a.link_faults()[0].error {
        TransportError::Protocol(detail) => {
            assert!(
                detail.contains("hostile frame length") && detail.contains("1024"),
                "fault should name the cap: {detail}"
            );
        }
        other => panic!("hostile length surfaced as {other:?}"),
    }
    drop(s);
    a.close();
    b.close();
}
