//! Property test: every `Payload` variant survives an encode→decode
//! round trip bit-exactly, and the real frame length always equals the
//! analytic `Payload::wire_bytes` used by `CommStats`.

use proptest::prelude::*;
use selsync_comm::{Payload, ShardSpec};
use selsync_net::{decode_frame, encode_frame};

/// Bit patterns `PartialEq` would mishandle (NaN) or conflate (-0.0);
/// spliced into generated vectors so the bit-exactness claim covers
/// the whole f32 value space, not just finite range samples.
const SPECIAL_F32: [f32; 5] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    -0.0,
    f32::MIN_POSITIVE,
];

fn splice_specials(mut v: Vec<f32>, salt: u64) -> Vec<f32> {
    // deterministic insertion spots derived from the generated data
    for (i, s) in SPECIAL_F32.iter().enumerate() {
        let pos = (salt as usize + i * 7) % (v.len() + 1);
        v.insert(pos, *s);
    }
    v
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn roundtrip(from: usize, tag: u64, payload: &Payload) -> Payload {
    let frame = encode_frame(from, tag, payload);
    assert_eq!(
        frame.len() as u64,
        payload.wire_bytes(),
        "frame length must equal Payload::wire_bytes"
    );
    let msg = decode_frame(&frame).expect("well-formed frame must decode");
    assert_eq!(msg.from, from);
    assert_eq!(msg.tag, tag);
    msg.payload
}

proptest! {
    #[test]
    fn params_roundtrip_bit_exact(
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        match roundtrip(from, tag, &Payload::Params(v.clone())) {
            Payload::Params(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn grads_roundtrip_bit_exact(
        v in prop::collection::vec(-1e-3f32..1e-3, 0..256usize),
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        match roundtrip(1, tag, &Payload::Grads(v.clone())) {
            Payload::Grads(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn flags_roundtrip(
        v in prop::collection::vec(0u8..=255, 0..512usize),
        from in 0usize..64,
        tag in 0u64..u64::MAX,
    ) {
        let out = roundtrip(from, tag, &Payload::Flags(v.clone()));
        prop_assert_eq!(out, Payload::Flags(v));
    }

    #[test]
    fn samples_roundtrip_bit_exact(
        data in prop::collection::vec(-10.0f32..10.0, 0..128usize),
        targets in prop::collection::vec(0usize..1_000_000, 0..32usize),
        dims in prop::collection::vec(1usize..4096, 0..8usize),
        tag in 0u64..u64::MAX,
    ) {
        let data = splice_specials(data, tag);
        let payload = Payload::Samples {
            data: data.clone(),
            targets: targets.clone(),
            dims: dims.clone(),
        };
        match roundtrip(3, tag, &payload) {
            Payload::Samples { data: d, targets: t, dims: m } => {
                prop_assert_eq!(bits(&d), bits(&data));
                prop_assert_eq!(t, targets);
                prop_assert_eq!(m, dims);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn control_roundtrip(code in 0u64..u64::MAX, from in 0usize..1024, tag in 0u64..u64::MAX) {
        let out = roundtrip(from, tag, &Payload::Control(code));
        prop_assert_eq!(out, Payload::Control(code));
    }

    #[test]
    fn predict_roundtrip_bit_exact(
        data in prop::collection::vec(-100.0f32..100.0, 0..128usize),
        dims in prop::collection::vec(1usize..4096, 0..8usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        let data = splice_specials(data, tag);
        let payload = Payload::Predict {
            data: data.clone(),
            dims: dims.clone(),
        };
        match roundtrip(from, tag, &payload) {
            Payload::Predict { data: d, dims: m } => {
                prop_assert_eq!(bits(&d), bits(&data));
                prop_assert_eq!(m, dims);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn shard_map_roundtrip(
        version in 0u64..u64::MAX,
        total in 0u64..u64::MAX,
        starts in prop::collection::vec(0u64..u64::MAX, 0..64usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        // the codec carries any spec verbatim; validity is the shard
        // subsystem's concern, not the wire's
        let spec = ShardSpec { version, total, starts };
        let out = roundtrip(from, tag, &Payload::ShardMap(spec.clone()));
        prop_assert_eq!(out, Payload::ShardMap(spec));
    }

    #[test]
    fn shard_push_roundtrip_bit_exact(
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        // the sub-frame body is Params-shaped by design: the fan-out's
        // byte accounting depends on this equality
        prop_assert_eq!(
            Payload::ShardPush(v.clone()).wire_bytes(),
            Payload::Params(v.clone()).wire_bytes()
        );
        match roundtrip(from, tag, &Payload::ShardPush(v.clone())) {
            Payload::ShardPush(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn shard_pull_roundtrip_bit_exact(
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        prop_assert_eq!(
            Payload::ShardPull(v.clone()).wire_bytes(),
            Payload::Params(v.clone()).wire_bytes()
        );
        match roundtrip(0, tag, &Payload::ShardPull(v.clone())) {
            Payload::ShardPull(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn logits_roundtrip_bit_exact(
        rows in prop::collection::vec(-1e6f32..1e6, 0..256usize),
        classes in 1usize..100_000,
        tag in 0u64..u64::MAX,
    ) {
        let rows = splice_specials(rows, tag);
        let payload = Payload::Logits {
            rows: rows.clone(),
            classes,
        };
        match roundtrip(2, tag, &payload) {
            Payload::Logits { rows: r, classes: c } => {
                prop_assert_eq!(bits(&r), bits(&rows));
                prop_assert_eq!(c, classes);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }
}
