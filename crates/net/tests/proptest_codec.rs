//! Property test: every `Payload` variant survives an encode→decode
//! round trip bit-exactly, the real frame length always equals the
//! analytic `Payload::wire_bytes` used by `CommStats`, the CRC trailer
//! catches arbitrary single-byte damage, and the connection handshake
//! accepts exactly its own protocol version.

use proptest::prelude::*;
use selsync_comm::{Payload, ShardSpec};
use selsync_net::{
    crc32, decode_frame, decode_handshake, encode_frame, encode_handshake, FrameError, CRC_BYTES,
    HANDSHAKE_BYTES, PROTOCOL_VERSION,
};

/// Bit patterns `PartialEq` would mishandle (NaN) or conflate (-0.0);
/// spliced into generated vectors so the bit-exactness claim covers
/// the whole f32 value space, not just finite range samples.
const SPECIAL_F32: [f32; 5] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    -0.0,
    f32::MIN_POSITIVE,
];

fn splice_specials(mut v: Vec<f32>, salt: u64) -> Vec<f32> {
    // deterministic insertion spots derived from the generated data
    for (i, s) in SPECIAL_F32.iter().enumerate() {
        let pos = (salt as usize + i * 7) % (v.len() + 1);
        v.insert(pos, *s);
    }
    v
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn roundtrip(from: usize, tag: u64, payload: &Payload) -> Payload {
    let frame = encode_frame(from, tag, payload);
    assert_eq!(
        frame.len() as u64,
        payload.wire_bytes(),
        "frame length must equal Payload::wire_bytes"
    );
    let msg = decode_frame(&frame).expect("well-formed frame must decode");
    assert_eq!(msg.from, from);
    assert_eq!(msg.tag, tag);
    msg.payload
}

proptest! {
    #[test]
    fn params_roundtrip_bit_exact(
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        match roundtrip(from, tag, &Payload::Params(v.clone())) {
            Payload::Params(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn grads_roundtrip_bit_exact(
        v in prop::collection::vec(-1e-3f32..1e-3, 0..256usize),
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        match roundtrip(1, tag, &Payload::Grads(v.clone())) {
            Payload::Grads(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn flags_roundtrip(
        v in prop::collection::vec(0u8..=255, 0..512usize),
        from in 0usize..64,
        tag in 0u64..u64::MAX,
    ) {
        let out = roundtrip(from, tag, &Payload::Flags(v.clone()));
        prop_assert_eq!(out, Payload::Flags(v));
    }

    #[test]
    fn samples_roundtrip_bit_exact(
        data in prop::collection::vec(-10.0f32..10.0, 0..128usize),
        targets in prop::collection::vec(0usize..1_000_000, 0..32usize),
        dims in prop::collection::vec(1usize..4096, 0..8usize),
        tag in 0u64..u64::MAX,
    ) {
        let data = splice_specials(data, tag);
        let payload = Payload::Samples {
            data: data.clone(),
            targets: targets.clone(),
            dims: dims.clone(),
        };
        match roundtrip(3, tag, &payload) {
            Payload::Samples { data: d, targets: t, dims: m } => {
                prop_assert_eq!(bits(&d), bits(&data));
                prop_assert_eq!(t, targets);
                prop_assert_eq!(m, dims);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn control_roundtrip(code in 0u64..u64::MAX, from in 0usize..1024, tag in 0u64..u64::MAX) {
        let out = roundtrip(from, tag, &Payload::Control(code));
        prop_assert_eq!(out, Payload::Control(code));
    }

    #[test]
    fn predict_roundtrip_bit_exact(
        data in prop::collection::vec(-100.0f32..100.0, 0..128usize),
        dims in prop::collection::vec(1usize..4096, 0..8usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        let data = splice_specials(data, tag);
        let payload = Payload::Predict {
            data: data.clone(),
            dims: dims.clone(),
        };
        match roundtrip(from, tag, &payload) {
            Payload::Predict { data: d, dims: m } => {
                prop_assert_eq!(bits(&d), bits(&data));
                prop_assert_eq!(m, dims);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn shard_map_roundtrip(
        version in 0u64..u64::MAX,
        total in 0u64..u64::MAX,
        starts in prop::collection::vec(0u64..u64::MAX, 0..64usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        // the codec carries any spec verbatim; validity is the shard
        // subsystem's concern, not the wire's
        let spec = ShardSpec { version, total, starts };
        let out = roundtrip(from, tag, &Payload::ShardMap(spec.clone()));
        prop_assert_eq!(out, Payload::ShardMap(spec));
    }

    #[test]
    fn shard_push_roundtrip_bit_exact(
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        // the sub-frame body is Params-shaped by design: the fan-out's
        // byte accounting depends on this equality
        prop_assert_eq!(
            Payload::ShardPush(v.clone()).wire_bytes(),
            Payload::Params(v.clone()).wire_bytes()
        );
        match roundtrip(from, tag, &Payload::ShardPush(v.clone())) {
            Payload::ShardPush(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn shard_pull_roundtrip_bit_exact(
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        tag in 0u64..u64::MAX,
    ) {
        let v = splice_specials(v, tag);
        prop_assert_eq!(
            Payload::ShardPull(v.clone()).wire_bytes(),
            Payload::Params(v.clone()).wire_bytes()
        );
        match roundtrip(0, tag, &Payload::ShardPull(v.clone())) {
            Payload::ShardPull(out) => prop_assert_eq!(bits(&out), bits(&v)),
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    /// Every encoded frame closes with a CRC-32 trailer over the bytes
    /// after the length prefix, and XOR-ing any nonzero pattern into
    /// any covered byte is rejected as `FrameError::Crc`.
    #[test]
    fn crc_trailer_covers_every_byte(
        v in prop::collection::vec(-1e30f32..1e30, 0..64usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
        pos_seed in 0usize..usize::MAX,
        pattern_seed in 0u8..255,
    ) {
        let pattern = pattern_seed.wrapping_add(1); // any nonzero XOR mask
        let frame = encode_frame(from, tag, &Payload::Params(v)).to_vec();
        let covered_end = frame.len() - CRC_BYTES;
        let stamped =
            u32::from_be_bytes(frame[covered_end..].try_into().expect("4-byte trailer"));
        prop_assert_eq!(stamped, crc32(&frame[4..covered_end]));

        let pos = 4 + pos_seed % (covered_end - 4);
        let mut bad = frame.clone();
        bad[pos] ^= pattern;
        match decode_frame(&bad) {
            Err(FrameError::Crc { expected, computed }) => {
                prop_assert_eq!(expected, stamped);
                prop_assert_ne!(computed, stamped);
            }
            other => prop_assert!(false, "damage at {} gave {:?}", pos, other),
        }
    }

    /// The 8-byte preamble round-trips, accepts exactly our version,
    /// and rejects every other version as a typed mismatch.
    #[test]
    fn handshake_roundtrip_and_version_gate(
        version in 0u16..u16::MAX,
        features in 0u16..u16::MAX,
    ) {
        let own = encode_handshake();
        let hs = decode_handshake(&own).expect("own preamble must decode");
        prop_assert_eq!(hs.version, PROTOCOL_VERSION);

        let mut doctored = [0u8; HANDSHAKE_BYTES];
        doctored[..4].copy_from_slice(&own[..4]);
        doctored[4..6].copy_from_slice(&version.to_be_bytes());
        doctored[6..8].copy_from_slice(&features.to_be_bytes());
        match decode_handshake(&doctored) {
            Ok(hs) => {
                prop_assert_eq!(version, PROTOCOL_VERSION);
                prop_assert_eq!(hs.features, features);
            }
            Err(FrameError::VersionMismatch { ours, theirs }) => {
                prop_assert_eq!(ours, PROTOCOL_VERSION);
                prop_assert_eq!(theirs, version);
                prop_assert_ne!(version, PROTOCOL_VERSION);
            }
            Err(other) => prop_assert!(false, "unexpected handshake error {:?}", other),
        }
    }

    #[test]
    fn bucket_roundtrip_bit_exact(
        bucket in 0u32..u32::MAX,
        n_buckets in 0u32..u32::MAX,
        v in prop::collection::vec(-1e30f32..1e30, 0..256usize),
        from in 0usize..256,
        tag in 0u64..u64::MAX,
    ) {
        // the codec carries any (bucket, n_buckets) pair verbatim;
        // cross-field sanity is the BucketAssembler's concern
        let v = splice_specials(v, tag);
        let payload = Payload::Bucket { bucket, n_buckets, values: v.clone() };
        match roundtrip(from, tag, &payload) {
            Payload::Bucket { bucket: b, n_buckets: n, values: out } => {
                prop_assert_eq!(b, bucket);
                prop_assert_eq!(n, n_buckets);
                prop_assert_eq!(bits(&out), bits(&v));
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn sparse_grad_roundtrip_bit_exact(
        len in 0u32..u32::MAX,
        indices in prop::collection::vec(0u32..u32::MAX, 0..128usize),
        values in prop::collection::vec(-1e30f32..1e30, 0..128usize),
        tag in 0u64..u64::MAX,
    ) {
        // index/value sections travel independently; length agreement
        // is validated where the gradient is densified, not on the wire
        let values = splice_specials(values, tag);
        let payload = Payload::SparseGrad {
            len,
            indices: indices.clone(),
            values: values.clone(),
        };
        match roundtrip(1, tag, &payload) {
            Payload::SparseGrad { len: l, indices: i, values: v } => {
                prop_assert_eq!(l, len);
                prop_assert_eq!(i, indices);
                prop_assert_eq!(bits(&v), bits(&values));
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn sign_grad_roundtrip_bit_exact(
        len in 0u32..u32::MAX,
        scale_bits in 0u32..u32::MAX,
        bits_vec in prop::collection::vec(0u8..=255, 0..128usize),
        tag in 0u64..u64::MAX,
    ) {
        // scale is generated as a raw bit pattern so NaN/inf scales
        // round-trip bit-exactly too
        let scale = f32::from_bits(scale_bits);
        let payload = Payload::SignGrad { len, scale, bits: bits_vec.clone() };
        match roundtrip(2, tag, &payload) {
            Payload::SignGrad { len: l, scale: s, bits: b } => {
                prop_assert_eq!(l, len);
                prop_assert_eq!(s.to_bits(), scale.to_bits());
                prop_assert_eq!(b, bits_vec);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn low_rank_roundtrip_bit_exact(
        rows in 0u32..u32::MAX,
        cols in 0u32..u32::MAX,
        rank in 0u32..u32::MAX,
        p in prop::collection::vec(-1e30f32..1e30, 0..128usize),
        q in prop::collection::vec(-1e30f32..1e30, 0..128usize),
        tag in 0u64..u64::MAX,
    ) {
        let p = splice_specials(p, tag);
        let q = splice_specials(q, tag.rotate_left(17));
        let payload = Payload::LowRank {
            rows,
            cols,
            rank,
            p: p.clone(),
            q: q.clone(),
        };
        match roundtrip(3, tag, &payload) {
            Payload::LowRank { rows: r, cols: c, rank: k, p: po, q: qo } => {
                prop_assert_eq!(r, rows);
                prop_assert_eq!(c, cols);
                prop_assert_eq!(k, rank);
                prop_assert_eq!(bits(&po), bits(&p));
                prop_assert_eq!(bits(&qo), bits(&q));
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }

    #[test]
    fn logits_roundtrip_bit_exact(
        rows in prop::collection::vec(-1e6f32..1e6, 0..256usize),
        classes in 1usize..100_000,
        tag in 0u64..u64::MAX,
    ) {
        let rows = splice_specials(rows, tag);
        let payload = Payload::Logits {
            rows: rows.clone(),
            classes,
        };
        match roundtrip(2, tag, &payload) {
            Payload::Logits { rows: r, classes: c } => {
                prop_assert_eq!(bits(&r), bits(&rows));
                prop_assert_eq!(c, classes);
            }
            other => prop_assert!(false, "wrong variant decoded: {:?}", other),
        }
    }
}
