//! Blocking TCP fabric: a fully-connected mesh of processes (or
//! threads) speaking the [`codec`](crate::codec) wire format.
//!
//! Topology: rank `i` listens on `peers[i]` and dials one outbound
//! connection to every other rank, so each ordered pair owns a
//! unidirectional frame stream. Every new connection opens with the
//! 8-byte protocol preamble ([`crate::codec::encode_handshake`]):
//! each side sends its own and validates the peer's, so a mixed-version
//! fleet (or a stranger speaking another protocol entirely) fails fast
//! instead of mis-parsing frames. Per-peer writer threads drain an
//! unbounded frame queue (keeping [`Transport::send`] non-blocking,
//! like the channel fabric), and per-connection reader threads decode
//! frames into one shared inbox feeding the same tagged-receive
//! semantics as the in-process endpoint.
//!
//! Byte-level damage on an inbound connection — a torn frame, a CRC
//! mismatch, a hostile length prefix — is surfaced as a typed
//! [`LinkFault`] (peer address + stream byte offset + a
//! [`TransportError::Protocol`] error) and tallied in
//! [`CommStats::corrupt_messages`], then the connection is torn down:
//! a stream that has lost framing cannot be resynchronized, so the
//! peer's writer redials and the protocol retry layers absorb the
//! loss. Blocking receives never return these faults as errors — a
//! damaged frame behaves like a lost one (`RecvTimeout` + resend), so
//! clean-link behavior is unchanged.

use crate::codec::{
    decode_after_len, decode_handshake, encode_frame, encode_handshake, HANDSHAKE_BYTES,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use selsync_comm::{CommStats, Msg, Payload, Transport, TransportError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default ceiling on a single frame's declared size; a corrupted
/// length prefix fails fast instead of attempting a huge allocation.
/// Configurable per fabric via [`TcpFabricConfig::max_frame_bytes`].
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 30;

/// How often blocked reader/acceptor threads wake to check shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Configuration for one rank of a TCP fabric.
#[derive(Debug, Clone)]
pub struct TcpFabricConfig {
    /// This process's rank (index into `peers`).
    pub rank: usize,
    /// `host:port` of every rank, in rank order. `peers.len()` is the
    /// fabric size.
    pub peers: Vec<String>,
    /// Total budget for dialing each peer (retry with backoff inside).
    pub connect_timeout: Duration,
    /// Socket write timeout per frame.
    pub write_timeout: Duration,
    /// Watchdog for blocking receives: a `recv_*` that sees no matching
    /// message for this long returns [`TransportError::RecvTimeout`]
    /// (deadlock/peer-death detector).
    pub recv_timeout: Duration,
    /// Budget for re-establishing a *broken* established link (peer
    /// crashed and restarted, transient network fault). Writer threads
    /// redial with capped exponential backoff for this long before the
    /// peer is declared unreachable; failover protocols need this to
    /// survive a parameter-server restart without tearing the fabric
    /// down.
    pub reconnect_timeout: Duration,
    /// Ceiling on a single inbound frame's declared size. A length
    /// prefix above this — hostile or corrupt — is rejected as a
    /// [`LinkFault`] before any allocation is attempted.
    pub max_frame_bytes: usize,
}

impl TcpFabricConfig {
    /// Config with production-lenient timeouts.
    pub fn new(rank: usize, peers: Vec<String>) -> Self {
        TcpFabricConfig {
            rank,
            peers,
            connect_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            recv_timeout: Duration::from_secs(300),
            reconnect_timeout: Duration::from_secs(15),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// A byte-level fault a reader thread detected on one inbound
/// connection: a frame torn mid-read, a CRC mismatch, a hostile length
/// prefix, or a rejected handshake. Distinguishes in-flight damage
/// from a peer crash (which shows up as a clean EOF or
/// `PeerUnreachable` instead) in soak and chaos logs.
#[derive(Debug, Clone)]
pub struct LinkFault {
    /// Remote address of the damaged connection.
    pub peer: SocketAddr,
    /// Bytes successfully consumed from this connection's stream
    /// before the fault (handshake included) — where in the stream the
    /// damage was detected.
    pub offset: u64,
    /// The typed error, always [`TransportError::Protocol`].
    pub error: TransportError,
}

pub(crate) fn link_fault(peer: SocketAddr, offset: u64, detail: &str) -> LinkFault {
    LinkFault {
        peer,
        offset,
        error: TransportError::Protocol(format!(
            "{detail} (peer {peer}, stream byte offset {offset})"
        )),
    }
}

/// What reader threads feed the shared inbox: decoded messages, plus
/// typed fault reports the endpoint collects off to the side.
pub(crate) enum InboxEvent {
    Msg(Msg),
    Fault(LinkFault),
}

/// Bind a listener with `SO_REUSEADDR`, so a restarted rank can
/// reclaim its advertised port while the previous process's accepted
/// connections still sit in `TIME_WAIT` / `FIN_WAIT` (a parameter
/// server respawned with `--resume` rebinds the same address seconds
/// after the old one was killed). `std::net::TcpListener::bind` offers
/// no hook between `socket()` and `bind()`, so on Linux the socket is
/// assembled through the already-linked C library directly; elsewhere
/// — and for anything but a literal IPv4 address — it falls back to
/// the plain std bind, which costs only restart latency, never
/// correctness.
pub(crate) fn bind_reuse(addr: &str) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    if let Ok(SocketAddr::V4(v4)) = addr.parse::<SocketAddr>() {
        return bind_reuse_v4(&v4);
    }
    TcpListener::bind(addr)
}

#[cfg(target_os = "linux")]
fn bind_reuse_v4(addr: &std::net::SocketAddrV4) -> io::Result<TcpListener> {
    use std::ffi::{c_int, c_void};
    use std::os::fd::{FromRawFd, RawFd};

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;

    /// `struct sockaddr_in`; `sin_port` and `sin_addr` in network order.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    // SAFETY: plain libc socket calls on a fd this function owns until
    // it is handed to `TcpListener`; on any failure the fd is closed
    // before returning the OS error.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: c_int| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: c_int = 1;
        if setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&raw const one).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        ) != 0
        {
            return Err(fail(fd));
        }
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from_ne_bytes(addr.ip().octets()),
            sin_zero: [0; 8],
        };
        if bind(
            fd,
            (&raw const sa).cast::<c_void>(),
            std::mem::size_of::<SockaddrIn>() as u32,
        ) != 0
        {
            return Err(fail(fd));
        }
        if listen(fd, 128) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd as RawFd))
    }
}

/// One rank's handle on the TCP fabric. Implements [`Transport`], so
/// the PS, collectives and trainer run over it unchanged.
pub struct TcpEndpoint {
    id: usize,
    n: usize,
    /// Frame queues to each peer's writer thread; `None` at `id`
    /// (self-sends loop back through `inbox_tx`).
    outbound: Vec<Option<Sender<Bytes>>>,
    inbox_tx: Sender<InboxEvent>,
    inbox: Receiver<InboxEvent>,
    pending: VecDeque<Msg>,
    /// Byte-level faults reader threads have reported, in arrival order.
    faults: Vec<LinkFault>,
    stats: Arc<CommStats>,
    recv_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl TcpEndpoint {
    /// Bind `peers[rank]`, accept inbound connections from every other
    /// rank, and dial every peer (with retry/backoff, so ranks may
    /// start in any order). Returns once all outbound connections are
    /// established.
    ///
    /// The bind itself also retries within `connect_timeout`: the
    /// assigned port may be transiently occupied — typically as the
    /// ephemeral *source* port of someone else's outbound connection —
    /// and giving up immediately would strand the whole fabric waiting
    /// on this rank.
    pub fn connect(config: TcpFabricConfig) -> io::Result<TcpEndpoint> {
        let addr = config.peers[config.rank].as_str();
        let deadline = Instant::now() + config.connect_timeout;
        let listener = loop {
            match bind_reuse(addr) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        Self::connect_with_listener(config, listener)
    }

    /// Like [`connect`](Self::connect) but over a pre-bound listener —
    /// lets tests bind port 0 and exchange the real addresses first.
    pub fn connect_with_listener(
        config: TcpFabricConfig,
        listener: TcpListener,
    ) -> io::Result<TcpEndpoint> {
        let n = config.peers.len();
        assert!(config.rank < n, "rank {} out of range 0..{n}", config.rank);
        let local_addr = listener.local_addr()?;
        let (inbox_tx, inbox) = unbounded::<InboxEvent>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(CommStats::default());
        let mut threads = Vec::new();

        // Acceptor: owns the listener and every reader thread it spawns.
        if n > 1 {
            let acceptor_inbox = inbox_tx.clone();
            let acceptor_shutdown = Arc::clone(&shutdown);
            let acceptor_stats = Arc::clone(&stats);
            let max_frame = config.max_frame_bytes;
            listener.set_nonblocking(true)?;
            threads.push(std::thread::spawn(move || {
                accept_loop(
                    listener,
                    acceptor_inbox,
                    acceptor_shutdown,
                    acceptor_stats,
                    max_frame,
                );
            }));
        }

        // Dial every peer. Synchronous here is deadlock-free: inbound
        // connections land in the already-running acceptor, and the
        // handshake echo each dial waits for is produced by the *peer's*
        // reader thread, never by a thread blocked in this loop.
        let mut outbound: Vec<Option<Sender<Bytes>>> = Vec::with_capacity(n);
        for (peer, addr) in config.peers.iter().enumerate() {
            if peer == config.rank {
                outbound.push(None);
                continue;
            }
            let mut stream = dial(addr, config.connect_timeout)?;
            stream.set_nodelay(true)?;
            stream.set_write_timeout(Some(config.write_timeout))?;
            shake_hands_as_dialer(&mut stream, config.connect_timeout)?;
            let (tx, rx) = unbounded::<Bytes>();
            let writer_shutdown = Arc::clone(&shutdown);
            let writer_addr = addr.clone();
            let write_timeout = config.write_timeout;
            let reconnect_timeout = config.reconnect_timeout;
            threads.push(std::thread::spawn(move || {
                write_loop(
                    stream,
                    &writer_addr,
                    rx,
                    &writer_shutdown,
                    write_timeout,
                    reconnect_timeout,
                );
            }));
            outbound.push(Some(tx));
        }

        Ok(TcpEndpoint {
            id: config.rank,
            n,
            outbound,
            inbox_tx,
            inbox,
            pending: VecDeque::new(),
            faults: Vec::new(),
            stats,
            recv_timeout: config.recv_timeout,
            shutdown,
            threads,
            local_addr,
        })
    }

    /// The address this rank's listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Byte-level faults reader threads have reported so far (torn
    /// frames, CRC mismatches, hostile lengths, rejected handshakes),
    /// in arrival order. Drains freshly reported faults first, so a
    /// caller polling after an injected corruption sees it without an
    /// intervening receive.
    pub fn link_faults(&mut self) -> &[LinkFault] {
        while let Ok(ev) = self.inbox.try_recv() {
            match ev {
                InboxEvent::Msg(m) => {
                    self.stats.record_recv(m.payload.wire_bytes());
                    self.pending.push_back(m);
                }
                InboxEvent::Fault(f) => self.faults.push(f),
            }
        }
        &self.faults
    }

    /// Flush queued frames to every peer, close the outbound streams,
    /// and join all fabric threads. Called implicitly on drop; explicit
    /// calls make shutdown ordering visible in launcher code.
    pub fn close(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Dropping the queues lets writers drain whatever is in flight,
        // then send FIN, so peers see clean EOFs at frame boundaries.
        self.outbound.clear();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    fn blocking_recv(
        &mut self,
        timeout: Duration,
        mut matches: impl FnMut(&Msg) -> bool,
    ) -> Result<Msg, TransportError> {
        if let Some(pos) = self.pending.iter().position(&mut matches) {
            if let Some(m) = self.pending.remove(pos) {
                return Ok(m);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(d) => d,
                None => {
                    return Err(TransportError::RecvTimeout {
                        rank: self.id,
                        waited: timeout,
                        buffered: self.pending.len(),
                    })
                }
            };
            match self.inbox.recv_timeout(remaining) {
                Ok(InboxEvent::Msg(m)) => {
                    self.stats.record_recv(m.payload.wire_bytes());
                    if matches(&m) {
                        return Ok(m);
                    }
                    self.pending.push_back(m);
                }
                // a damaged frame behaves like a lost one: collect the
                // typed report and keep waiting — the caller's timeout
                // and resend layers handle the loss
                Ok(InboxEvent::Fault(f)) => self.faults.push(f),
                Err(RecvTimeoutError::Timeout) => continue, // errors above
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }
}

impl Transport for TcpEndpoint {
    fn id(&self) -> usize {
        self.id
    }

    fn fabric_size(&self) -> usize {
        self.n
    }

    fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        assert!(to < self.n, "destination {to} out of range");
        let bytes = payload.wire_bytes();
        if to == self.id {
            // loop back without touching a socket, like the channel
            // fabric's self-send
            self.inbox_tx
                .send(InboxEvent::Msg(Msg {
                    from: self.id,
                    tag,
                    payload,
                }))
                .map_err(|_| TransportError::Closed)?;
            self.stats.record(bytes);
            return Ok(());
        }
        let frame = encode_frame(self.id, tag, &payload);
        match self.outbound.get(to).and_then(|s| s.as_ref()) {
            None => return Err(TransportError::Closed),
            Some(tx) => tx
                .send(frame)
                .map_err(|_| TransportError::PeerUnreachable { peer: to })?,
        }
        self.stats.record(bytes);
        Ok(())
    }

    fn recv_any(&mut self) -> Result<Msg, TransportError> {
        self.blocking_recv(self.recv_timeout, |_| true)
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        self.blocking_recv(self.recv_timeout, |m| {
            m.tag == tag && from.is_none_or(|f| m.from == f)
        })
    }

    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        self.blocking_recv(timeout, |m| m.matches(from, tag))
    }

    fn try_recv(&mut self) -> Option<Msg> {
        if let Some(m) = self.pending.pop_front() {
            return Some(m);
        }
        loop {
            match self.inbox.try_recv().ok()? {
                InboxEvent::Msg(m) => {
                    self.stats.record_recv(m.payload.wire_bytes());
                    return Some(m);
                }
                InboxEvent::Fault(f) => self.faults.push(f),
            }
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Dial `addr` until it answers or `timeout` elapses. Exponential
/// backoff from 20ms; lets a whole fleet be launched in any order.
pub(crate) fn dial(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(20);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("dialing {addr} failed after {timeout:?}: {e}"),
                    ));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
}

/// Dialer half of the connection preamble: advertise our protocol,
/// read the peer's echo, and fail fast (typed, as an
/// `InvalidData` [`io::Error`] wrapping [`crate::codec::FrameError`],
/// recoverable via [`io::Error::get_ref`]) if the peer speaks a
/// different version or no SelSync at all.
pub(crate) fn shake_hands_as_dialer(stream: &mut TcpStream, timeout: Duration) -> io::Result<()> {
    stream.write_all(&encode_handshake())?;
    stream.set_read_timeout(Some(timeout))?;
    let mut echo = [0u8; HANDSHAKE_BYTES];
    stream
        .read_exact(&mut echo)
        .map_err(|e| io::Error::new(e.kind(), format!("reading the handshake echo: {e}")))?;
    stream.set_read_timeout(None)?;
    decode_handshake(&echo)
        .map(|_| ())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn accept_loop(
    listener: TcpListener,
    inbox: Sender<InboxEvent>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<CommStats>,
    max_frame: usize,
) {
    let mut readers = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let reader_inbox = inbox.clone();
                let reader_shutdown = Arc::clone(&shutdown);
                let reader_stats = Arc::clone(&stats);
                readers.push(std::thread::spawn(move || {
                    read_loop(
                        stream,
                        reader_inbox,
                        reader_shutdown,
                        reader_stats,
                        max_frame,
                    );
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for handle in readers {
        let _ = handle.join();
    }
}

/// Outcome of filling a fixed-size buffer from a socket.
enum ReadOutcome {
    Full,
    /// Peer closed cleanly at a frame boundary.
    CleanEof,
    /// Local shutdown was requested while blocked.
    Shutdown,
}

/// A read that died partway through a fixed-size unit: how many bytes
/// made it, and why it stopped. Lets the reader report *where* in the
/// stream a frame was torn instead of a generic connection error.
struct ShortRead {
    filled: usize,
    error: io::Error,
}

fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    allow_clean_eof: bool,
) -> Result<ReadOutcome, ShortRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && allow_clean_eof {
                    Ok(ReadOutcome::CleanEof)
                } else {
                    Err(ShortRead {
                        filled,
                        error: io::ErrorKind::UnexpectedEof.into(),
                    })
                };
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Shutdown);
                }
            }
            Err(error) => return Err(ShortRead { filled, error }),
        }
    }
    Ok(ReadOutcome::Full)
}

fn read_loop(
    mut stream: TcpStream,
    inbox: Sender<InboxEvent>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<CommStats>,
    max_frame: usize,
) {
    let Ok(peer) = stream.peer_addr() else { return };
    let report = |offset: u64, detail: &str| {
        if !shutdown.load(Ordering::SeqCst) {
            let _ = inbox.send(InboxEvent::Fault(link_fault(peer, offset, detail)));
        }
    };

    // Acceptor half of the connection preamble: advertise ours first
    // (so the dialer can diagnose a mismatch symmetrically), then
    // require a valid one before any frame byte is interpreted.
    if stream.write_all(&encode_handshake()).is_err() {
        return;
    }
    let mut preamble = [0u8; HANDSHAKE_BYTES];
    match read_full(&mut stream, &mut preamble, &shutdown, true) {
        Ok(ReadOutcome::Full) => {}
        Ok(ReadOutcome::CleanEof) | Ok(ReadOutcome::Shutdown) => return,
        Err(short) => {
            report(
                short.filled as u64,
                &format!(
                    "connection died {} bytes into the {HANDSHAKE_BYTES}-byte handshake: {}",
                    short.filled, short.error
                ),
            );
            return;
        }
    }
    if let Err(e) = decode_handshake(&preamble) {
        report(0, &format!("handshake rejected: {e}"));
        return;
    }

    // bytes consumed from this connection's stream so far
    let mut offset = HANDSHAKE_BYTES as u64;
    loop {
        let frame_start = offset;
        let mut len_bytes = [0u8; 4];
        match read_full(&mut stream, &mut len_bytes, &shutdown, true) {
            Ok(ReadOutcome::Full) => offset += 4,
            Ok(ReadOutcome::CleanEof) | Ok(ReadOutcome::Shutdown) => return,
            Err(short) => {
                // a partial length prefix is already a torn frame
                stats.record_corrupt(short.filled as u64);
                report(
                    frame_start + short.filled as u64,
                    &format!(
                        "torn frame: {} of 4 length-prefix bytes, then {}",
                        short.filled, short.error
                    ),
                );
                return;
            }
        }
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > max_frame {
            stats.record_corrupt(4);
            report(
                frame_start,
                &format!("hostile frame length {len} exceeds the {max_frame}-byte cap"),
            );
            return;
        }
        let mut body = vec![0u8; len];
        match read_full(&mut stream, &mut body, &shutdown, false) {
            Ok(ReadOutcome::Full) => offset += len as u64,
            // lint:allow(unwrap-in-prod): read_full(eof_ok = false) maps a
            // mid-frame EOF to an error, so CleanEof cannot reach this arm
            Ok(ReadOutcome::CleanEof) => unreachable!("clean EOF not allowed mid-frame"),
            Ok(ReadOutcome::Shutdown) => return,
            Err(short) => {
                stats.record_corrupt(4 + short.filled as u64);
                report(
                    frame_start + 4 + short.filled as u64,
                    &format!(
                        "torn frame: {} of {len} body bytes, then {}",
                        short.filled, short.error
                    ),
                );
                return;
            }
        }
        match decode_after_len(&body) {
            Ok(msg) => {
                if inbox.send(InboxEvent::Msg(msg)).is_err() {
                    return; // endpoint gone
                }
            }
            Err(e) => {
                // CRC mismatch or structural damage: the whole frame
                // (prefix included) is lost, and a stream that produced
                // it cannot be trusted to still be frame-aligned — tear
                // the connection down and let the writer side redial
                stats.record_corrupt(4 + len as u64);
                report(frame_start, &format!("frame rejected: {e}"));
                return;
            }
        }
    }
}

fn write_loop(
    mut stream: TcpStream,
    addr: &str,
    frames: Receiver<Bytes>,
    shutdown: &AtomicBool,
    write_timeout: Duration,
    reconnect_timeout: Duration,
) {
    // recv() errors once the endpoint drops the sender: drain then FIN.
    while let Ok(frame) = frames.recv() {
        if stream.write_all(&frame).is_ok() {
            continue;
        }
        // The established link broke (peer crashed/restarted, transient
        // fault). Redial within the reconnect budget and resend the
        // failed frame; a frame already buffered by the dead kernel
        // socket is lost, which the protocol-level retry layers absorb.
        // Only when the budget is exhausted does this thread exit, after
        // which sends to this peer surface as `PeerUnreachable`.
        match reconnect(addr, write_timeout, reconnect_timeout, shutdown) {
            Some(s) => stream = s,
            None => return,
        }
        if let Err(e) = stream.write_all(&frame) {
            if !shutdown.load(Ordering::SeqCst) {
                eprintln!("selsync-net: write to {addr} failed after reconnect: {e}");
            }
            return;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// Redial a broken established link with capped exponential backoff
/// until `budget` elapses or shutdown is requested. Every fresh
/// connection re-runs the protocol handshake: a version mismatch is
/// permanent (the peer restarted under a different build), so it ends
/// the redial early rather than burning the whole budget.
fn reconnect(
    addr: &str,
    write_timeout: Duration,
    budget: Duration,
    shutdown: &AtomicBool,
) -> Option<TcpStream> {
    let deadline = Instant::now() + budget;
    let mut backoff = Duration::from_millis(20);
    while !shutdown.load(Ordering::SeqCst) {
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                let _ = s.set_nodelay(true);
                let _ = s.set_write_timeout(Some(write_timeout));
                match shake_hands_as_dialer(&mut s, write_timeout) {
                    Ok(()) => return Some(s),
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                        if !shutdown.load(Ordering::SeqCst) {
                            eprintln!("selsync-net: reconnect to {addr}: handshake rejected: {e}");
                        }
                        return None;
                    }
                    // transient (peer still restarting): retry within
                    // the budget like any other failed dial
                    Err(e) => {
                        if Instant::now() + backoff >= deadline {
                            if !shutdown.load(Ordering::SeqCst) {
                                eprintln!(
                                    "selsync-net: reconnect to {addr} failed after {budget:?}: {e}"
                                );
                            }
                            return None;
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(500));
                    }
                }
            }
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    if !shutdown.load(Ordering::SeqCst) {
                        eprintln!("selsync-net: reconnect to {addr} failed after {budget:?}: {e}");
                    }
                    return None;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Bind `n` loopback listeners on ephemeral ports and connect a
    /// full mesh of endpoints over them.
    pub(crate) fn loopback_fabric(n: usize) -> Vec<TcpEndpoint> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let peers: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let mut config = TcpFabricConfig::new(rank, peers.clone());
                config.recv_timeout = Duration::from_secs(20);
                thread::spawn(move || TcpEndpoint::connect_with_listener(config, listener).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    /// A restarted rank must reclaim its advertised port immediately,
    /// even though the dead process's accepted connections (local port
    /// = the listen port) linger in `TIME_WAIT` after an active close.
    /// This is exactly the `--resume` respawn path: without
    /// `SO_REUSEADDR` the rebind fails with `AddrInUse` for up to a
    /// minute.
    #[test]
    fn rebind_same_port_after_active_close_succeeds() {
        let first = bind_reuse("127.0.0.1:0").unwrap();
        let addr = first.local_addr().unwrap().to_string();
        let client = TcpStream::connect(&addr).unwrap();
        let (accepted, _) = first.accept().unwrap();
        // accepted side closes first (the active closer) → its end of
        // the connection, which owns the listen port, enters TIME_WAIT
        drop(accepted);
        drop(client);
        drop(first);
        thread::sleep(Duration::from_millis(50));
        let again = bind_reuse(&addr).expect("rebind of a just-released port");
        assert_eq!(again.local_addr().unwrap().to_string(), addr);
    }

    #[test]
    fn point_to_point_and_self_send() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 1, Payload::Params(vec![1.0, -2.0])).unwrap();
        let m = a.recv_tagged(Some(1), 1).unwrap();
        assert_eq!(m.from, 1);
        assert_eq!(m.payload, Payload::Params(vec![1.0, -2.0]));
        a.send(0, 2, Payload::Control(9)).unwrap(); // self-send loops back
        assert_eq!(
            a.recv_tagged(Some(0), 2).unwrap().payload,
            Payload::Control(9)
        );
        a.close();
        b.close();
    }

    #[test]
    fn tagged_receive_buffers_out_of_order() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 2, Payload::Control(2)).unwrap();
        b.send(0, 1, Payload::Control(1)).unwrap();
        let m1 = a.recv_tagged(None, 1).unwrap();
        assert_eq!(m1.payload, Payload::Control(1));
        let m2 = a.recv_tagged(Some(1), 2).unwrap();
        assert_eq!(m2.payload, Payload::Control(2));
        a.close();
        b.close();
    }

    #[test]
    fn byte_accounting_matches_encoded_frames() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let payloads = [
            Payload::Params(vec![0.5; 33]),
            Payload::Flags(vec![1; 5]),
            Payload::Control(7),
            Payload::Samples {
                data: vec![1.0; 12],
                targets: vec![0, 1, 2],
                dims: vec![2, 2, 3],
            },
        ];
        let mut expected = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            expected += encode_frame(1, i as u64, p).len() as u64;
            b.send(0, i as u64, p.clone()).unwrap();
        }
        for i in 0..payloads.len() {
            let _ = a.recv_tagged(Some(1), i as u64).unwrap();
        }
        assert_eq!(b.stats().total_bytes(), expected);
        assert_eq!(b.stats().total_messages(), payloads.len() as u64);
        a.close();
        b.close();
    }

    #[test]
    fn mesh_ring_traffic_across_threads() {
        let n = 4;
        let eps = loopback_fabric(n);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let me = ep.id();
                    let next = (me + 1) % n;
                    let prev = (me + n - 1) % n;
                    for step in 0..50u64 {
                        ep.send(next, step, Payload::Params(vec![me as f32, step as f32]))
                            .unwrap();
                        let m = ep.recv_tagged(Some(prev), step).unwrap();
                        assert_eq!(m.payload, Payload::Params(vec![prev as f32, step as f32]));
                    }
                    ep.close();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recv_watchdog_is_an_error_not_a_panic() {
        let mut eps = loopback_fabric(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let err = a
            .recv_deadline(None, Some(42), Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::RecvTimeout { rank: 0, .. }));
        a.close();
        b.close();
    }

    #[test]
    fn send_after_close_is_an_error_not_a_panic() {
        let mut eps = loopback_fabric(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.teardown();
        let err = a.send(1, 0, Payload::Control(1)).unwrap_err();
        assert_eq!(err, TransportError::Closed);
        b.close();
    }

    /// Answer the SelSync preamble on a raw test-controlled socket, the
    /// way a real acceptor's reader thread would.
    fn raw_handshake(conn: &mut TcpStream) {
        let mut preamble = [0u8; HANDSHAKE_BYTES];
        conn.read_exact(&mut preamble).unwrap();
        decode_handshake(&preamble).unwrap();
        conn.write_all(&encode_handshake()).unwrap();
    }

    /// Read one wire frame (length prefix + body) off a raw socket.
    fn read_raw_frame(stream: &mut TcpStream) -> io::Result<Msg> {
        let mut len_bytes = [0u8; 4];
        stream.read_exact(&mut len_bytes)?;
        let mut body = vec![0u8; u32::from_be_bytes(len_bytes) as usize];
        stream.read_exact(&mut body)?;
        decode_after_len(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// A broken established link is redialed by the writer thread: drop
    /// the first accepted connection mid-run and frames keep arriving on
    /// a second one — sends never surface `PeerUnreachable`.
    #[test]
    fn writer_reconnects_after_peer_restart() {
        // rank 1 is a raw listener the test controls, standing in for a
        // peer that crashes and restarts
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers = vec![
            l0.local_addr().unwrap().to_string(),
            raw.local_addr().unwrap().to_string(),
        ];
        let mut config = TcpFabricConfig::new(0, peers);
        config.reconnect_timeout = Duration::from_secs(10);
        let accept_first = thread::spawn(move || {
            let (mut s, _) = raw.accept()?;
            raw_handshake(&mut s);
            Ok::<_, io::Error>((s, raw))
        });
        let mut ep = TcpEndpoint::connect_with_listener(config, l0).unwrap();
        let (mut conn1, raw) = accept_first.join().unwrap().unwrap();

        ep.send(1, 7, Payload::Control(7)).unwrap();
        assert_eq!(read_raw_frame(&mut conn1).unwrap().tag, 7);

        // "crash" the peer: kill the established connection
        conn1.shutdown(Shutdown::Both).unwrap();
        drop(conn1);

        // keep sending until the writer notices the dead link and
        // redials; the listener is still bound, so the redial lands here
        let (tx, rx) = std::sync::mpsc::channel();
        let accept_second = thread::spawn(move || {
            let conn = raw.accept().map(|(s, _)| s).map(|mut s| {
                raw_handshake(&mut s);
                s
            });
            tx.send(()).ok();
            conn
        });
        let mut probes = 0u64;
        while rx.try_recv().is_err() {
            probes += 1;
            assert!(probes < 200, "writer never redialed the restarted peer");
            ep.send(1, 100 + probes, Payload::Control(probes)).unwrap();
            thread::sleep(Duration::from_millis(25));
        }
        let mut conn2 = accept_second.join().unwrap().unwrap();

        // everything sent after the reconnect arrives on the new link
        ep.send(1, 999, Payload::Params(vec![1.0, 2.0])).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = read_raw_frame(&mut conn2).unwrap();
            if m.tag == 999 {
                assert_eq!(m.payload, Payload::Params(vec![1.0, 2.0]));
                break;
            }
            assert!(Instant::now() < deadline, "tag 999 never arrived");
        }
        ep.close();
    }

    /// Mixed protocol versions must fail the connect, fast and typed:
    /// the dialer gets an `InvalidData` error wrapping
    /// `FrameError::VersionMismatch`, not a hang or a garbled fabric.
    #[test]
    fn mixed_versions_fail_the_connect_handshake() {
        use crate::codec::{FrameError, PROTOCOL_VERSION};
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers = vec![
            l0.local_addr().unwrap().to_string(),
            raw.local_addr().unwrap().to_string(),
        ];
        let mut config = TcpFabricConfig::new(0, peers);
        config.connect_timeout = Duration::from_secs(5);
        let future_peer = thread::spawn(move || {
            let (mut s, _) = raw.accept().unwrap();
            let mut preamble = [0u8; HANDSHAKE_BYTES];
            s.read_exact(&mut preamble).unwrap();
            // echo a preamble from one protocol version ahead
            let mut echo = encode_handshake();
            echo[4..6].copy_from_slice(&(PROTOCOL_VERSION + 1).to_be_bytes());
            s.write_all(&echo).unwrap();
            s
        });
        let err = match TcpEndpoint::connect_with_listener(config, l0) {
            Err(e) => e,
            Ok(_) => panic!("connect accepted a mismatched protocol version"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let inner = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<FrameError>())
            .expect("typed FrameError inside the io::Error");
        assert_eq!(
            *inner,
            FrameError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: PROTOCOL_VERSION + 1,
            }
        );
        drop(future_peer.join().unwrap());
    }

    #[test]
    fn dial_gives_up_after_timeout() {
        // a bound-then-dropped port is very likely unreachable
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let start = Instant::now();
        let r = dial(&addr, Duration::from_millis(300));
        assert!(r.is_err());
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
