//! # selsync-net
//!
//! Real-socket transport for the SelSync fabric: a length-prefixed
//! binary wire codec for [`selsync_comm::Payload`] frames and a blocking
//! TCP fabric ([`TcpEndpoint`]) implementing
//! [`selsync_comm::Transport`], so every strategy in `selsync-core` runs
//! unchanged across OS processes (DESIGN.md substitution 1, lifted: the
//! transport is no longer simulated).
//!
//! Wire format (all integers big-endian):
//!
//! ```text
//! [u32 rest_len][u32 from][u64 tag][u8 kind][body...][u32 crc32]
//! ```
//!
//! `rest_len` counts every byte after itself, the CRC-32 trailer
//! included. The trailer covers `[from][tag][kind][body]` and is
//! verified before any body byte is interpreted, so in-flight damage
//! is rejected as a typed [`FrameError`] instead of decoding into
//! garbage. The frame length is the authoritative
//! [`Payload::wire_bytes`]: the codec asserts the two agree on every
//! encode, so `CommStats` totals equal bytes moved.
//!
//! Every TCP connection additionally opens with an 8-byte preamble
//! `[u32 magic][u16 version][u16 features]` so mixed protocol versions
//! fail fast at connect time (see [`codec::encode_handshake`]).
//!
//! [`Payload::wire_bytes`]: selsync_comm::Payload::wire_bytes

pub mod codec;
pub mod poll;
pub mod tcp;

pub use codec::{
    crc32, decode_frame, decode_handshake, encode_frame, encode_handshake, FrameError, Handshake,
    CRC_BYTES, HANDSHAKE_BYTES, PROTOCOL_MAGIC, PROTOCOL_VERSION,
};
pub use poll::PollTcpEndpoint;
pub use tcp::{LinkFault, TcpEndpoint, TcpFabricConfig, DEFAULT_MAX_FRAME_BYTES};
