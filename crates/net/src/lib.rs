//! # selsync-net
//!
//! Real-socket transport for the SelSync fabric: a length-prefixed
//! binary wire codec for [`selsync_comm::Payload`] frames and a blocking
//! TCP fabric ([`TcpEndpoint`]) implementing
//! [`selsync_comm::Transport`], so every strategy in `selsync-core` runs
//! unchanged across OS processes (DESIGN.md substitution 1, lifted: the
//! transport is no longer simulated).
//!
//! Wire format (all integers big-endian):
//!
//! ```text
//! [u32 rest_len][u32 from][u64 tag][u8 kind][body...]
//! ```
//!
//! `rest_len` counts every byte after itself. The frame length is the
//! authoritative [`Payload::wire_bytes`]: the codec asserts the two
//! agree on every encode, so `CommStats` totals equal bytes moved.
//!
//! [`Payload::wire_bytes`]: selsync_comm::Payload::wire_bytes

pub mod codec;
pub mod tcp;

pub use codec::{decode_frame, encode_frame, CodecError};
pub use tcp::{TcpEndpoint, TcpFabricConfig};
