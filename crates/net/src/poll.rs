//! Event-driven TCP fabric: one driver thread, nonblocking sockets, a
//! std-only readiness loop.
//!
//! [`PollTcpEndpoint`] speaks exactly the wire protocol of the blocking
//! fabric ([`crate::tcp::TcpEndpoint`]) — same 8-byte version
//! handshake, same CRC-checked codec-v2 frames, same
//! `max_frame_bytes` hostile-length cap, same typed
//! [`TransportError`]s and [`LinkFault`] reports — but replaces the
//! 2(N−1)+1 reader/writer/acceptor threads per rank with a **single
//! driver thread** multiplexing every connection:
//!
//! * every socket (listener included) runs nonblocking; the driver
//!   sweeps them in a loop, sleeping briefly only when a full sweep
//!   makes no progress, so the loop needs nothing beyond `std` — no
//!   epoll/kqueue binding — yet stays off-CPU when the fabric is idle;
//! * each outbound peer owns a **write backpressure queue**: frames a
//!   kernel send buffer will not take (`WouldBlock`) park in the queue
//!   with a byte offset into the partially-written front frame, and the
//!   driver resumes mid-frame on the next sweep — [`Transport::send`]
//!   never blocks the caller, exactly like the channel fabric;
//! * inbound connections parse incrementally: bytes accumulate in a
//!   per-connection buffer and complete handshakes/frames peel off as
//!   they arrive, so one slow peer trickling a large frame never stalls
//!   the others (the head-of-line blocking a blocking `read_exact`
//!   would impose).
//!
//! Byte-level damage — torn frames, CRC mismatches, hostile length
//! prefixes, rejected handshakes — is reported and tallied exactly as
//! the blocking fabric does: a typed [`LinkFault`] with the peer
//! address and stream byte offset, a `corrupt_messages` tick, and the
//! connection torn down (a stream that lost framing cannot be
//! resynchronized; the peer's writer redials).
//!
//! A broken *established* outbound link redials with capped backoff
//! within `reconnect_timeout`, paced by the sweep so the other peers
//! keep flowing during the outage; only an exhausted budget (or a
//! version-mismatch handshake, which a retry cannot fix) declares the
//! peer unreachable.

use crate::codec::{
    decode_after_len, decode_handshake, encode_frame, encode_handshake, HANDSHAKE_BYTES,
};
use crate::tcp::{
    bind_reuse, dial, link_fault, shake_hands_as_dialer, InboxEvent, LinkFault, TcpFabricConfig,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use selsync_comm::{CommStats, Msg, Payload, Transport, TransportError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the driver sleeps after a sweep that made no progress —
/// the poll loop's only timer, so it bounds added latency when a
/// message arrives exactly as the driver dozes off.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Per-sweep cap on bytes read from one inbound connection, so a
/// firehose peer cannot starve its neighbours within a sweep.
const READ_CHUNK: usize = 256 * 1024;

/// Dial budget for one *redial* attempt inside the driver loop. Short:
/// a redial must not stall the sweep (and with it every other peer)
/// for long; the overall budget is `reconnect_timeout` across
/// attempts.
const REDIAL_ATTEMPT: Duration = Duration::from_millis(100);

/// One rank's handle on the event-driven TCP fabric. Implements
/// [`Transport`] with the exact semantics of the blocking
/// [`crate::tcp::TcpEndpoint`]; only the threading model differs.
pub struct PollTcpEndpoint {
    id: usize,
    n: usize,
    /// Frame queues into the driver; `None` at `id` (self-sends loop
    /// back through `inbox_tx`). The driver drops a peer's receiver
    /// when it declares the peer unreachable, which surfaces here as
    /// `PeerUnreachable` on the next send — same contract as the
    /// blocking fabric's writer threads.
    outbound: Vec<Option<Sender<Bytes>>>,
    inbox_tx: Sender<InboxEvent>,
    inbox: Receiver<InboxEvent>,
    pending: VecDeque<Msg>,
    faults: Vec<LinkFault>,
    stats: Arc<CommStats>,
    recv_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl PollTcpEndpoint {
    /// Bind `peers[rank]` and connect the mesh; see
    /// [`crate::tcp::TcpEndpoint::connect`]. Dialing is blocking (ranks
    /// may start in any order); once the mesh is up, everything runs on
    /// the single driver thread.
    ///
    /// # Errors
    /// Propagates bind/dial/handshake failures.
    pub fn connect(config: TcpFabricConfig) -> io::Result<PollTcpEndpoint> {
        let addr = config.peers[config.rank].as_str();
        let deadline = Instant::now() + config.connect_timeout;
        let listener = loop {
            match bind_reuse(addr) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        Self::connect_with_listener(config, listener)
    }

    /// Like [`connect`](Self::connect) but over a pre-bound listener —
    /// lets tests bind port 0 and exchange the real addresses first.
    ///
    /// # Errors
    /// Propagates dial/handshake failures.
    pub fn connect_with_listener(
        config: TcpFabricConfig,
        listener: TcpListener,
    ) -> io::Result<PollTcpEndpoint> {
        let n = config.peers.len();
        assert!(config.rank < n, "rank {} out of range 0..{n}", config.rank);
        let local_addr = listener.local_addr()?;
        let (inbox_tx, inbox) = unbounded::<InboxEvent>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(CommStats::default());

        // Spawn the driver *before* dialing: every dial below blocks on
        // the peer's handshake echo, and the peer's own dials block on
        // ours — so each rank's acceptor must already be serving while
        // it dials, exactly as the blocking fabric's acceptor thread
        // does. Established streams reach the driver over a channel.
        listener.set_nonblocking(true)?;
        let (conn_tx, conn_rx) = unbounded::<OutboundConn>();
        let driver = {
            let inbox = inbox_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let reconnect_timeout = config.reconnect_timeout;
            let max_frame = config.max_frame_bytes;
            let listener = (n > 1).then_some(listener);
            std::thread::spawn(move || {
                driver_loop(
                    listener,
                    &conn_rx,
                    &inbox,
                    &shutdown,
                    &stats,
                    max_frame,
                    reconnect_timeout,
                );
            })
        };

        let mut outbound_tx: Vec<Option<Sender<Bytes>>> = Vec::with_capacity(n);
        for (peer, addr) in config.peers.iter().enumerate() {
            if peer == config.rank {
                outbound_tx.push(None);
                continue;
            }
            let established = dial(addr, config.connect_timeout).and_then(|mut stream| {
                stream.set_nodelay(true)?;
                shake_hands_as_dialer(&mut stream, config.connect_timeout)?;
                stream.set_nonblocking(true)?;
                Ok(stream)
            });
            match established {
                Ok(stream) => {
                    let (tx, rx) = unbounded::<Bytes>();
                    outbound_tx.push(Some(tx));
                    let _ = conn_tx.send(OutboundConn::established(addr.clone(), stream, rx));
                }
                Err(e) => {
                    // unwind the half-built mesh before reporting
                    shutdown.store(true, Ordering::SeqCst);
                    drop(conn_tx);
                    drop(outbound_tx);
                    let _ = driver.join();
                    return Err(e);
                }
            }
        }
        drop(conn_tx);

        Ok(PollTcpEndpoint {
            id: config.rank,
            n,
            outbound: outbound_tx,
            inbox_tx,
            inbox,
            pending: VecDeque::new(),
            faults: Vec::new(),
            stats,
            recv_timeout: config.recv_timeout,
            shutdown,
            driver: Some(driver),
            local_addr,
        })
    }

    /// The address this rank's listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Byte-level faults the driver has reported so far, in arrival
    /// order (see [`crate::tcp::TcpEndpoint::link_faults`]).
    pub fn link_faults(&mut self) -> &[LinkFault] {
        while let Ok(ev) = self.inbox.try_recv() {
            match ev {
                InboxEvent::Msg(m) => {
                    self.stats.record_recv(m.payload.wire_bytes());
                    self.pending.push_back(m);
                }
                InboxEvent::Fault(f) => self.faults.push(f),
            }
        }
        &self.faults
    }

    /// Flush queued frames to every peer, close the outbound streams,
    /// and join the driver. Called implicitly on drop.
    pub fn close(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        // Dropping the queues tells the driver to drain whatever is in
        // flight, then FIN each peer and exit; only then raise the
        // shutdown flag so inbound reading stops too.
        self.outbound.clear();
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }

    fn blocking_recv(
        &mut self,
        timeout: Duration,
        mut matches: impl FnMut(&Msg) -> bool,
    ) -> Result<Msg, TransportError> {
        if let Some(pos) = self.pending.iter().position(&mut matches) {
            if let Some(m) = self.pending.remove(pos) {
                return Ok(m);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(d) => d,
                None => {
                    return Err(TransportError::RecvTimeout {
                        rank: self.id,
                        waited: timeout,
                        buffered: self.pending.len(),
                    })
                }
            };
            match self.inbox.recv_timeout(remaining) {
                Ok(InboxEvent::Msg(m)) => {
                    self.stats.record_recv(m.payload.wire_bytes());
                    if matches(&m) {
                        return Ok(m);
                    }
                    self.pending.push_back(m);
                }
                // a damaged frame behaves like a lost one, as on the
                // blocking fabric
                Ok(InboxEvent::Fault(f)) => self.faults.push(f),
                Err(RecvTimeoutError::Timeout) => continue, // errors above
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }
}

impl Transport for PollTcpEndpoint {
    fn id(&self) -> usize {
        self.id
    }

    fn fabric_size(&self) -> usize {
        self.n
    }

    fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        assert!(to < self.n, "destination {to} out of range");
        let bytes = payload.wire_bytes();
        if to == self.id {
            self.inbox_tx
                .send(InboxEvent::Msg(Msg {
                    from: self.id,
                    tag,
                    payload,
                }))
                .map_err(|_| TransportError::Closed)?;
            self.stats.record(bytes);
            return Ok(());
        }
        let frame = encode_frame(self.id, tag, &payload);
        match self.outbound.get(to).and_then(|s| s.as_ref()) {
            None => return Err(TransportError::Closed),
            Some(tx) => tx
                .send(frame)
                .map_err(|_| TransportError::PeerUnreachable { peer: to })?,
        }
        self.stats.record(bytes);
        Ok(())
    }

    fn recv_any(&mut self) -> Result<Msg, TransportError> {
        self.blocking_recv(self.recv_timeout, |_| true)
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        self.blocking_recv(self.recv_timeout, |m| {
            m.tag == tag && from.is_none_or(|f| m.from == f)
        })
    }

    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        self.blocking_recv(timeout, |m| m.matches(from, tag))
    }

    fn try_recv(&mut self) -> Option<Msg> {
        if let Some(m) = self.pending.pop_front() {
            return Some(m);
        }
        loop {
            match self.inbox.try_recv().ok()? {
                InboxEvent::Msg(m) => {
                    self.stats.record_recv(m.payload.wire_bytes());
                    return Some(m);
                }
                InboxEvent::Fault(f) => self.faults.push(f),
            }
        }
    }
}

impl Drop for PollTcpEndpoint {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// One accepted inbound connection: its socket, an accumulation buffer
/// the incremental parser peels handshakes/frames off of, and the
/// not-yet-written tail of our handshake echo.
struct InboundConn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Unparsed inbound bytes (at most a partial frame once parsing
    /// catches up).
    buf: Vec<u8>,
    /// Stream bytes fully parsed so far — the frame-boundary offset
    /// fault reports anchor to.
    offset: u64,
    handshaken: bool,
    /// Our handshake preamble, written opportunistically (the peer's
    /// dialer blocks on reading it, we must not block sending it).
    echo_pending: Vec<u8>,
    echo_off: usize,
}

/// One outbound peer: the live socket (when up), the frames the
/// endpoint queued, and the redial state for a broken link.
struct OutboundConn {
    addr: String,
    stream: Option<TcpStream>,
    /// Frame source from the endpoint; dropped to signal
    /// `PeerUnreachable` once the peer is given up on.
    rx: Option<Receiver<Bytes>>,
    /// Backpressure queue: frames the socket would not take yet.
    queue: VecDeque<Bytes>,
    /// Bytes of the front frame already written (mid-frame resume).
    front_off: usize,
    /// Redial pacing for a broken established link.
    redial_deadline: Instant,
    next_redial: Instant,
    backoff: Duration,
    /// FIN sent; nothing more to do for this peer.
    finished: bool,
}

impl OutboundConn {
    fn established(addr: String, stream: TcpStream, rx: Receiver<Bytes>) -> OutboundConn {
        let now = Instant::now();
        OutboundConn {
            addr,
            stream: Some(stream),
            rx: Some(rx),
            queue: VecDeque::new(),
            front_off: 0,
            redial_deadline: now,
            next_redial: now,
            backoff: Duration::from_millis(20),
            finished: false,
        }
    }

    /// The link just broke: drop the dead socket and arm the redial
    /// clock. Bytes the dead kernel socket had buffered are lost, which
    /// the protocol retry layers absorb — same contract as the blocking
    /// fabric's writer threads.
    fn mark_broken(&mut self, reconnect_timeout: Duration) {
        self.stream = None;
        self.front_off = 0; // the partial frame died with the socket
        if !self.queue.is_empty() {
            self.queue.pop_front();
        }
        let now = Instant::now();
        self.redial_deadline = now + reconnect_timeout;
        self.next_redial = now;
        self.backoff = Duration::from_millis(20);
    }

    /// Give up on this peer: further sends surface `PeerUnreachable`.
    fn give_up(&mut self) {
        self.rx = None;
        self.queue.clear();
        self.front_off = 0;
        self.finished = true;
    }
}

/// The single-thread readiness loop. Sweeps: accept new inbound
/// connections, read+parse every inbound socket, drain the endpoint's
/// frame queues into per-peer write queues and flush them, pace
/// redials for broken links. Sleeps [`IDLE_SLEEP`] only when a whole
/// sweep moved no bytes.
#[allow(clippy::too_many_lines)]
fn driver_loop(
    listener: Option<TcpListener>,
    new_conns: &Receiver<OutboundConn>,
    inbox: &Sender<InboxEvent>,
    shutdown: &AtomicBool,
    stats: &CommStats,
    max_frame: usize,
    reconnect_timeout: Duration,
) {
    let mut outbound: Vec<OutboundConn> = Vec::new();
    let mut inbound: Vec<InboundConn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let mut progressed = false;
        let shutting = shutdown.load(Ordering::SeqCst);

        // adopt streams the connect path finished dialing
        while let Ok(conn) = new_conns.try_recv() {
            outbound.push(conn);
            progressed = true;
        }

        // --- accept ---
        if !shutting {
            if let Some(l) = &listener {
                loop {
                    match l.accept() {
                        Ok((stream, peer)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            inbound.push(InboundConn {
                                stream,
                                peer,
                                buf: Vec::new(),
                                offset: 0,
                                handshaken: false,
                                echo_pending: encode_handshake().to_vec(),
                                echo_off: 0,
                            });
                            progressed = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }

        // --- inbound: echo, read, parse ---
        if !shutting {
            let mut i = 0;
            while i < inbound.len() {
                match pump_inbound(
                    &mut inbound[i],
                    &mut chunk,
                    inbox,
                    stats,
                    max_frame,
                    shutdown,
                ) {
                    PumpOutcome::Progress => {
                        progressed = true;
                        i += 1;
                    }
                    PumpOutcome::Idle => i += 1,
                    PumpOutcome::Closed => {
                        inbound.swap_remove(i);
                        progressed = true;
                    }
                }
            }
        }

        // --- outbound: drain queues, flush, redial ---
        for conn in &mut outbound {
            if conn.finished {
                continue;
            }
            // pull everything the endpoint has queued
            let mut disconnected = false;
            if let Some(rx) = &conn.rx {
                loop {
                    match rx.try_recv() {
                        Ok(frame) => {
                            conn.queue.push_back(frame);
                            progressed = true;
                        }
                        Err(crossbeam::channel::TryRecvError::Empty) => break,
                        Err(crossbeam::channel::TryRecvError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
            }
            // flush the backpressure queue into the socket
            if let Some(stream) = &mut conn.stream {
                let mut broken = false;
                while let Some(front) = conn.queue.front() {
                    match stream.write(&front[conn.front_off..]) {
                        Ok(0) => {
                            broken = true;
                            break;
                        }
                        Ok(k) => {
                            conn.front_off += k;
                            progressed = true;
                            if conn.front_off == front.len() {
                                conn.queue.pop_front();
                                conn.front_off = 0;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            broken = true;
                            break;
                        }
                    }
                }
                if broken {
                    conn.mark_broken(reconnect_timeout);
                    progressed = true;
                }
            } else if conn.rx.is_some() || !conn.queue.is_empty() {
                // broken link with traffic still owed: pace the redials
                let now = Instant::now();
                if now >= conn.redial_deadline {
                    if !shutdown.load(Ordering::SeqCst) {
                        eprintln!(
                            "selsync-net: reconnect to {} failed after {reconnect_timeout:?}",
                            conn.addr
                        );
                    }
                    conn.give_up();
                } else if now >= conn.next_redial {
                    match redial_once(&conn.addr) {
                        RedialOutcome::Up(s) => {
                            conn.stream = Some(s);
                            progressed = true;
                        }
                        RedialOutcome::Fatal => {
                            if !shutdown.load(Ordering::SeqCst) {
                                eprintln!(
                                    "selsync-net: reconnect to {}: handshake rejected",
                                    conn.addr
                                );
                            }
                            conn.give_up();
                        }
                        RedialOutcome::Retry => {
                            conn.next_redial = Instant::now() + conn.backoff;
                            conn.backoff = (conn.backoff * 2).min(Duration::from_millis(500));
                        }
                    }
                }
            }
            // endpoint gone and everything flushed: FIN and finish
            if disconnected {
                conn.rx = None;
            }
            if conn.rx.is_none() && conn.queue.is_empty() && !conn.finished {
                if let Some(s) = &conn.stream {
                    let _ = s.shutdown(Shutdown::Write);
                }
                conn.finished = true;
            }
        }

        if outbound.iter().all(|c| c.finished) && shutting {
            return;
        }
        if !progressed {
            // lint:allow(poll-blocking): deliberate idle backoff — IDLE_SLEEP
            // is 500µs, paid only on sweeps where every connection was quiet
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// What one inbound sweep step did.
enum PumpOutcome {
    Progress,
    Idle,
    /// Clean EOF, fault, or local shutdown: the connection is done.
    Closed,
}

/// One redial attempt's result.
enum RedialOutcome {
    Up(TcpStream),
    /// Version mismatch — retrying cannot help.
    Fatal,
    Retry,
}

/// One short, bounded redial attempt (so the sweep never stalls long).
fn redial_once(addr: &str) -> RedialOutcome {
    let Ok(sock_addr) = addr.parse::<SocketAddr>() else {
        // hostname peers resolve through the blocking dial path
        // lint:allow(poll-blocking): one attempt capped at REDIAL_ATTEMPT
        // (100ms); the sweep stalls at most one bounded attempt per pass
        return match dial(addr, REDIAL_ATTEMPT) {
            Ok(s) => finish_redial(s),
            Err(_) => RedialOutcome::Retry,
        };
    };
    // lint:allow(poll-blocking): bounded by REDIAL_ATTEMPT (100ms) and
    // only reached on a down peer whose next_redial backoff expired
    match TcpStream::connect_timeout(&sock_addr, REDIAL_ATTEMPT) {
        Ok(s) => finish_redial(s),
        Err(_) => RedialOutcome::Retry,
    }
}

fn finish_redial(mut s: TcpStream) -> RedialOutcome {
    let _ = s.set_nodelay(true);
    // lint:allow(poll-blocking): handshake read/write deadline is capped
    // at REDIAL_ATTEMPT (100ms) via the socket timeouts set inside
    match shake_hands_as_dialer(&mut s, REDIAL_ATTEMPT) {
        Ok(()) => {
            if s.set_nonblocking(true).is_err() {
                return RedialOutcome::Retry;
            }
            RedialOutcome::Up(s)
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => RedialOutcome::Fatal,
        Err(_) => RedialOutcome::Retry,
    }
}

/// Service one inbound connection: push our handshake echo, read
/// whatever the socket has (up to [`READ_CHUNK`]), and peel completed
/// handshakes/frames off the buffer.
fn pump_inbound(
    conn: &mut InboundConn,
    chunk: &mut [u8],
    inbox: &Sender<InboxEvent>,
    stats: &CommStats,
    max_frame: usize,
    shutdown: &AtomicBool,
) -> PumpOutcome {
    let mut progressed = false;

    // write our half of the preamble (opportunistically, never blocking)
    while conn.echo_off < conn.echo_pending.len() {
        match conn.stream.write(&conn.echo_pending[conn.echo_off..]) {
            Ok(0) => return PumpOutcome::Closed,
            Ok(k) => {
                conn.echo_off += k;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return PumpOutcome::Closed,
        }
    }

    // read what the socket has
    let mut eof = false;
    let mut read_total = 0;
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(k) => {
                conn.buf.extend_from_slice(&chunk[..k]);
                read_total += k;
                progressed = true;
                if read_total >= READ_CHUNK {
                    break; // fairness: let the other connections run
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                eof = true; // connection reset mid-stream
                break;
            }
        }
    }

    let report = |offset: u64, detail: &str| {
        if !shutdown.load(Ordering::SeqCst) {
            let _ = inbox.send(InboxEvent::Fault(link_fault(conn.peer, offset, detail)));
        }
    };

    // parse: handshake first, then complete frames
    let mut consumed = 0usize;
    loop {
        let avail = conn.buf.len() - consumed;
        if !conn.handshaken {
            if avail < HANDSHAKE_BYTES {
                break;
            }
            let mut preamble = [0u8; HANDSHAKE_BYTES];
            preamble.copy_from_slice(&conn.buf[consumed..consumed + HANDSHAKE_BYTES]);
            match decode_handshake(&preamble) {
                Ok(_) => {
                    conn.handshaken = true;
                    consumed += HANDSHAKE_BYTES;
                    conn.offset += HANDSHAKE_BYTES as u64;
                    progressed = true;
                    continue;
                }
                Err(e) => {
                    report(0, &format!("handshake rejected: {e}"));
                    return PumpOutcome::Closed;
                }
            }
        }
        if avail < 4 {
            break;
        }
        let len = u32::from_be_bytes(
            conn.buf[consumed..consumed + 4]
                .try_into()
                .unwrap_or([0; 4]),
        ) as usize;
        if len > max_frame {
            stats.record_corrupt(4);
            report(
                conn.offset,
                &format!("hostile frame length {len} exceeds the {max_frame}-byte cap"),
            );
            return PumpOutcome::Closed;
        }
        if avail < 4 + len {
            break; // partial frame: wait for more bytes
        }
        match decode_after_len(&conn.buf[consumed + 4..consumed + 4 + len]) {
            Ok(msg) => {
                if inbox.send(InboxEvent::Msg(msg)).is_err() {
                    return PumpOutcome::Closed; // endpoint gone
                }
                consumed += 4 + len;
                conn.offset += 4 + len as u64;
                progressed = true;
            }
            Err(e) => {
                // CRC mismatch or structural damage: frame lost, stream
                // no longer trustworthy — tear the connection down
                stats.record_corrupt(4 + len as u64);
                report(conn.offset, &format!("frame rejected: {e}"));
                return PumpOutcome::Closed;
            }
        }
    }
    if consumed > 0 {
        conn.buf.drain(..consumed);
    }

    if eof {
        if conn.buf.is_empty() {
            return PumpOutcome::Closed; // clean EOF at a frame boundary
        }
        // torn frame: the peer died mid-frame (or mid-handshake)
        let (filled, detail) = if !conn.handshaken {
            (
                conn.buf.len(),
                format!(
                    "connection died {} bytes into the {HANDSHAKE_BYTES}-byte handshake",
                    conn.buf.len()
                ),
            )
        } else if conn.buf.len() < 4 {
            (
                conn.buf.len(),
                format!(
                    "torn frame: {} of 4 length-prefix bytes, then EOF",
                    conn.buf.len()
                ),
            )
        } else {
            let len = u32::from_be_bytes(conn.buf[..4].try_into().unwrap_or([0; 4])) as usize;
            (
                conn.buf.len(),
                format!(
                    "torn frame: {} of {len} body bytes, then EOF",
                    conn.buf.len() - 4
                ),
            )
        };
        stats.record_corrupt(filled as u64);
        report(conn.offset + filled as u64, &detail);
        return PumpOutcome::Closed;
    }
    if progressed {
        PumpOutcome::Progress
    } else {
        PumpOutcome::Idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Bind `n` loopback listeners on ephemeral ports and connect a
    /// full mesh of poll endpoints over them.
    fn loopback_fabric(n: usize) -> Vec<PollTcpEndpoint> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let peers: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(rank, listener)| {
                let mut config = TcpFabricConfig::new(rank, peers.clone());
                config.recv_timeout = Duration::from_secs(20);
                thread::spawn(move || {
                    PollTcpEndpoint::connect_with_listener(config, listener).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn point_to_point_and_self_send() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 1, Payload::Params(vec![1.0, -2.0])).unwrap();
        let m = a.recv_tagged(Some(1), 1).unwrap();
        assert_eq!(m.from, 1);
        assert_eq!(m.payload, Payload::Params(vec![1.0, -2.0]));
        a.send(0, 2, Payload::Control(9)).unwrap(); // self-send loops back
        assert_eq!(
            a.recv_tagged(Some(0), 2).unwrap().payload,
            Payload::Control(9)
        );
        a.close();
        b.close();
    }

    #[test]
    fn tagged_receive_buffers_out_of_order() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 2, Payload::Control(2)).unwrap();
        b.send(0, 1, Payload::Control(1)).unwrap();
        assert_eq!(a.recv_tagged(None, 1).unwrap().payload, Payload::Control(1));
        assert_eq!(
            a.recv_tagged(Some(1), 2).unwrap().payload,
            Payload::Control(2)
        );
        a.close();
        b.close();
    }

    #[test]
    fn byte_accounting_matches_encoded_frames() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let payloads = [
            Payload::Params(vec![0.5; 33]),
            Payload::Bucket {
                bucket: 1,
                n_buckets: 3,
                values: vec![2.0; 9],
            },
            Payload::SparseGrad {
                len: 16,
                indices: vec![3, 9],
                values: vec![1.5, -0.5],
            },
            Payload::Control(7),
        ];
        let mut expected = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            expected += encode_frame(1, i as u64, p).len() as u64;
            b.send(0, i as u64, p.clone()).unwrap();
        }
        for i in 0..payloads.len() {
            let _ = a.recv_tagged(Some(1), i as u64).unwrap();
        }
        assert_eq!(b.stats().total_bytes(), expected);
        assert_eq!(b.stats().total_messages(), payloads.len() as u64);
        a.close();
        b.close();
    }

    /// One driver thread multiplexes all peers: a 4-rank mesh exchanges
    /// ring traffic with every endpoint on its own thread.
    #[test]
    fn mesh_ring_traffic_across_threads() {
        let n = 4;
        let eps = loopback_fabric(n);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let me = ep.id();
                    let next = (me + 1) % n;
                    let prev = (me + n - 1) % n;
                    for step in 0..50u64 {
                        ep.send(next, step, Payload::Params(vec![me as f32, step as f32]))
                            .unwrap();
                        let m = ep.recv_tagged(Some(prev), step).unwrap();
                        assert_eq!(m.payload, Payload::Params(vec![prev as f32, step as f32]));
                    }
                    ep.close();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The write backpressure queue: a burst of large frames far beyond
    /// any kernel send buffer parks in the driver's per-peer queue and
    /// drains completely while the receiver slowly catches up.
    #[test]
    fn write_backpressure_queue_drains_a_large_burst() {
        let mut eps = loopback_fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let big = vec![1.5f32; 128 * 1024]; // 512 KiB per frame
        let frames = 32u64; // ~16 MiB total, far beyond SO_SNDBUF
        for i in 0..frames {
            b.send(0, i, Payload::Params(big.clone())).unwrap(); // never blocks
        }
        for i in 0..frames {
            let m = a.recv_tagged(Some(1), i).unwrap();
            assert!(matches!(m.payload, Payload::Params(v) if v.len() == big.len()));
        }
        a.close();
        b.close();
    }

    #[test]
    fn recv_watchdog_is_an_error_not_a_panic() {
        let mut eps = loopback_fabric(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let err = a
            .recv_deadline(None, Some(42), Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::RecvTimeout { rank: 0, .. }));
        a.close();
        b.close();
    }

    #[test]
    fn send_after_close_is_an_error_not_a_panic() {
        let mut eps = loopback_fabric(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.teardown();
        let err = a.send(1, 0, Payload::Control(1)).unwrap_err();
        assert_eq!(err, TransportError::Closed);
        b.close();
    }

    /// The poll fabric speaks the exact wire protocol of the blocking
    /// fabric: a mixed mesh (one blocking rank, one poll rank)
    /// exchanges traffic transparently.
    #[test]
    fn interoperates_with_the_blocking_fabric() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers = vec![
            l0.local_addr().unwrap().to_string(),
            l1.local_addr().unwrap().to_string(),
        ];
        let cfg0 = TcpFabricConfig::new(0, peers.clone());
        let cfg1 = TcpFabricConfig::new(1, peers);
        let t0 = thread::spawn(move || {
            crate::tcp::TcpEndpoint::connect_with_listener(cfg0, l0).unwrap()
        });
        let t1 = thread::spawn(move || PollTcpEndpoint::connect_with_listener(cfg1, l1).unwrap());
        let mut blocking = t0.join().unwrap();
        let mut polled = t1.join().unwrap();
        blocking
            .send(1, 5, Payload::Grads(vec![0.25, -0.75]))
            .unwrap();
        assert_eq!(
            polled.recv_tagged(Some(0), 5).unwrap().payload,
            Payload::Grads(vec![0.25, -0.75])
        );
        polled
            .send(
                0,
                6,
                Payload::SignGrad {
                    len: 5,
                    scale: 0.5,
                    bits: vec![0b10101],
                },
            )
            .unwrap();
        assert_eq!(
            blocking.recv_tagged(Some(1), 6).unwrap().payload,
            Payload::SignGrad {
                len: 5,
                scale: 0.5,
                bits: vec![0b10101],
            }
        );
        polled.close();
        blocking.close();
    }

    /// A CRC-corrupted frame surfaces as a typed `LinkFault` with the
    /// stream offset, tallies `corrupt_messages`, and never decodes —
    /// the same contract the blocking fabric's torn-frame suite proves.
    #[test]
    fn corrupt_frame_is_a_typed_fault_not_a_message() {
        // 2-rank fabric where the test plays rank 1 over raw sockets:
        // the answer thread completes rank 0's outbound handshake, then
        // the test dials rank 0's listener directly to inject damage.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers = vec![
            l0.local_addr().unwrap().to_string(),
            raw.local_addr().unwrap().to_string(),
        ];
        let mut cfg = TcpFabricConfig::new(0, peers);
        cfg.recv_timeout = Duration::from_secs(5);
        let answer = thread::spawn(move || {
            let (mut s, _) = raw.accept().unwrap();
            let mut preamble = [0u8; HANDSHAKE_BYTES];
            s.read_exact(&mut preamble).unwrap();
            decode_handshake(&preamble).unwrap();
            s.write_all(&encode_handshake()).unwrap();
            s
        });
        let mut ep = PollTcpEndpoint::connect_with_listener(cfg, l0).unwrap();
        let _peer_side = answer.join().unwrap();

        // dial rank 0's listener raw and send a handshake + a frame with
        // a flipped CRC byte, then a clean frame on a fresh connection
        let addr = ep.local_addr().to_string();
        let mut evil = TcpStream::connect(&addr).unwrap();
        evil.write_all(&encode_handshake()).unwrap();
        let mut good = encode_frame(1, 9, &Payload::Control(9)).to_vec();
        let last = good.len() - 1;
        good[last] ^= 0xFF; // break the CRC trailer
        evil.write_all(&good).unwrap();
        evil.flush().unwrap();

        // the fault arrives instead of a message
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let faults = ep.link_faults();
            if !faults.is_empty() {
                assert!(matches!(faults[0].error, TransportError::Protocol(_)));
                assert_eq!(faults[0].offset, HANDSHAKE_BYTES as u64);
                break;
            }
            assert!(Instant::now() < deadline, "fault never reported");
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(ep.stats().corrupt_messages(), 1);

        // the damaged connection is torn down; a fresh one still works
        let mut clean = TcpStream::connect(&addr).unwrap();
        clean.write_all(&encode_handshake()).unwrap();
        clean
            .write_all(&encode_frame(1, 10, &Payload::Control(10)))
            .unwrap();
        let m = ep
            .recv_deadline(None, Some(10), Duration::from_secs(5))
            .unwrap();
        assert_eq!(m.payload, Payload::Control(10));
        ep.close();
    }

    /// A hostile length prefix is rejected before any allocation.
    #[test]
    fn hostile_length_prefix_is_rejected() {
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let peers = vec![
            l0.local_addr().unwrap().to_string(),
            raw.local_addr().unwrap().to_string(),
        ];
        let mut cfg = TcpFabricConfig::new(0, peers);
        cfg.recv_timeout = Duration::from_secs(5);
        cfg.max_frame_bytes = 1024;
        let answer = thread::spawn(move || {
            let (mut s, _) = raw.accept().unwrap();
            let mut preamble = [0u8; HANDSHAKE_BYTES];
            s.read_exact(&mut preamble).unwrap();
            s.write_all(&encode_handshake()).unwrap();
            s
        });
        let mut ep = PollTcpEndpoint::connect_with_listener(cfg, l0).unwrap();
        drop(answer.join().unwrap());

        let mut evil = TcpStream::connect(ep.local_addr()).unwrap();
        evil.write_all(&encode_handshake()).unwrap();
        evil.write_all(&u32::MAX.to_be_bytes()).unwrap(); // 4 GiB "frame"
        evil.flush().unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let faults = ep.link_faults();
            if !faults.is_empty() {
                let TransportError::Protocol(detail) = &faults[0].error else {
                    panic!("expected a Protocol fault");
                };
                assert!(detail.contains("hostile frame length"), "{detail}");
                break;
            }
            assert!(Instant::now() < deadline, "fault never reported");
            thread::sleep(Duration::from_millis(10));
        }
        ep.close();
    }
}
