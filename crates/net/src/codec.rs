//! Binary wire codec for fabric messages.
//!
//! One encoded frame per [`Msg`]:
//!
//! ```text
//! [u32 rest_len][u32 from][u64 tag][u8 kind][body][u32 crc32]
//! ```
//!
//! The trailing CRC-32 (IEEE) covers everything after the length
//! prefix — `[from][tag][kind][body]` — and is verified before any
//! body byte is interpreted, so a bit-flipped frame is rejected as
//! [`FrameError::Crc`] instead of decoding into garbage parameters.
//! `rest_len` includes the trailer.
//!
//! Body layouts by kind (big-endian, length prefixes inline):
//!
//! * `Params`/`Grads`: `u32 count` + `count × f32`
//! * `Flags`:          `u32 count` + `count × u8`
//! * `Samples`:        three sections — `u32 count + count × f32` data,
//!   `u32 count + count × u64` targets, `u32 count + count × u64` dims
//! * `Control`:        `u64 code`
//! * `Predict`:        two sections — `u32 count + count × f32` data,
//!   `u32 count + count × u64` dims
//! * `Logits`:         `u32 count + count × f32` rows, then `u64 classes`
//! * `ShardMap`:       `u64 version` + `u64 total` + `u32 count + count × u64` starts
//! * `ShardPush`/`ShardPull`: `u32 count` + `count × f32` (Params-shaped)
//! * `Bucket`:     `u32 bucket` + `u32 n_buckets` + `u32 count + count × f32` values
//! * `SparseGrad`: `u32 len` + `u32 count + count × u32` indices +
//!   `u32 count + count × f32` values
//! * `SignGrad`:   `u32 len` + `f32 scale` + `u32 count + count × u8` bits
//! * `LowRank`:    `u32 rows` + `u32 cols` + `u32 rank` +
//!   `u32 count + count × f32` P + `u32 count + count × f32` Q
//!
//! Every inner `u32 count` is validated against the bytes actually
//! remaining in the frame *before* anything is allocated, so a hostile
//! count can never drive an oversized allocation — decode is total:
//! any byte string either decodes or returns a typed [`FrameError`],
//! never panics (the mutational fuzzer in `tests/frame_fuzz.rs` proves
//! this over every payload kind).
//!
//! Floats travel as raw IEEE-754 bits, so a decoded vector is
//! bit-identical to the encoded one (NaN payloads included) — the
//! property the loopback determinism tests rely on.
//!
//! ## Connection handshake
//!
//! Before any frame flows on a TCP connection, each side sends an
//! 8-byte preamble `[u32 magic][u16 version][u16 features]`
//! ([`encode_handshake`]). Mixed protocol versions or a non-SelSync
//! peer fail fast with [`FrameError::VersionMismatch`] /
//! [`FrameError::BadMagic`] instead of mis-parsing each other's
//! frames indefinitely.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use selsync_comm::{Msg, Payload, ShardSpec};
use std::fmt;

const KIND_PARAMS: u8 = 0;
const KIND_GRADS: u8 = 1;
const KIND_FLAGS: u8 = 2;
const KIND_SAMPLES: u8 = 3;
const KIND_CONTROL: u8 = 4;
const KIND_PREDICT: u8 = 5;
const KIND_LOGITS: u8 = 6;
const KIND_SHARD_MAP: u8 = 7;
const KIND_SHARD_PUSH: u8 = 8;
const KIND_SHARD_PULL: u8 = 9;
const KIND_BUCKET: u8 = 10;
const KIND_SPARSE_GRAD: u8 = 11;
const KIND_SIGN_GRAD: u8 = 12;
const KIND_LOW_RANK: u8 = 13;

/// Wire-protocol magic: `b"SSYN"` as a big-endian `u32`. A peer that
/// opens with anything else is not speaking this protocol at all.
pub const PROTOCOL_MAGIC: u32 = u32::from_be_bytes(*b"SSYN");

/// Wire-protocol version. Bumped on any incompatible frame-format
/// change; mixed versions refuse to talk rather than mis-parse.
pub const PROTOCOL_VERSION: u16 = 2;

/// Feature bit: frames carry a CRC-32 trailer.
pub const FEATURE_CRC32: u16 = 0x0001;

/// The feature set this build advertises in its handshake.
pub const PROTOCOL_FEATURES: u16 = FEATURE_CRC32;

/// Bytes of the connection preamble: `[u32 magic][u16 version][u16 features]`.
pub const HANDSHAKE_BYTES: usize = 8;

/// Bytes of the CRC-32 trailer closing every frame.
pub const CRC_BYTES: usize = 4;

/// The fixed bytes of a frame after the length prefix that are not
/// body: `u32 from` + `u64 tag` + `u8 kind` + `u32 crc`.
const MIN_REST_BYTES: usize = 4 + 8 + 1 + CRC_BYTES;

/// Decoding failure; encoding cannot fail. Every decode path is total:
/// arbitrary bytes produce one of these variants, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame ended before its declared length, or an inner section's
    /// `u32 count` asks for more bytes than the frame holds.
    Truncated {
        /// Bytes the frame declared or the section required.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Unknown payload kind byte.
    BadKind(u8),
    /// Frame bytes left over after the body was fully decoded.
    TrailingBytes(usize),
    /// The CRC-32 trailer disagrees with the received bytes: the frame
    /// was damaged in flight.
    Crc {
        /// Checksum the sender stamped on the frame.
        expected: u32,
        /// Checksum computed over the bytes as received.
        computed: u32,
    },
    /// The connection preamble did not open with [`PROTOCOL_MAGIC`] —
    /// the peer is not speaking this protocol.
    BadMagic(u32),
    /// The peer speaks a different protocol version; refuse to talk
    /// rather than mis-parse its frames.
    VersionMismatch {
        /// Version this build implements.
        ours: u16,
        /// Version the peer advertised.
        theirs: u16,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            FrameError::BadKind(k) => write!(f, "unknown payload kind {k}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload body"),
            FrameError::Crc { expected, computed } => write!(
                f,
                "frame CRC mismatch: expected {expected:#010x}, computed {computed:#010x}"
            ),
            FrameError::BadMagic(m) => {
                write!(
                    f,
                    "bad protocol magic {m:#010x}, expected {PROTOCOL_MAGIC:#010x}"
                )
            }
            FrameError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3 reflected polynomial) — local implementation, no
// external dependency. Table built at compile time. Mirrors the
// checkpoint checksum in `selsync-core` (`net` deliberately does not
// depend on `core`).
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (IEEE, as used by zip/gzip/ethernet) — the checksum
/// stamped on every frame trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A decoded connection preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Protocol version the peer implements.
    pub version: u16,
    /// Feature bits the peer advertises.
    pub features: u16,
}

/// Encode the 8-byte connection preamble this build sends on every new
/// TCP connection: `[u32 magic][u16 version][u16 features]`.
pub fn encode_handshake() -> [u8; HANDSHAKE_BYTES] {
    let mut out = [0u8; HANDSHAKE_BYTES];
    out[..4].copy_from_slice(&PROTOCOL_MAGIC.to_be_bytes());
    out[4..6].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    out[6..8].copy_from_slice(&PROTOCOL_FEATURES.to_be_bytes());
    out
}

/// Decode and validate a peer's connection preamble.
///
/// # Errors
/// [`FrameError::BadMagic`] if the peer is not speaking this protocol;
/// [`FrameError::VersionMismatch`] if it speaks an incompatible
/// version. Unknown *feature* bits are tolerated (they are advertisory,
/// not load-bearing) and returned for the caller to inspect.
pub fn decode_handshake(raw: &[u8; HANDSHAKE_BYTES]) -> Result<Handshake, FrameError> {
    // lint:allow(unwrap-in-prod): fixed-size sub-slices of an 8-byte
    // array always convert
    let magic = u32::from_be_bytes(raw[..4].try_into().unwrap());
    if magic != PROTOCOL_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    // lint:allow(unwrap-in-prod): fixed-size sub-slice, see above
    let version = u16::from_be_bytes(raw[4..6].try_into().unwrap());
    // lint:allow(unwrap-in-prod): fixed-size sub-slice, see above
    let features = u16::from_be_bytes(raw[6..8].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(FrameError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    Ok(Handshake { version, features })
}

fn kind_of(payload: &Payload) -> u8 {
    match payload {
        // SharedParams is an in-process optimization; on the wire it is
        // indistinguishable from Params (decode always yields Params)
        Payload::Params(_) | Payload::SharedParams(_) => KIND_PARAMS,
        Payload::Grads(_) => KIND_GRADS,
        Payload::Flags(_) => KIND_FLAGS,
        Payload::Samples { .. } => KIND_SAMPLES,
        Payload::Control(_) => KIND_CONTROL,
        Payload::Predict { .. } => KIND_PREDICT,
        Payload::Logits { .. } => KIND_LOGITS,
        Payload::ShardMap(_) => KIND_SHARD_MAP,
        Payload::ShardPush(_) => KIND_SHARD_PUSH,
        Payload::ShardPull(_) => KIND_SHARD_PULL,
        Payload::Bucket { .. } => KIND_BUCKET,
        Payload::SparseGrad { .. } => KIND_SPARSE_GRAD,
        Payload::SignGrad { .. } => KIND_SIGN_GRAD,
        Payload::LowRank { .. } => KIND_LOW_RANK,
    }
}

/// Encode one message as a complete wire frame, CRC trailer included.
///
/// The returned buffer's length always equals
/// [`Payload::wire_bytes`] — asserted here, so any drift between the
/// analytic accounting and the real codec fails loudly rather than
/// skewing `CommStats`.
pub fn encode_frame(from: usize, tag: u64, payload: &Payload) -> Bytes {
    let wire = payload.wire_bytes() as usize;
    let mut buf = BytesMut::with_capacity(wire);
    buf.put_u32((wire - 4) as u32);
    buf.put_u32(from as u32);
    buf.put_u64(tag);
    buf.put_u8(kind_of(payload));
    match payload {
        Payload::Params(v) | Payload::Grads(v) => put_f32_section(&mut buf, v),
        Payload::SharedParams(v) => put_f32_section(&mut buf, v),
        Payload::Flags(v) => {
            buf.put_u32(v.len() as u32);
            buf.put_slice(v);
        }
        Payload::Samples {
            data,
            targets,
            dims,
        } => {
            put_f32_section(&mut buf, data);
            put_u64_section(&mut buf, targets);
            put_u64_section(&mut buf, dims);
        }
        Payload::Control(code) => buf.put_u64(*code),
        Payload::Predict { data, dims } => {
            put_f32_section(&mut buf, data);
            put_u64_section(&mut buf, dims);
        }
        Payload::Logits { rows, classes } => {
            put_f32_section(&mut buf, rows);
            buf.put_u64(*classes as u64);
        }
        Payload::ShardMap(spec) => {
            buf.put_u64(spec.version);
            buf.put_u64(spec.total);
            buf.put_u32(spec.starts.len() as u32);
            for s in &spec.starts {
                buf.put_u64(*s);
            }
        }
        // shard push/pull bodies are deliberately Params-shaped so the
        // K=1 sharded path moves exactly the monolithic byte count
        Payload::ShardPush(v) | Payload::ShardPull(v) => put_f32_section(&mut buf, v),
        Payload::Bucket {
            bucket,
            n_buckets,
            values,
        } => {
            buf.put_u32(*bucket);
            buf.put_u32(*n_buckets);
            put_f32_section(&mut buf, values);
        }
        Payload::SparseGrad {
            len,
            indices,
            values,
        } => {
            buf.put_u32(*len);
            put_u32_section(&mut buf, indices);
            put_f32_section(&mut buf, values);
        }
        Payload::SignGrad { len, scale, bits } => {
            buf.put_u32(*len);
            buf.put_f32(*scale);
            buf.put_u32(bits.len() as u32);
            buf.put_slice(bits);
        }
        Payload::LowRank {
            rows,
            cols,
            rank,
            p,
            q,
        } => {
            buf.put_u32(*rows);
            buf.put_u32(*cols);
            buf.put_u32(*rank);
            put_f32_section(&mut buf, p);
            put_f32_section(&mut buf, q);
        }
    }
    // CRC covers everything after the length prefix
    let crc = crc32(&buf[4..]);
    buf.put_u32(crc);
    assert_eq!(
        buf.len(),
        wire,
        "encoded frame length diverged from Payload::wire_bytes"
    );
    buf.freeze()
}

fn put_f32_section(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32(v.len() as u32);
    for x in v {
        buf.put_f32(*x);
    }
}

fn put_u64_section(buf: &mut BytesMut, v: &[usize]) {
    buf.put_u32(v.len() as u32);
    for x in v {
        buf.put_u64(*x as u64);
    }
}

fn put_u32_section(buf: &mut BytesMut, v: &[u32]) {
    buf.put_u32(v.len() as u32);
    for x in v {
        buf.put_u32(*x);
    }
}

/// Decode a complete frame (as produced by [`encode_frame`]) back into
/// a [`Msg`], verifying the CRC trailer first.
pub fn decode_frame(frame: &[u8]) -> Result<Msg, FrameError> {
    if frame.len() < 4 {
        return Err(FrameError::Truncated {
            needed: 4,
            have: frame.len(),
        });
    }
    // lint:allow(unwrap-in-prod): frame.len() >= 4 checked above, so the
    // 4-byte slice always converts into [u8; 4]
    let declared = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
    let rest = &frame[4..];
    if rest.len() != declared {
        return Err(FrameError::Truncated {
            needed: declared,
            have: rest.len(),
        });
    }
    decode_after_len(rest)
}

/// Decode the portion of a frame after the `u32 rest_len` prefix — what
/// the TCP reader hands over once it has read a full frame body. The
/// CRC trailer is verified before any body byte is interpreted.
pub fn decode_after_len(buf: &[u8]) -> Result<Msg, FrameError> {
    if buf.len() < MIN_REST_BYTES {
        return Err(FrameError::Truncated {
            needed: MIN_REST_BYTES,
            have: buf.len(),
        });
    }
    let (covered, trailer) = buf.split_at(buf.len() - CRC_BYTES);
    // lint:allow(unwrap-in-prod): split_at leaves exactly CRC_BYTES = 4
    let expected = u32::from_be_bytes(trailer.try_into().unwrap());
    let computed = crc32(covered);
    if computed != expected {
        return Err(FrameError::Crc { expected, computed });
    }
    let mut buf = covered;
    let from = get_u32_checked(&mut buf)? as usize;
    let tag = get_u64_checked(&mut buf)?;
    let kind = {
        let b = take(&mut buf, 1)?;
        b[0]
    };
    let payload = match kind {
        KIND_PARAMS => Payload::Params(get_f32_section(&mut buf)?),
        KIND_GRADS => Payload::Grads(get_f32_section(&mut buf)?),
        KIND_FLAGS => Payload::Flags(take_section(&mut buf, 1)?.to_vec()),
        KIND_SAMPLES => {
            let data = get_f32_section(&mut buf)?;
            let targets = get_u64_section(&mut buf)?;
            let dims = get_u64_section(&mut buf)?;
            Payload::Samples {
                data,
                targets,
                dims,
            }
        }
        KIND_CONTROL => Payload::Control(get_u64_checked(&mut buf)?),
        KIND_PREDICT => {
            let data = get_f32_section(&mut buf)?;
            let dims = get_u64_section(&mut buf)?;
            Payload::Predict { data, dims }
        }
        KIND_LOGITS => {
            let rows = get_f32_section(&mut buf)?;
            let classes = get_u64_checked(&mut buf)? as usize;
            Payload::Logits { rows, classes }
        }
        KIND_SHARD_MAP => {
            let version = get_u64_checked(&mut buf)?;
            let total = get_u64_checked(&mut buf)?;
            // the count is validated against the frame's remaining bytes
            // BEFORE any allocation — a hostile count of 4 billion must
            // not reserve 32 GB
            let raw = take_section(&mut buf, 8)?;
            let starts = raw
                .chunks_exact(8)
                // lint:allow(unwrap-in-prod): chunks_exact(8) yields 8-byte slices
                .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
                .collect();
            Payload::ShardMap(ShardSpec {
                version,
                total,
                starts,
            })
        }
        KIND_SHARD_PUSH => Payload::ShardPush(get_f32_section(&mut buf)?),
        KIND_SHARD_PULL => Payload::ShardPull(get_f32_section(&mut buf)?),
        KIND_BUCKET => {
            let bucket = get_u32_checked(&mut buf)?;
            let n_buckets = get_u32_checked(&mut buf)?;
            let values = get_f32_section(&mut buf)?;
            // cross-field consistency (bucket < n_buckets) is the
            // receiver's protocol layer's concern, like ShardMap's
            // range sanity: the frame itself is well-formed
            Payload::Bucket {
                bucket,
                n_buckets,
                values,
            }
        }
        KIND_SPARSE_GRAD => {
            let len = get_u32_checked(&mut buf)?;
            let indices = get_u32_section(&mut buf)?;
            let values = get_f32_section(&mut buf)?;
            Payload::SparseGrad {
                len,
                indices,
                values,
            }
        }
        KIND_SIGN_GRAD => {
            let len = get_u32_checked(&mut buf)?;
            let scale = {
                let b = take(&mut buf, 4)?;
                // lint:allow(unwrap-in-prod): take() returned exactly 4 bytes
                f32::from_bits(u32::from_be_bytes(b.try_into().unwrap()))
            };
            let bits = take_section(&mut buf, 1)?.to_vec();
            Payload::SignGrad { len, scale, bits }
        }
        KIND_LOW_RANK => {
            let rows = get_u32_checked(&mut buf)?;
            let cols = get_u32_checked(&mut buf)?;
            let rank = get_u32_checked(&mut buf)?;
            let p = get_f32_section(&mut buf)?;
            let q = get_f32_section(&mut buf)?;
            Payload::LowRank {
                rows,
                cols,
                rank,
                p,
                q,
            }
        }
        other => return Err(FrameError::BadKind(other)),
    };
    if buf.has_remaining() {
        return Err(FrameError::TrailingBytes(buf.remaining()));
    }
    Ok(Msg { from, tag, payload })
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], FrameError> {
    if buf.len() < n {
        return Err(FrameError::Truncated {
            needed: n,
            have: buf.len(),
        });
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Read an inner section's `u32 count` and hand back its `count × elem`
/// raw bytes, rejecting before any allocation or overflow if the frame
/// does not actually hold that many bytes.
fn take_section<'a>(buf: &mut &'a [u8], elem: usize) -> Result<&'a [u8], FrameError> {
    let count = get_u32_checked(buf)? as u64;
    let needed = count * elem as u64; // <= (2^32 - 1) * 8, cannot overflow u64
    if needed > buf.len() as u64 {
        return Err(FrameError::Truncated {
            needed: usize::try_from(needed).unwrap_or(usize::MAX),
            have: buf.len(),
        });
    }
    take(buf, needed as usize)
}

fn get_u32_checked(buf: &mut &[u8]) -> Result<u32, FrameError> {
    let b = take(buf, 4)?;
    // lint:allow(unwrap-in-prod): take() returned exactly 4 bytes, so the
    // conversion into [u8; 4] cannot fail
    Ok(u32::from_be_bytes(b.try_into().unwrap()))
}

fn get_u64_checked(buf: &mut &[u8]) -> Result<u64, FrameError> {
    let b = take(buf, 8)?;
    // lint:allow(unwrap-in-prod): take() returned exactly 8 bytes, so the
    // conversion into [u8; 8] cannot fail
    Ok(u64::from_be_bytes(b.try_into().unwrap()))
}

fn get_f32_section(buf: &mut &[u8]) -> Result<Vec<f32>, FrameError> {
    let raw = take_section(buf, 4)?;
    Ok(raw
        .chunks_exact(4)
        // lint:allow(unwrap-in-prod): chunks_exact(4) yields 4-byte slices
        .map(|c| f32::from_bits(u32::from_be_bytes(c.try_into().unwrap())))
        .collect())
}

fn get_u32_section(buf: &mut &[u8]) -> Result<Vec<u32>, FrameError> {
    let raw = take_section(buf, 4)?;
    Ok(raw
        .chunks_exact(4)
        // lint:allow(unwrap-in-prod): chunks_exact(4) yields 4-byte slices
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect())
}

fn get_u64_section(buf: &mut &[u8]) -> Result<Vec<usize>, FrameError> {
    let raw = take_section(buf, 8)?;
    Ok(raw
        .chunks_exact(8)
        // lint:allow(unwrap-in-prod): chunks_exact(8) yields 8-byte slices
        .map(|c| u64::from_be_bytes(c.try_into().unwrap()) as usize)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(from: usize, tag: u64, payload: Payload) -> Msg {
        let frame = encode_frame(from, tag, &payload);
        assert_eq!(frame.len() as u64, payload.wire_bytes());
        decode_frame(&frame).expect("decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let cases = vec![
            Payload::Params(vec![1.0, -2.5, f32::NAN, 0.0]),
            Payload::Grads(vec![]),
            Payload::Flags(vec![0, 1, 1, 0, 1]),
            Payload::Samples {
                data: vec![0.5; 7],
                targets: vec![3, 1, 4],
                dims: vec![3, 8, 8],
            },
            Payload::Control(u64::MAX),
            Payload::Predict {
                data: vec![1.5, -0.25, 42.0, 0.0],
                dims: vec![2, 2],
            },
            Payload::Logits {
                rows: vec![0.1, -9.0, 7.5],
                classes: 3,
            },
            Payload::ShardMap(ShardSpec {
                version: 1,
                total: 1000,
                starts: vec![0, 250, 500, 750],
            }),
            Payload::ShardPush(vec![2.0, -0.5, 9.75]),
            Payload::ShardPull(vec![]),
            Payload::Bucket {
                bucket: 3,
                n_buckets: 7,
                values: vec![1.0, -2.0, 0.5],
            },
            Payload::SparseGrad {
                len: 64,
                indices: vec![0, 31, 63],
                values: vec![0.25, -1.5, 8.0],
            },
            Payload::SignGrad {
                len: 12,
                scale: 0.125,
                bits: vec![0b1010_1010, 0b0000_1111],
            },
            Payload::LowRank {
                rows: 3,
                cols: 2,
                rank: 1,
                p: vec![1.0, 2.0, 3.0],
                q: vec![-1.0, 0.5],
            },
        ];
        for (i, p) in cases.into_iter().enumerate() {
            let m = roundtrip(i, i as u64 * 1000, p.clone());
            assert_eq!(m.from, i);
            assert_eq!(m.tag, i as u64 * 1000);
            match (&m.payload, &p) {
                // NaN != NaN under PartialEq; compare bit patterns
                (Payload::Params(a), Payload::Params(b)) => {
                    assert_eq!(
                        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                }
                (got, want) => assert_eq!(got, want),
            }
        }
    }

    #[test]
    fn truncated_frames_error() {
        let frame = encode_frame(0, 7, &Payload::Params(vec![1.0, 2.0]));
        for cut in 1..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    /// Recompute and overwrite the CRC trailer after a test mutated the
    /// covered bytes, so the mutation under test is reached at all.
    fn restamp(frame: &mut [u8]) {
        let end = frame.len() - CRC_BYTES;
        let crc = crc32(&frame[4..end]);
        frame[end..].copy_from_slice(&crc.to_be_bytes());
    }

    #[test]
    fn bad_kind_and_trailing_bytes_error() {
        let mut frame = encode_frame(0, 0, &Payload::Control(1)).to_vec();
        let kind_pos = 4 + 4 + 8;
        frame[kind_pos] = 200;
        restamp(&mut frame);
        assert_eq!(decode_frame(&frame), Err(FrameError::BadKind(200)));

        let mut padded = encode_frame(0, 0, &Payload::Control(1)).to_vec();
        let crc_at = padded.len() - CRC_BYTES;
        padded.insert(crc_at, 0); // extra body byte before the trailer
        let declared = (padded.len() - 4) as u32;
        padded[..4].copy_from_slice(&declared.to_be_bytes());
        restamp(&mut padded);
        assert_eq!(decode_frame(&padded), Err(FrameError::TrailingBytes(1)));
    }

    #[test]
    fn flipped_bit_is_caught_by_crc() {
        let frame = encode_frame(3, 9, &Payload::Params(vec![1.0, 2.0, 3.0])).to_vec();
        // flip one bit in every covered byte position in turn; the CRC
        // must reject each damaged frame
        for pos in 4..frame.len() - CRC_BYTES {
            let mut bad = frame.clone();
            bad[pos] ^= 0x10;
            match decode_frame(&bad) {
                Err(FrameError::Crc { .. }) => {}
                other => panic!("flip at {pos} decoded as {other:?}"),
            }
        }
        // damage confined to the trailer itself is also a CRC error
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(decode_frame(&bad), Err(FrameError::Crc { .. })));
    }

    #[test]
    fn hostile_section_count_is_rejected_without_allocation() {
        // a ShardMap frame whose inner count claims 2^32-1 entries: the
        // decoder must reject it via Truncated, not reserve ~32 GB
        let mut frame = encode_frame(
            0,
            0,
            &Payload::ShardMap(ShardSpec {
                version: 1,
                total: 10,
                starts: vec![0],
            }),
        )
        .to_vec();
        let count_pos = 4 + 4 + 8 + 1 + 8 + 8;
        frame[count_pos..count_pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        restamp(&mut frame);
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn hostile_sparse_index_count_is_rejected_without_allocation() {
        // same property as the ShardMap case, for the u32 index section:
        // a count claiming 2^32-1 indices must fail via Truncated before
        // any allocation happens
        let mut frame = encode_frame(
            0,
            0,
            &Payload::SparseGrad {
                len: 8,
                indices: vec![1],
                values: vec![2.0],
            },
        )
        .to_vec();
        let count_pos = 4 + 4 + 8 + 1 + 4; // header + dense-len field
        frame[count_pos..count_pos + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        restamp(&mut frame);
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn handshake_roundtrips_and_rejects_strangers() {
        let raw = encode_handshake();
        let hs = decode_handshake(&raw).expect("own handshake");
        assert_eq!(hs.version, PROTOCOL_VERSION);
        assert_eq!(hs.features, PROTOCOL_FEATURES);

        let mut alien = raw;
        alien[0] ^= 0xFF;
        assert!(matches!(
            decode_handshake(&alien),
            Err(FrameError::BadMagic(_))
        ));

        let mut future = raw;
        future[4..6].copy_from_slice(&(PROTOCOL_VERSION + 1).to_be_bytes());
        assert_eq!(
            decode_handshake(&future),
            Err(FrameError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: PROTOCOL_VERSION + 1,
            })
        );

        // unknown feature bits are advertisory, not fatal
        let mut extra = raw;
        extra[7] |= 0x80;
        assert!(decode_handshake(&extra).is_ok());
    }
}
