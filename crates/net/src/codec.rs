//! Binary wire codec for fabric messages.
//!
//! One encoded frame per [`Msg`]:
//!
//! ```text
//! [u32 rest_len][u32 from][u64 tag][u8 kind][body]
//! ```
//!
//! Body layouts by kind (big-endian, length prefixes inline):
//!
//! * `Params`/`Grads`: `u32 count` + `count × f32`
//! * `Flags`:          `u32 count` + `count × u8`
//! * `Samples`:        three sections — `u32 count + count × f32` data,
//!   `u32 count + count × u64` targets, `u32 count + count × u64` dims
//! * `Control`:        `u64 code`
//! * `Predict`:        two sections — `u32 count + count × f32` data,
//!   `u32 count + count × u64` dims
//! * `Logits`:         `u32 count + count × f32` rows, then `u64 classes`
//! * `ShardMap`:       `u64 version` + `u64 total` + `u32 count + count × u64` starts
//! * `ShardPush`/`ShardPull`: `u32 count` + `count × f32` (Params-shaped)
//!
//! Floats travel as raw IEEE-754 bits, so a decoded vector is
//! bit-identical to the encoded one (NaN payloads included) — the
//! property the loopback determinism tests rely on.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use selsync_comm::{Msg, Payload, ShardSpec};
use std::fmt;

const KIND_PARAMS: u8 = 0;
const KIND_GRADS: u8 = 1;
const KIND_FLAGS: u8 = 2;
const KIND_SAMPLES: u8 = 3;
const KIND_CONTROL: u8 = 4;
const KIND_PREDICT: u8 = 5;
const KIND_LOGITS: u8 = 6;
const KIND_SHARD_MAP: u8 = 7;
const KIND_SHARD_PUSH: u8 = 8;
const KIND_SHARD_PULL: u8 = 9;

/// Decoding failure; encoding cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame ended before its declared length.
    Truncated {
        /// Bytes the frame declared or the section required.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Unknown payload kind byte.
    BadKind(u8),
    /// Frame bytes left over after the body was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            CodecError::BadKind(k) => write!(f, "unknown payload kind {k}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload body"),
        }
    }
}

impl std::error::Error for CodecError {}

fn kind_of(payload: &Payload) -> u8 {
    match payload {
        // SharedParams is an in-process optimization; on the wire it is
        // indistinguishable from Params (decode always yields Params)
        Payload::Params(_) | Payload::SharedParams(_) => KIND_PARAMS,
        Payload::Grads(_) => KIND_GRADS,
        Payload::Flags(_) => KIND_FLAGS,
        Payload::Samples { .. } => KIND_SAMPLES,
        Payload::Control(_) => KIND_CONTROL,
        Payload::Predict { .. } => KIND_PREDICT,
        Payload::Logits { .. } => KIND_LOGITS,
        Payload::ShardMap(_) => KIND_SHARD_MAP,
        Payload::ShardPush(_) => KIND_SHARD_PUSH,
        Payload::ShardPull(_) => KIND_SHARD_PULL,
    }
}

/// Encode one message as a complete wire frame.
///
/// The returned buffer's length always equals
/// [`Payload::wire_bytes`] — asserted here, so any drift between the
/// analytic accounting and the real codec fails loudly rather than
/// skewing `CommStats`.
pub fn encode_frame(from: usize, tag: u64, payload: &Payload) -> Bytes {
    let wire = payload.wire_bytes() as usize;
    let mut buf = BytesMut::with_capacity(wire);
    buf.put_u32((wire - 4) as u32);
    buf.put_u32(from as u32);
    buf.put_u64(tag);
    buf.put_u8(kind_of(payload));
    match payload {
        Payload::Params(v) | Payload::Grads(v) => put_f32_section(&mut buf, v),
        Payload::SharedParams(v) => put_f32_section(&mut buf, v),
        Payload::Flags(v) => {
            buf.put_u32(v.len() as u32);
            buf.put_slice(v);
        }
        Payload::Samples {
            data,
            targets,
            dims,
        } => {
            put_f32_section(&mut buf, data);
            put_u64_section(&mut buf, targets);
            put_u64_section(&mut buf, dims);
        }
        Payload::Control(code) => buf.put_u64(*code),
        Payload::Predict { data, dims } => {
            put_f32_section(&mut buf, data);
            put_u64_section(&mut buf, dims);
        }
        Payload::Logits { rows, classes } => {
            put_f32_section(&mut buf, rows);
            buf.put_u64(*classes as u64);
        }
        Payload::ShardMap(spec) => {
            buf.put_u64(spec.version);
            buf.put_u64(spec.total);
            buf.put_u32(spec.starts.len() as u32);
            for s in &spec.starts {
                buf.put_u64(*s);
            }
        }
        // shard push/pull bodies are deliberately Params-shaped so the
        // K=1 sharded path moves exactly the monolithic byte count
        Payload::ShardPush(v) | Payload::ShardPull(v) => put_f32_section(&mut buf, v),
    }
    assert_eq!(
        buf.len(),
        wire,
        "encoded frame length diverged from Payload::wire_bytes"
    );
    buf.freeze()
}

fn put_f32_section(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32(v.len() as u32);
    for x in v {
        buf.put_f32(*x);
    }
}

fn put_u64_section(buf: &mut BytesMut, v: &[usize]) {
    buf.put_u32(v.len() as u32);
    for x in v {
        buf.put_u64(*x as u64);
    }
}

/// Decode a complete frame (as produced by [`encode_frame`]) back into
/// a [`Msg`].
pub fn decode_frame(frame: &[u8]) -> Result<Msg, CodecError> {
    if frame.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            have: frame.len(),
        });
    }
    // lint:allow(unwrap-in-prod): frame.len() >= 4 checked above, so the
    // 4-byte slice always converts into [u8; 4]
    let declared = u32::from_be_bytes(frame[..4].try_into().unwrap()) as usize;
    let rest = &frame[4..];
    if rest.len() != declared {
        return Err(CodecError::Truncated {
            needed: declared,
            have: rest.len(),
        });
    }
    decode_after_len(rest)
}

/// Decode the portion of a frame after the `u32 rest_len` prefix — what
/// the TCP reader hands over once it has read a full frame body.
pub fn decode_after_len(mut buf: &[u8]) -> Result<Msg, CodecError> {
    let from = get_u32_checked(&mut buf)? as usize;
    let tag = get_u64_checked(&mut buf)?;
    let kind = {
        let b = take(&mut buf, 1)?;
        b[0]
    };
    let payload = match kind {
        KIND_PARAMS => Payload::Params(get_f32_section(&mut buf)?),
        KIND_GRADS => Payload::Grads(get_f32_section(&mut buf)?),
        KIND_FLAGS => {
            let count = get_u32_checked(&mut buf)? as usize;
            Payload::Flags(take(&mut buf, count)?.to_vec())
        }
        KIND_SAMPLES => {
            let data = get_f32_section(&mut buf)?;
            let targets = get_u64_section(&mut buf)?;
            let dims = get_u64_section(&mut buf)?;
            Payload::Samples {
                data,
                targets,
                dims,
            }
        }
        KIND_CONTROL => Payload::Control(get_u64_checked(&mut buf)?),
        KIND_PREDICT => {
            let data = get_f32_section(&mut buf)?;
            let dims = get_u64_section(&mut buf)?;
            Payload::Predict { data, dims }
        }
        KIND_LOGITS => {
            let rows = get_f32_section(&mut buf)?;
            let classes = get_u64_checked(&mut buf)? as usize;
            Payload::Logits { rows, classes }
        }
        KIND_SHARD_MAP => {
            let version = get_u64_checked(&mut buf)?;
            let total = get_u64_checked(&mut buf)?;
            let count = get_u32_checked(&mut buf)? as usize;
            let mut starts = Vec::with_capacity(count);
            for _ in 0..count {
                starts.push(get_u64_checked(&mut buf)?);
            }
            Payload::ShardMap(ShardSpec {
                version,
                total,
                starts,
            })
        }
        KIND_SHARD_PUSH => Payload::ShardPush(get_f32_section(&mut buf)?),
        KIND_SHARD_PULL => Payload::ShardPull(get_f32_section(&mut buf)?),
        other => return Err(CodecError::BadKind(other)),
    };
    if buf.has_remaining() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(Msg { from, tag, payload })
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::Truncated {
            needed: n,
            have: buf.len(),
        });
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn get_u32_checked(buf: &mut &[u8]) -> Result<u32, CodecError> {
    let b = take(buf, 4)?;
    // lint:allow(unwrap-in-prod): take() returned exactly 4 bytes, so the
    // conversion into [u8; 4] cannot fail
    Ok(u32::from_be_bytes(b.try_into().unwrap()))
}

fn get_u64_checked(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let b = take(buf, 8)?;
    // lint:allow(unwrap-in-prod): take() returned exactly 8 bytes, so the
    // conversion into [u8; 8] cannot fail
    Ok(u64::from_be_bytes(b.try_into().unwrap()))
}

fn get_f32_section(buf: &mut &[u8]) -> Result<Vec<f32>, CodecError> {
    let count = get_u32_checked(buf)? as usize;
    let raw = take(buf, count * 4)?;
    Ok(raw
        .chunks_exact(4)
        // lint:allow(unwrap-in-prod): chunks_exact(4) yields 4-byte slices
        .map(|c| f32::from_bits(u32::from_be_bytes(c.try_into().unwrap())))
        .collect())
}

fn get_u64_section(buf: &mut &[u8]) -> Result<Vec<usize>, CodecError> {
    let count = get_u32_checked(buf)? as usize;
    let raw = take(buf, count * 8)?;
    Ok(raw
        .chunks_exact(8)
        // lint:allow(unwrap-in-prod): chunks_exact(8) yields 8-byte slices
        .map(|c| u64::from_be_bytes(c.try_into().unwrap()) as usize)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(from: usize, tag: u64, payload: Payload) -> Msg {
        let frame = encode_frame(from, tag, &payload);
        assert_eq!(frame.len() as u64, payload.wire_bytes());
        decode_frame(&frame).expect("decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let cases = vec![
            Payload::Params(vec![1.0, -2.5, f32::NAN, 0.0]),
            Payload::Grads(vec![]),
            Payload::Flags(vec![0, 1, 1, 0, 1]),
            Payload::Samples {
                data: vec![0.5; 7],
                targets: vec![3, 1, 4],
                dims: vec![3, 8, 8],
            },
            Payload::Control(u64::MAX),
            Payload::Predict {
                data: vec![1.5, -0.25, 42.0, 0.0],
                dims: vec![2, 2],
            },
            Payload::Logits {
                rows: vec![0.1, -9.0, 7.5],
                classes: 3,
            },
            Payload::ShardMap(ShardSpec {
                version: 1,
                total: 1000,
                starts: vec![0, 250, 500, 750],
            }),
            Payload::ShardPush(vec![2.0, -0.5, 9.75]),
            Payload::ShardPull(vec![]),
        ];
        for (i, p) in cases.into_iter().enumerate() {
            let m = roundtrip(i, i as u64 * 1000, p.clone());
            assert_eq!(m.from, i);
            assert_eq!(m.tag, i as u64 * 1000);
            match (&m.payload, &p) {
                // NaN != NaN under PartialEq; compare bit patterns
                (Payload::Params(a), Payload::Params(b)) => {
                    assert_eq!(
                        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    );
                }
                (got, want) => assert_eq!(got, want),
            }
        }
    }

    #[test]
    fn truncated_frames_error() {
        let frame = encode_frame(0, 7, &Payload::Params(vec![1.0, 2.0]));
        for cut in 1..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_kind_and_trailing_bytes_error() {
        let mut frame = encode_frame(0, 0, &Payload::Control(1)).to_vec();
        let kind_pos = 4 + 4 + 8;
        frame[kind_pos] = 200;
        assert_eq!(decode_frame(&frame), Err(CodecError::BadKind(200)));

        let mut padded = encode_frame(0, 0, &Payload::Control(1)).to_vec();
        padded.push(0);
        let declared = (padded.len() - 4) as u32;
        padded[..4].copy_from_slice(&declared.to_be_bytes());
        assert_eq!(decode_frame(&padded), Err(CodecError::TrailingBytes(1)));
    }
}
