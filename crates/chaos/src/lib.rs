//! # selsync-chaos
//!
//! Deterministic fault injection for the SelSync communication fabric.
//!
//! A [`FaultPlan`] is a *seeded, declarative* chaos schedule: message
//! drops, duplicate deliveries, per-message delays, per-rank straggler
//! slowdowns, scheduled crashes, transient link partitions, and
//! byte-level wire damage (seeded bit flips and truncation). A
//! [`ChaosTransport`] wraps any [`Transport`] and applies the plan on
//! the send path.
//!
//! **Byte-level damage** is not simulated at the payload layer: a
//! corrupted or truncated message is encoded with the real
//! `selsync-net` codec, damaged, and fed back through the real
//! decoder. A damaged frame the CRC trailer (or length/section guards)
//! rejects is consumed like a drop and tallied as *corrupt*; in the
//! astronomically unlikely event the damage still decodes, whatever
//! decoded is what gets delivered — exactly the semantics of a real
//! link with a checksummed wire format.
//!
//! **Determinism.** Every per-message decision is a pure function of
//! `(seed, sender, receiver, link_sequence_number)` — a splitmix64 hash,
//! never wall-clock time or thread scheduling — so the same plan over
//! the same traffic produces the *identical* fault sequence, byte
//! counters, and fault log on every run, over both the in-process and
//! TCP fabrics. Partitions are expressed as link-sequence windows for
//! the same reason: the transport has no reliable notion of "training
//! step" (tag spaces differ between the PS and the collectives), but
//! the k-th message on a link is the k-th message on every run.
//!
//! **Crashes** are scheduled here ([`FaultPlan::crash_step`]) but
//! *enforced* by the worker loop (`selsync-core`), which exits at the
//! scheduled step — a transport cannot kill its owner.
//!
//! **Conservation.** The wrapper's [`CommStats`] counts every attempted
//! send, plus drop/duplicate/corrupt tallies, while the inner transport
//! counts what was actually forwarded, so chaos runs can assert
//! `sent − dropped − corrupt + duplicated = forwarded` exactly.

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

use selsync_comm::{CommStats, Msg, Payload, Transport, TransportError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// A scheduled worker crash: the rank exits just before running `at_step`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crash {
    /// Rank that dies.
    pub rank: usize,
    /// Step at which it dies (before any step-`at_step` traffic).
    pub at_step: u64,
}

/// A scheduled parameter-server crash: the PS process dies at the start
/// of `at_step`'s round (or mid-sync, at the launcher's discretion) and
/// — when `restart_after_ms` is nonzero — is restarted from its last
/// durable checkpoint after that many milliseconds. With
/// `restart_after_ms == 0` the PS stays dead, which only makes sense
/// when a hot standby is configured.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerCrash {
    /// Sync round at (or after) which the server dies.
    pub at_step: u64,
    /// Delay before the server restarts from its checkpoint; `0` means
    /// no restart (fail over to the standby instead).
    pub restart_after_ms: u64,
}

/// A straggler: every send by `rank` is preceded by a fixed delay,
/// modelling a uniformly slow worker (the paper's heterogeneous-cluster
/// scenario).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Straggler {
    /// Rank that is slow.
    pub rank: usize,
    /// Extra latency added to each of its sends, in milliseconds.
    pub delay_ms: u64,
}

/// A transient partition of one bidirectional link: messages whose
/// per-link sequence number falls in `[from_seq, to_seq)` are dropped
/// in both directions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// One side of the link.
    pub a: usize,
    /// The other side.
    pub b: usize,
    /// First dropped sequence number (inclusive).
    pub from_seq: u64,
    /// First delivered sequence number after the partition (exclusive end).
    pub to_seq: u64,
}

/// A complete, seeded chaos schedule.
///
/// Serializes to/from JSON (`--fault-plan plan.json`). The vendored
/// serde derive does not interpret field attributes, so **every field
/// must be present** in a JSON plan; use the scenario constructors or
/// [`FaultPlan::quiet`] as a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Per-message drop probability in `[0, 1]`.
    pub drop_prob: f64,
    /// Per-message duplicate-delivery probability in `[0, 1]`.
    pub duplicate_prob: f64,
    /// Upper bound for the per-message injected delay (uniform in
    /// `0..=delay_ms_max`, chosen by hash); `0` disables delays.
    pub delay_ms_max: u64,
    /// Per-message probability in `[0, 1]` that the *encoded bytes* of
    /// the frame take 1–4 seeded bit flips before decoding. The CRC
    /// trailer rejects essentially all of them, so a corrupted message
    /// is lost (and tallied as corrupt), not delivered wrong.
    pub corrupt_prob: f64,
    /// Per-message probability in `[0, 1]` that the encoded frame is
    /// cut short at a seeded byte boundary, modelling a torn stream.
    pub truncate_prob: f64,
    /// Uniformly slow ranks.
    pub stragglers: Vec<Straggler>,
    /// Scheduled crashes.
    pub crashes: Vec<Crash>,
    /// Transient link partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled parameter-server crash (at most one per run).
    pub server_crash: Option<ServerCrash>,
}

impl FaultPlan {
    /// A plan that injects nothing — the template every scenario edits.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_ms_max: 0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            stragglers: Vec::new(),
            crashes: Vec::new(),
            partitions: Vec::new(),
            server_crash: None,
        }
    }

    /// Scenario: the PS dies at sync round `at_step` and restarts from
    /// its checkpoint `restart_after_ms` later, nothing else.
    pub fn crash_server(seed: u64, at_step: u64, restart_after_ms: u64) -> FaultPlan {
        let mut p = FaultPlan::quiet(seed);
        p.server_crash = Some(ServerCrash {
            at_step,
            restart_after_ms,
        });
        p
    }

    /// Scenario: `rank` crashes at `at_step`, nothing else.
    pub fn crash_one(seed: u64, rank: usize, at_step: u64) -> FaultPlan {
        let mut p = FaultPlan::quiet(seed);
        p.crashes.push(Crash { rank, at_step });
        p
    }

    /// Scenario: serving replica `rank` crashes after answering
    /// `after_batches` batches, nothing else. Reuses the `crashes`
    /// schedule — the serving tier reads `at_step` as a served-batch
    /// count (`selsync-serve`'s `crash_after_batches`), the same way
    /// the training tier reads it as a step count.
    pub fn crash_replica(seed: u64, rank: usize, after_batches: u64) -> FaultPlan {
        let mut p = FaultPlan::quiet(seed);
        p.crashes.push(Crash {
            rank,
            at_step: after_batches,
        });
        p
    }

    /// Scenario: `rank` is `delay_ms` slower per send, nothing else.
    pub fn slow_straggler(seed: u64, rank: usize, delay_ms: u64) -> FaultPlan {
        let mut p = FaultPlan::quiet(seed);
        p.stragglers.push(Straggler { rank, delay_ms });
        p
    }

    /// Scenario (sharded PS): shard server `shard_rank` dies at sync
    /// round `at_step` and restarts from its own `FILE.s<shard>`
    /// checkpoint `restart_after_ms` later, while the sibling shards
    /// keep serving. The plan is given only to the dying shard's
    /// process — `server_crash` has no rank field because the
    /// monolithic launcher had exactly one server; in a shard group
    /// "which server" is chosen by which process loads the plan.
    pub fn crash_one_shard(seed: u64, at_step: u64, restart_after_ms: u64) -> FaultPlan {
        FaultPlan::crash_server(seed, at_step, restart_after_ms)
    }

    /// Scenario (sharded PS): shard server `shard_rank` answers every
    /// send `delay_ms` late — one slow shard skews the whole fan-out,
    /// since a worker's round completes only when the slowest shard
    /// replies. Give this plan to the slow shard's process.
    pub fn slow_shard(seed: u64, shard_rank: usize, delay_ms: u64) -> FaultPlan {
        FaultPlan::slow_straggler(seed, shard_rank, delay_ms)
    }

    /// Scenario: a dirty link that flips bits in (and occasionally
    /// tears) encoded frames on every link, nothing else. The wire
    /// CRC must convert every hit into a clean loss.
    pub fn corrupt_link(seed: u64, corrupt_prob: f64, truncate_prob: f64) -> FaultPlan {
        let mut p = FaultPlan::quiet(seed);
        p.corrupt_prob = corrupt_prob;
        p.truncate_prob = truncate_prob;
        p
    }

    /// Scenario: lossy, duplicating, jittery network on every link.
    pub fn flaky_network(
        seed: u64,
        drop_prob: f64,
        duplicate_prob: f64,
        delay_ms_max: u64,
    ) -> FaultPlan {
        let mut p = FaultPlan::quiet(seed);
        p.drop_prob = drop_prob;
        p.duplicate_prob = duplicate_prob;
        p.delay_ms_max = delay_ms_max;
        p
    }

    /// The step at which `rank` is scheduled to crash, if any.
    pub fn crash_step(&self, rank: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|c| c.rank == rank)
            .map(|c| c.at_step)
    }

    /// The per-send straggler delay for `rank`, if any.
    pub fn straggler_delay(&self, rank: usize) -> Option<Duration> {
        self.stragglers
            .iter()
            .find(|s| s.rank == rank)
            .map(|s| Duration::from_millis(s.delay_ms))
    }

    /// Is the `from ↔ to` link partitioned for sequence number `seq`?
    pub fn is_partitioned(&self, from: usize, to: usize, seq: u64) -> bool {
        self.partitions.iter().any(|p| {
            ((p.a == from && p.b == to) || (p.a == to && p.b == from))
                && (p.from_seq..p.to_seq).contains(&seq)
        })
    }

    /// The deterministic decision for the `seq`-th message `from → to`.
    pub fn decide(&self, from: usize, to: usize, seq: u64) -> FaultDecision {
        if self.is_partitioned(from, to, seq) {
            return FaultDecision {
                drop: Some(DropReason::Partition),
                damage: None,
                duplicate: false,
                delay: Duration::ZERO,
            };
        }
        if unit(link_hash(self.seed, from, to, seq, 0x0D0D)) < self.drop_prob {
            return FaultDecision {
                drop: Some(DropReason::Random),
                damage: None,
                duplicate: false,
                delay: Duration::ZERO,
            };
        }
        // byte-level damage preempts duplicate/delay: the frame is
        // (almost certainly) lost in the decoder, so layering more
        // faults on top would be unobservable anyway
        let damage = if unit(link_hash(self.seed, from, to, seq, SALT_CORRUPT)) < self.corrupt_prob
        {
            Some(WireDamage::Corrupt)
        } else if unit(link_hash(self.seed, from, to, seq, SALT_TRUNCATE)) < self.truncate_prob {
            Some(WireDamage::Truncate)
        } else {
            None
        };
        if damage.is_some() {
            return FaultDecision {
                drop: None,
                damage,
                duplicate: false,
                delay: Duration::ZERO,
            };
        }
        let duplicate = unit(link_hash(self.seed, from, to, seq, 0xD0B1)) < self.duplicate_prob;
        let delay = if self.delay_ms_max == 0 {
            Duration::ZERO
        } else {
            Duration::from_millis(
                link_hash(self.seed, from, to, seq, 0xDE1A) % (self.delay_ms_max + 1),
            )
        };
        FaultDecision {
            drop: None,
            damage: None,
            duplicate,
            delay,
        }
    }

    /// Parse a plan from JSON (all fields required).
    ///
    /// # Errors
    /// Returns the parser's message on malformed or incomplete JSON.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Serialize the plan as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }

    /// Load a plan from a JSON file.
    ///
    /// # Errors
    /// I/O or parse failures, as a message naming the path.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
    }
}

/// What [`FaultPlan::decide`] resolved for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDecision {
    /// `Some` if the message is discarded (and why).
    pub drop: Option<DropReason>,
    /// `Some` if the encoded bytes take seeded damage before decoding.
    pub damage: Option<WireDamage>,
    /// Deliver an extra copy.
    pub duplicate: bool,
    /// Sender-side delay before forwarding (preserves link FIFO order).
    pub delay: Duration,
}

/// The kind of byte-level damage applied to an encoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WireDamage {
    /// 1–4 seeded bit flips anywhere in the frame.
    Corrupt,
    /// The frame is cut short at a seeded byte boundary.
    Truncate,
}

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DropReason {
    /// The link-sequence window of a [`Partition`] covered it.
    Partition,
    /// The seeded per-message drop probability fired.
    Random,
}

/// One injected fault, for the audit log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultEvent {
    /// Sender rank.
    pub from: usize,
    /// Destination rank.
    pub to: usize,
    /// Per-link sequence number of the affected message.
    pub seq: u64,
    /// Message tag (step/phase), for readability of the log.
    pub tag: u64,
    /// What was done.
    pub action: FaultAction,
}

/// The action recorded in a [`FaultEvent`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FaultAction {
    /// Message discarded.
    Dropped(DropReason),
    /// Extra copy delivered.
    Duplicated,
    /// Delivery delayed by this many milliseconds.
    DelayedMs(u64),
    /// This many bit flips applied to the encoded frame.
    Corrupted(u64),
    /// Encoded frame truncated to this many bytes.
    TruncatedWire(u64),
}

/// Hash salts for the byte-damage decisions (drop/dup/delay use
/// 0x0D0D/0xD0B1/0xDE1A; these must differ from them and each other so
/// every fault kind draws independent randomness per message).
const SALT_CORRUPT: u64 = 0xC0DE;
const SALT_TRUNCATE: u64 = 0x7EA4;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn link_hash(seed: u64, from: usize, to: usize, seq: u64, salt: u64) -> u64 {
    let link = ((from as u64) << 32) | to as u64;
    splitmix64(seed ^ splitmix64(link) ^ splitmix64(seq.wrapping_add(salt)))
}

/// Map a hash to the unit interval with 53-bit precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Transport`] wrapper that injects the faults a [`FaultPlan`]
/// schedules. Receives pass through untouched; all injection happens on
/// the send path so each link stays FIFO and every decision is
/// attributable to the sending rank.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// Per-destination sequence counters (the determinism backbone).
    seq: Vec<u64>,
    /// Chaos-layer counters: resolved sends (fabric-accepted or eaten
    /// by chaos) + drop/duplicate/corrupt tallies.
    stats: Arc<CommStats>,
    log: Vec<FaultEvent>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wrap `inner`, injecting faults from `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> ChaosTransport<T> {
        let n = inner.fabric_size();
        ChaosTransport {
            inner,
            plan,
            seq: vec![0; n],
            stats: Arc::new(CommStats::default()),
            log: Vec::new(),
        }
    }

    /// The wrapped transport (e.g. to read its forwarded-traffic stats).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwrap, discarding the chaos layer.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The plan driving this wrapper.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault injected so far, in injection order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// FNV-1a fingerprint of the fault log — equal fingerprints mean an
    /// identical injected fault sequence (the determinism assertion).
    pub fn log_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.log {
            eat(e.from as u64);
            eat(e.to as u64);
            eat(e.seq);
            eat(e.tag);
            eat(match &e.action {
                FaultAction::Dropped(DropReason::Partition) => 1,
                FaultAction::Dropped(DropReason::Random) => 2,
                FaultAction::Duplicated => 3,
                FaultAction::DelayedMs(ms) => 4 ^ (ms << 8),
                FaultAction::Corrupted(flips) => 5 ^ (flips << 8),
                FaultAction::TruncatedWire(cut) => 6 ^ (cut << 8),
            });
        }
        h
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn id(&self) -> usize {
        self.inner.id()
    }

    fn fabric_size(&self) -> usize {
        self.inner.fabric_size()
    }

    /// Chaos-layer counters: `record` = resolved sends (accepted by
    /// the inner fabric, or eaten by a drop/corruption), plus the
    /// drop/duplicate/corrupt tallies. The *forwarded* traffic is on
    /// [`inner`](Self::inner)`.stats()`.
    fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        let from = self.inner.id();
        if let Some(d) = self.plan.straggler_delay(from) {
            std::thread::sleep(d);
        }
        let seq = self.seq[to];
        self.seq[to] += 1;
        let bytes = payload.wire_bytes();
        // `sent` counts messages the chaos layer *resolved*: eaten by a
        // drop/corruption, or accepted by the inner fabric. A send the
        // fabric rejects (dead peer) is counted on neither side — its
        // error propagates to the protocol layer instead — so the
        // conservation law `sent − dropped − corrupt + duplicated =
        // forwarded` holds exactly even while ranks are dying.
        let decision = self.plan.decide(from, to, seq);
        if let Some(reason) = decision.drop {
            self.stats.record(bytes);
            self.stats.record_drop(bytes);
            self.log.push(FaultEvent {
                from,
                to,
                seq,
                tag,
                action: FaultAction::Dropped(reason),
            });
            return Ok(()); // silently eaten, like a real lossy link
        }
        if let Some(damage) = decision.damage {
            // damage the *encoded bytes* and push them through the real
            // decoder, so corruption exercises the CRC trailer and the
            // section guards, not a payload-level shortcut
            let mut frame = selsync_net::encode_frame(from, tag, &payload).to_vec();
            let action = match damage {
                WireDamage::Corrupt => {
                    let flips =
                        1 + link_hash(self.plan.seed, from, to, seq, SALT_CORRUPT ^ 0x55) % 4;
                    for k in 0..flips {
                        let h = link_hash(
                            self.plan.seed,
                            from,
                            to,
                            seq,
                            SALT_CORRUPT.wrapping_add(0x100 + k),
                        );
                        let pos = (h % frame.len() as u64) as usize;
                        frame[pos] ^= 1 << ((h >> 32) & 7);
                    }
                    FaultAction::Corrupted(flips)
                }
                WireDamage::Truncate => {
                    let cut = link_hash(self.plan.seed, from, to, seq, SALT_TRUNCATE ^ 0x55)
                        % frame.len() as u64;
                    frame.truncate(cut as usize);
                    FaultAction::TruncatedWire(cut)
                }
            };
            self.log.push(FaultEvent {
                from,
                to,
                seq,
                tag,
                action,
            });
            return match selsync_net::decode_frame(&frame) {
                // essentially impossible past the CRC, but decode is
                // total: if the damage still parses, deliver what parsed
                Ok(msg) => {
                    let res = self.inner.send(to, msg.tag, msg.payload);
                    if res.is_ok() {
                        self.stats.record(bytes);
                    }
                    res
                }
                Err(_) => {
                    self.stats.record(bytes);
                    self.stats.record_corrupt(bytes);
                    Ok(()) // rejected by the wire check: lost, tallied
                }
            };
        }
        if !decision.delay.is_zero() {
            self.log.push(FaultEvent {
                from,
                to,
                seq,
                tag,
                action: FaultAction::DelayedMs(decision.delay.as_millis() as u64),
            });
            std::thread::sleep(decision.delay);
        }
        if decision.duplicate {
            self.inner.send(to, tag, payload.clone())?;
            self.stats.record_duplicate(bytes);
            self.log.push(FaultEvent {
                from,
                to,
                seq,
                tag,
                action: FaultAction::Duplicated,
            });
        }
        let res = self.inner.send(to, tag, payload);
        if res.is_ok() {
            self.stats.record(bytes);
        }
        res
    }

    fn recv_any(&mut self) -> Result<Msg, TransportError> {
        self.inner.recv_any()
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        self.inner.recv_tagged(from, tag)
    }

    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        self.inner.recv_deadline(from, tag, timeout)
    }

    fn try_recv(&mut self) -> Option<Msg> {
        self.inner.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_comm::Fabric;

    fn wrap_pair(
        plan: &FaultPlan,
    ) -> (
        ChaosTransport<selsync_comm::Endpoint>,
        ChaosTransport<selsync_comm::Endpoint>,
    ) {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        (
            ChaosTransport::new(a, plan.clone()),
            ChaosTransport::new(b, plan.clone()),
        )
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (mut a, mut b) = wrap_pair(&FaultPlan::quiet(1));
        a.send(1, 7, Payload::Control(5)).unwrap();
        assert_eq!(
            b.recv_tagged(Some(0), 7).unwrap().payload,
            Payload::Control(5)
        );
        assert!(a.fault_log().is_empty());
        assert_eq!(a.stats().dropped_messages(), 0);
        assert_eq!(a.stats().total_messages(), 1);
    }

    #[test]
    fn decisions_are_deterministic_across_instances() {
        let plan = FaultPlan::flaky_network(42, 0.3, 0.2, 0);
        for from in 0..3 {
            for to in 0..3 {
                for seq in 0..200 {
                    assert_eq!(
                        plan.decide(from, to, seq),
                        plan.decide(from, to, seq),
                        "pure function of (seed, from, to, seq)"
                    );
                }
            }
        }
        // and a different seed gives a different schedule
        let other = FaultPlan::flaky_network(43, 0.3, 0.2, 0);
        let same = (0..200u64)
            .filter(|&s| plan.decide(0, 1, s) == other.decide(0, 1, s))
            .count();
        assert!(same < 200, "seeds must matter");
    }

    #[test]
    fn same_seed_same_traffic_same_fault_log() {
        let plan = FaultPlan::flaky_network(7, 0.25, 0.15, 0);
        let mut fingerprints = Vec::new();
        for _ in 0..2 {
            let (mut a, mut b) = wrap_pair(&plan);
            for i in 0..300u64 {
                a.send(1, i, Payload::Flags(vec![1])).unwrap();
            }
            // drain whatever survived
            while b.try_recv().is_some() {}
            fingerprints.push((
                a.log_fingerprint(),
                a.stats().dropped_messages(),
                a.stats().duplicated_messages(),
            ));
        }
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert!(fingerprints[0].1 > 0, "drops actually happened");
        assert!(fingerprints[0].2 > 0, "duplicates actually happened");
    }

    #[test]
    fn conservation_sent_minus_dropped_plus_duplicated_is_forwarded() {
        let plan = FaultPlan::flaky_network(99, 0.2, 0.1, 0);
        let (mut a, mut b) = wrap_pair(&plan);
        for i in 0..500u64 {
            a.send(1, i, Payload::Params(vec![0.0; 3])).unwrap();
        }
        let sent = a.stats().total_messages();
        let dropped = a.stats().dropped_messages();
        let duplicated = a.stats().duplicated_messages();
        // the shared in-process fabric stats count forwarded messages
        let forwarded = a.inner().stats().total_messages();
        assert_eq!(sent - dropped + duplicated, forwarded);
        assert_eq!(sent, 500);
        // byte-level conservation too
        assert_eq!(
            a.stats().total_bytes() - a.stats().dropped_bytes() + a.stats().duplicated_bytes(),
            a.inner().stats().total_bytes()
        );
        // every forwarded message is receivable
        let mut got = 0;
        while b.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, forwarded);
    }

    #[test]
    fn partition_window_drops_exactly_its_range() {
        let mut plan = FaultPlan::quiet(3);
        plan.partitions.push(Partition {
            a: 0,
            b: 1,
            from_seq: 10,
            to_seq: 20,
        });
        let (mut a, mut b) = wrap_pair(&plan);
        for i in 0..30u64 {
            a.send(1, i, Payload::Control(i)).unwrap();
        }
        assert_eq!(a.stats().dropped_messages(), 10);
        let mut delivered = Vec::new();
        while let Some(m) = b.try_recv() {
            delivered.push(m.tag);
        }
        let expected: Vec<u64> = (0..10).chain(20..30).collect();
        assert_eq!(delivered, expected);
        // symmetric: the window also covers b -> a
        assert!(plan.is_partitioned(1, 0, 15));
        assert!(!plan.is_partitioned(1, 0, 25));
    }

    #[test]
    fn crash_and_straggler_lookups() {
        let plan = FaultPlan::crash_one(5, 2, 40);
        assert_eq!(plan.crash_step(2), Some(40));
        assert_eq!(plan.crash_step(0), None);
        let plan = FaultPlan::slow_straggler(5, 1, 25);
        assert_eq!(plan.straggler_delay(1), Some(Duration::from_millis(25)));
        assert_eq!(plan.straggler_delay(0), None);
    }

    #[test]
    fn crash_replica_schedules_a_served_batch_crash() {
        let plan = FaultPlan::crash_replica(7, 1, 12);
        assert_eq!(plan.crash_step(1), Some(12));
        assert_eq!(plan.crash_step(0), None);
        // nothing else is injected: the plan is otherwise quiet
        assert_eq!(plan.drop_prob, 0.0);
        assert_eq!(plan.duplicate_prob, 0.0);
        assert!(plan.server_crash.is_none());
        // and it survives the JSON wire like every other scenario
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.crash_step(1), Some(12));
    }

    #[test]
    fn corrupt_link_loses_messages_through_the_real_decoder() {
        let plan = FaultPlan::corrupt_link(31, 0.25, 0.1);
        let (mut a, mut b) = wrap_pair(&plan);
        for i in 0..400u64 {
            a.send(1, i, Payload::Params(vec![1.0, 2.0, 3.0])).unwrap();
        }
        let corrupt = a.stats().corrupt_messages();
        assert!(corrupt > 0, "corruption actually happened");
        // both damage kinds fired and were logged
        let flips = a
            .fault_log()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Corrupted(_)))
            .count();
        let cuts = a
            .fault_log()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::TruncatedWire(_)))
            .count();
        assert!(flips > 0, "bit flips fired");
        assert!(cuts > 0, "truncations fired");
        // conservation with the corrupt term: every damaged frame the
        // decoder rejected is accounted for, nothing was mis-delivered
        let forwarded = a.inner().stats().total_messages();
        assert_eq!(
            a.stats().total_messages() - a.stats().dropped_messages() - corrupt
                + a.stats().duplicated_messages(),
            forwarded
        );
        // survivors decode to exactly what was sent (the CRC turned
        // every hit into a loss, never a wrong value)
        let mut got = 0;
        while let Some(m) = b.try_recv() {
            assert_eq!(m.payload, Payload::Params(vec![1.0, 2.0, 3.0]));
            got += 1;
        }
        assert_eq!(got, forwarded);
    }

    #[test]
    fn corrupt_schedule_is_deterministic() {
        let plan = FaultPlan::corrupt_link(77, 0.2, 0.2);
        let mut prints = Vec::new();
        for _ in 0..2 {
            let (mut a, _b) = wrap_pair(&plan);
            for i in 0..300u64 {
                a.send(1, i, Payload::Flags(vec![9])).unwrap();
            }
            prints.push((a.log_fingerprint(), a.stats().corrupt_messages()));
        }
        assert_eq!(prints[0], prints[1]);
        assert!(prints[0].1 > 0);
    }

    #[test]
    fn json_roundtrip_preserves_the_plan() {
        let mut plan = FaultPlan::flaky_network(11, 0.05, 0.01, 30);
        plan.corrupt_prob = 0.02;
        plan.truncate_prob = 0.03;
        plan.crashes.push(Crash {
            rank: 1,
            at_step: 17,
        });
        plan.stragglers.push(Straggler {
            rank: 0,
            delay_ms: 9,
        });
        plan.partitions.push(Partition {
            a: 0,
            b: 2,
            from_seq: 100,
            to_seq: 250,
        });
        plan.server_crash = Some(ServerCrash {
            at_step: 6,
            restart_after_ms: 250,
        });
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn delays_are_logged_and_bounded() {
        let plan = FaultPlan::flaky_network(21, 0.0, 0.0, 3);
        let (mut a, _b) = wrap_pair(&plan);
        for i in 0..50u64 {
            a.send(1, i, Payload::Control(i)).unwrap();
        }
        let delays: Vec<u64> = a
            .fault_log()
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::DelayedMs(ms) => Some(ms),
                _ => None,
            })
            .collect();
        assert!(!delays.is_empty());
        assert!(delays.iter().all(|&ms| ms <= 3));
    }

    #[test]
    fn shard_scenarios_roundtrip_and_read_back() {
        // crash-one-shard: the per-process server_crash schedule,
        // targeted by giving the plan to the dying shard only
        let plan = FaultPlan::crash_one_shard(7, 4, 300);
        assert_eq!(
            plan.server_crash,
            Some(ServerCrash {
                at_step: 4,
                restart_after_ms: 300
            })
        );
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);

        // slow shard: an ordinary straggler pinned to a shard rank
        let plan = FaultPlan::slow_shard(7, 1, 80);
        assert_eq!(plan.straggler_delay(1), Some(Duration::from_millis(80)));
        assert_eq!(plan.straggler_delay(0), None);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }
}
