//! Property-based tests of the data layer: non-IID label splits, batch
//! cursors, and text windowing hold their invariants for arbitrary
//! shapes.

use proptest::prelude::*;
use selsync_data::{noniid_label_partition, BatchCursor, TextDataset, VisionDataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn noniid_partition_is_exact_and_skewed(
        samples_per_class in 10usize..40,
        classes in 2usize..10,
        seed in 0u64..1000,
    ) {
        // workers == classes, 1 label each — the paper's sharpest skew
        let workers = classes;
        let labels: Vec<usize> = (0..samples_per_class * classes).map(|i| i % classes).collect();
        let parts = noniid_label_partition(&labels, classes, workers, 1, seed);
        // partition property
        let mut seen = vec![false; labels.len()];
        for p in &parts {
            for &i in p {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // skew property: every worker holds exactly one label
        for p in &parts {
            let mut distinct: Vec<usize> = p.iter().map(|&i| labels[i]).collect();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), 1);
        }
    }

    #[test]
    fn cursor_epoch_accounting_is_exact(
        n in 4usize..60,
        batch in 1usize..16,
        seed in 0u64..500,
    ) {
        let data = VisionDataset::synthetic(n, 2, seed, seed + 1);
        let mut c = BatchCursor::new((0..n).collect(), batch);
        let bpe = c.batches_per_epoch();
        prop_assert_eq!(bpe, n.div_ceil(batch));
        // after pulling exactly enough samples for two epochs' worth of
        // indices, the epoch counter must be 2
        let total_draws = 2 * n;
        let batches = total_draws / batch;
        for _ in 0..batches {
            let b = c.next_batch(&data);
            prop_assert_eq!(b.len(), batch);
        }
        let consumed = batches * batch;
        prop_assert_eq!(c.epoch(), (consumed / n) as u64);
    }

    #[test]
    fn cursor_visits_every_index_each_epoch(n in 4usize..40, seed in 0u64..500) {
        let data = VisionDataset::synthetic(n, 2, seed, seed + 3);
        let mut c = BatchCursor::new((0..n).collect(), 1);
        let mut counts = vec![0usize; n];
        for _ in 0..3 * n {
            let b = c.next_batch(&data);
            // find which index this was by matching the target + data row
            let _ = b;
        }
        // direct check through the index order instead: 3 epochs of a
        // batch-1 cursor must emit each index exactly 3 times
        let mut c2 = BatchCursor::new((0..n).collect(), 1);
        for _ in 0..3 {
            for (expected, count) in counts.iter_mut().enumerate() {
                let b = c2.next_batch(&data);
                prop_assert_eq!(b.targets[0], data.labels[expected]);
                *count += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn text_windows_are_shifted_pairs(
        len in 50usize..400,
        seq in 2usize..16,
        seed in 0u64..500,
    ) {
        let d = TextDataset::synthetic_markov(len, 16, seed);
        for w in 0..d.num_windows(seq) {
            let (x, y) = d.window(w, seq);
            prop_assert_eq!(x.len(), seq);
            prop_assert_eq!(y.len(), seq);
            prop_assert_eq!(&x[1..], &y[..seq - 1], "targets are inputs shifted by one");
        }
    }

    #[test]
    fn shared_chain_different_path_same_language(seed in 0u64..200) {
        let a = TextDataset::synthetic_markov_with_path(2000, 16, seed, 1);
        let b = TextDataset::synthetic_markov_with_path(2000, 16, seed, 2);
        prop_assert_ne!(&a.tokens, &b.tokens, "different sample paths");
        // same transition structure: bigrams of b must be a subset of
        // the bigram support seen in a (both are long draws from the
        // same 4-successor tables)
        let mut support = std::collections::HashSet::new();
        for w in a.tokens.windows(2) {
            support.insert((w[0], w[1]));
        }
        let violations = b
            .tokens
            .windows(2)
            .filter(|w| !support.contains(&(w[0], w[1])))
            .count();
        // a may not have visited every (state, successor) pair, so allow
        // a small tail of unseen-but-legal transitions
        prop_assert!(
            violations * 20 < b.tokens.len(),
            "{violations} bigrams of b unseen in a"
        );
    }
}
