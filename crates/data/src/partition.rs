//! IID data partitioning: the paper's DefDP and SelDP schemes (§III-D).
//!
//! * **DefDP** splits the dataset into `N` disjoint chunks; worker `n`
//!   only ever sees chunk `n`. Standard for BSP, harmful for
//!   semi-synchronous training.
//! * **SelDP** gives every worker the *whole* dataset, ordered as a
//!   circular queue of the same `N` chunks whose head is rotated to
//!   chunk `n` on worker `n`. All data reaches every worker, yet on any
//!   synchronized step the workers' cursors sit in distinct chunks, so
//!   aggregated updates come from disjoint data.

use serde::{Deserialize, Serialize};

/// Which partitioning scheme a worker uses to order its training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Default disjoint-chunk partitioning.
    DefDp,
    /// SelSync circular-rotation partitioning.
    SelDp,
}

/// Boundaries of `n_workers` near-equal chunks over `n_samples` items.
/// The first `n_samples % n_workers` chunks are one item larger.
pub fn chunk_bounds(n_samples: usize, n_workers: usize) -> Vec<(usize, usize)> {
    assert!(n_workers > 0, "need at least one worker");
    let base = n_samples / n_workers;
    let extra = n_samples % n_workers;
    let mut bounds = Vec::with_capacity(n_workers);
    let mut start = 0;
    for w in 0..n_workers {
        let len = base + usize::from(w < extra);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// The sample-index order worker `worker` iterates during one epoch.
///
/// DefDP returns only chunk `worker`; SelDP returns all chunks starting
/// at chunk `worker` and wrapping around (Fig. 7 of the paper).
pub fn partition_indices(
    n_samples: usize,
    n_workers: usize,
    worker: usize,
    scheme: PartitionScheme,
) -> Vec<usize> {
    assert!(worker < n_workers, "worker id out of range");
    let bounds = chunk_bounds(n_samples, n_workers);
    match scheme {
        PartitionScheme::DefDp => {
            let (s, e) = bounds[worker];
            (s..e).collect()
        }
        PartitionScheme::SelDp => {
            let mut order = Vec::with_capacity(n_samples);
            for k in 0..n_workers {
                let (s, e) = bounds[(worker + k) % n_workers];
                order.extend(s..e);
            }
            order
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_everything() {
        let b = chunk_bounds(10, 4);
        assert_eq!(b, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        let b2 = chunk_bounds(8, 4);
        assert_eq!(b2, vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn defdp_is_disjoint_and_covering() {
        let n = 103;
        let w = 4;
        let mut seen = vec![false; n];
        for worker in 0..w {
            for i in partition_indices(n, w, worker, PartitionScheme::DefDp) {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every sample assigned");
    }

    #[test]
    fn seldp_gives_every_worker_the_full_dataset() {
        let n = 103;
        let w = 4;
        for worker in 0..w {
            let mut order = partition_indices(n, w, worker, PartitionScheme::SelDp);
            assert_eq!(order.len(), n);
            order.sort_unstable();
            assert_eq!(
                order,
                (0..n).collect::<Vec<_>>(),
                "worker {worker} sees all data"
            );
        }
    }

    #[test]
    fn seldp_matches_paper_figure_7_layout() {
        // 4 workers, chunks DP0..DP3: worker1 must iterate
        // DP1, DP2, DP3, DP0 in that order.
        let n = 8;
        let order = partition_indices(n, 4, 1, PartitionScheme::SelDp);
        assert_eq!(order, vec![2, 3, 4, 5, 6, 7, 0, 1]);
        let order0 = partition_indices(n, 4, 0, PartitionScheme::SelDp);
        assert_eq!(order0, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn seldp_heads_are_distinct_chunks() {
        // On a synchronized first step, worker n's cursor is in chunk n:
        // no two workers start in the same chunk.
        let n = 100;
        let w = 5;
        let bounds = chunk_bounds(n, w);
        let heads: Vec<usize> = (0..w)
            .map(|worker| partition_indices(n, w, worker, PartitionScheme::SelDp)[0])
            .collect();
        for (worker, &h) in heads.iter().enumerate() {
            let (s, e) = bounds[worker];
            assert!(
                h >= s && h < e,
                "worker {worker} head {h} not in its own chunk"
            );
        }
    }

    #[test]
    fn defdp_and_seldp_first_chunks_agree() {
        // A SelDP epoch starts with exactly the worker's DefDP chunk.
        let n = 50;
        let w = 3;
        for worker in 0..w {
            let def = partition_indices(n, w, worker, PartitionScheme::DefDp);
            let sel = partition_indices(n, w, worker, PartitionScheme::SelDp);
            assert_eq!(&sel[..def.len()], &def[..]);
        }
    }

    #[test]
    fn single_worker_degenerates_to_identity() {
        for scheme in [PartitionScheme::DefDp, PartitionScheme::SelDp] {
            assert_eq!(
                partition_indices(7, 1, 0, scheme),
                (0..7).collect::<Vec<_>>()
            );
        }
    }
}
