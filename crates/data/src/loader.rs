//! Per-worker batch cursors: turn an index order (from a partitioner)
//! into an endless stream of mini-batches.

use crate::text::TextDataset;
use crate::vision::VisionDataset;
use selsync_nn::Batch;

/// Cycling mini-batch cursor over a vision dataset restricted to a
/// worker's index order. One full pass over `indices` is one epoch.
#[derive(Debug, Clone)]
pub struct BatchCursor {
    indices: Vec<usize>,
    batch_size: usize,
    pos: usize,
    epoch: u64,
}

impl BatchCursor {
    /// A cursor over `indices` yielding batches of `batch_size`.
    pub fn new(indices: Vec<usize>, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!indices.is_empty(), "empty partition");
        BatchCursor {
            indices,
            batch_size,
            pos: 0,
            epoch: 0,
        }
    }

    /// Number of batches per epoch (ceiling division).
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.batch_size)
    }

    /// Completed epochs so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fractional epoch progress (completed + in-progress fraction).
    pub fn epoch_progress(&self) -> f64 {
        self.epoch as f64 + self.pos as f64 / self.indices.len() as f64
    }

    /// Change the batch size mid-stream (used by data injection's b′).
    pub fn set_batch_size(&mut self, b: usize) {
        assert!(b > 0);
        self.batch_size = b;
    }

    /// Next mini-batch from `data`, wrapping at epoch boundaries.
    pub fn next_batch(&mut self, data: &VisionDataset) -> Batch {
        let mut picked = Vec::with_capacity(self.batch_size);
        for _ in 0..self.batch_size {
            picked.push(self.indices[self.pos]);
            self.pos += 1;
            if self.pos == self.indices.len() {
                self.pos = 0;
                self.epoch += 1;
            }
        }
        let (x, t) = data.gather(&picked);
        Batch::dense(x, t)
    }
}

/// Cycling bptt-window cursor over a text dataset.
#[derive(Debug, Clone)]
pub struct TextBatchCursor {
    windows: Vec<usize>,
    seq_len: usize,
    batch_size: usize,
    pos: usize,
    epoch: u64,
}

impl TextBatchCursor {
    /// A cursor over the given window ids, yielding `batch_size`
    /// sequences of `seq_len` tokens each.
    pub fn new(windows: Vec<usize>, seq_len: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0 && seq_len > 0);
        assert!(!windows.is_empty(), "empty partition");
        TextBatchCursor {
            windows,
            seq_len,
            batch_size,
            pos: 0,
            epoch: 0,
        }
    }

    /// Completed epochs so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fractional epoch progress.
    pub fn epoch_progress(&self) -> f64 {
        self.epoch as f64 + self.pos as f64 / self.windows.len() as f64
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.windows.len().div_ceil(self.batch_size)
    }

    /// Next language-model batch from `data`.
    pub fn next_batch(&mut self, data: &TextDataset) -> Batch {
        let mut seqs = Vec::with_capacity(self.batch_size);
        let mut targets = Vec::with_capacity(self.batch_size * self.seq_len);
        for _ in 0..self.batch_size {
            let w = self.windows[self.pos];
            let (x, y) = data.window(w, self.seq_len);
            seqs.push(x);
            targets.extend(y);
            self.pos += 1;
            if self.pos == self.windows.len() {
                self.pos = 0;
                self.epoch += 1;
            }
        }
        Batch::tokens(seqs, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_cycles_and_counts_epochs() {
        let data = VisionDataset::synthetic(10, 3, 0, 1);
        let mut c = BatchCursor::new((0..10).collect(), 4);
        assert_eq!(c.batches_per_epoch(), 3);
        let _ = c.next_batch(&data);
        let _ = c.next_batch(&data);
        assert_eq!(c.epoch(), 0);
        let _ = c.next_batch(&data); // wraps at sample 10
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn batches_follow_index_order() {
        let data = VisionDataset::synthetic(6, 3, 2, 3);
        let mut c = BatchCursor::new(vec![5, 4, 3, 2, 1, 0], 2);
        let b = c.next_batch(&data);
        assert_eq!(b.targets, vec![data.labels[5], data.labels[4]]);
    }

    #[test]
    fn epoch_progress_is_fractional() {
        let data = VisionDataset::synthetic(8, 2, 4, 5);
        let mut c = BatchCursor::new((0..8).collect(), 2);
        let _ = c.next_batch(&data);
        assert!((c.epoch_progress() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn text_cursor_yields_shifted_targets() {
        let data = TextDataset::synthetic_markov(100, 16, 0);
        let mut c = TextBatchCursor::new((0..data.num_windows(8)).collect(), 8, 2);
        let b = c.next_batch(&data);
        let seqs = b.input.tokens();
        assert_eq!(seqs.len(), 2);
        assert_eq!(b.targets.len(), 16);
        assert_eq!(b.targets[0], seqs[0][1], "target is next token");
    }

    #[test]
    fn set_batch_size_takes_effect() {
        let data = VisionDataset::synthetic(10, 2, 6, 7);
        let mut c = BatchCursor::new((0..10).collect(), 4);
        c.set_batch_size(2);
        assert_eq!(c.next_batch(&data).len(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_partition_rejected() {
        BatchCursor::new(vec![], 4);
    }
}
