//! # selsync-data
//!
//! Datasets and data-distribution machinery for the SelSync reproduction:
//!
//! * synthetic teacher-labelled vision datasets and Markov-source text
//!   corpora that stand in for CIFAR10/100, ImageNet-1K and WikiText-103
//!   (DESIGN.md substitution 2);
//! * the paper's two IID partitioning schemes — **DefDP** (disjoint
//!   chunks) and **SelDP** (per-worker circular rotation, §III-D);
//! * non-IID label-skew splits used in the federated experiments (§IV-A);
//! * randomized data injection with the Eqn. (3) batch-size correction
//!   (§III-E).

// The unsafe-outside-kernels invariant (selsync-lint), compiler-enforced:
// SIMD and socket code live in crates/tensor and crates/net only.
#![deny(unsafe_code)]

pub mod injection;
pub mod loader;
pub mod noniid;
pub mod partition;
pub mod text;
pub mod vision;

pub use injection::InjectionConfig;
pub use loader::{BatchCursor, TextBatchCursor};
pub use noniid::noniid_label_partition;
pub use partition::{chunk_bounds as chunk_bounds_of, partition_indices, PartitionScheme};
pub use text::TextDataset;
pub use vision::VisionDataset;
