//! Synthetic teacher-labelled vision datasets.
//!
//! Real CIFAR/ImageNet archives are not available offline, so we generate
//! image-shaped inputs and label them with a fixed random *teacher*
//! network. The resulting task is learnable (test accuracy is a
//! meaningful, improvable quantity) while the gradient dynamics the paper
//! leans on — large noisy gradients early, saturation late, divergence of
//! replicas trained on disjoint shards — are properties of SGD itself and
//! carry over.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::{init, Tensor};

/// Image side length used by all vision minis.
pub const IMAGE_SIZE: usize = 8;
/// Image channels.
pub const CHANNELS: usize = 3;
/// Flattened feature size of one image.
pub const FEATURES: usize = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;

/// An in-memory labelled image dataset `[n, 3, 8, 8]`.
#[derive(Debug, Clone)]
pub struct VisionDataset {
    /// Image tensor `[n, 3, 8, 8]`.
    pub images: Tensor,
    /// One class label per image.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub num_classes: usize,
}

impl VisionDataset {
    /// Margin between class prototypes and the unit per-pixel noise.
    /// Chosen so small conv nets reach high accuracy within a few
    /// hundred steps while leaving headroom for strategies to differ.
    pub const PROTOTYPE_MARGIN: f32 = 0.5;

    /// Generate `n` images over `num_classes` classes.
    ///
    /// Each class has a fixed random *prototype image* (seeded by
    /// `seed`); a sample is its class prototype scaled by
    /// [`Self::PROTOTYPE_MARGIN`] plus unit Gaussian pixel noise — a
    /// Gaussian-mixture task that convolutional feature extractors learn
    /// the way they learn natural-image classes. Train and test splits
    /// generated from the same `seed` share the prototypes (use a
    /// different `sample_seed` for disjoint samples).
    pub fn synthetic(n: usize, num_classes: usize, seed: u64, sample_seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        // prototypes depend only on `seed`
        let mut proto_rng = StdRng::seed_from_u64(seed);
        let protos = init::randn([num_classes, FEATURES], 1.0, &mut proto_rng);
        let mut rng =
            StdRng::seed_from_u64(sample_seed.wrapping_mul(0x9E37_79B9).wrapping_add(seed));
        let mut x = init::randn([n, FEATURES], 1.0, &mut rng);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // deterministic, balanced label assignment
            let c = i % num_classes;
            labels.push(c);
            let proto = protos.row(c).to_vec();
            let row = &mut x.as_mut_slice()[i * FEATURES..(i + 1) * FEATURES];
            for (xv, pv) in row.iter_mut().zip(&proto) {
                *xv += Self::PROTOTYPE_MARGIN * pv;
            }
        }
        VisionDataset {
            images: x.reshape([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]),
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Gather the samples at `indices` into a batch tensor + targets.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let feat = FEATURES;
        let mut data = Vec::with_capacity(indices.len() * feat);
        let mut targets = Vec::with_capacity(indices.len());
        let src = self.images.as_slice();
        for &i in indices {
            data.extend_from_slice(&src[i * feat..(i + 1) * feat]);
            targets.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, [indices.len(), CHANNELS, IMAGE_SIZE, IMAGE_SIZE]),
            targets,
        )
    }

    /// Per-class sample counts (length `num_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }

    /// Approximate bytes of one encoded sample, for the data-injection
    /// cost accounting (§III-E quotes ~3 KB per CIFAR image).
    pub fn sample_bytes(&self) -> u64 {
        (FEATURES * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = VisionDataset::synthetic(50, 10, 1, 2);
        let b = VisionDataset::synthetic(50, 10, 1, 2);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
    }

    #[test]
    fn different_sample_seed_same_teacher() {
        let a = VisionDataset::synthetic(200, 10, 1, 2);
        let b = VisionDataset::synthetic(200, 10, 1, 3);
        assert_ne!(a.images.as_slice(), b.images.as_slice());
        // same prototypes → identical balanced label marginals
        assert_eq!(a.class_histogram(), b.class_histogram());
    }

    #[test]
    fn labels_are_in_range() {
        let d = VisionDataset::synthetic(100, 7, 4, 5);
        assert!(d.labels.iter().all(|&l| l < 7));
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn all_classes_exactly_balanced() {
        let d = VisionDataset::synthetic(2000, 10, 6, 7);
        let h = d.class_histogram();
        assert!(
            h.iter().all(|&count| count == 200),
            "round-robin labels: {h:?}"
        );
    }

    #[test]
    fn gather_respects_order() {
        let d = VisionDataset::synthetic(10, 3, 8, 9);
        let (x, t) = d.gather(&[3, 0, 3]);
        assert_eq!(x.shape().dims(), &[3, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        assert_eq!(t[0], d.labels[3]);
        assert_eq!(t[1], d.labels[0]);
        assert_eq!(t[0], t[2]);
        let feat = FEATURES;
        assert_eq!(
            &x.as_slice()[..feat],
            &d.images.as_slice()[3 * feat..4 * feat]
        );
    }

    #[test]
    fn task_is_linearly_learnable() {
        // sanity: a linear probe trained on the data beats chance by a lot
        use selsync_nn::loss::{accuracy, softmax_cross_entropy};
        use selsync_nn::models::{Mlp, Model};
        use selsync_nn::module::ParamVisitor;
        use selsync_nn::optim::{Optimizer, Sgd};
        use selsync_nn::Input;
        let d = VisionDataset::synthetic(512, 4, 10, 11);
        let (x, t) = d.gather(&(0..512).collect::<Vec<_>>());
        let mut m = Mlp::new(&[FEATURES, 4], 0);
        let mut opt = Sgd::new(0.5);
        for _ in 0..40 {
            let logits = m.forward(&Input::Dense(x.clone()), true);
            let (_, dl) = softmax_cross_entropy(&logits, &t);
            m.zero_grad();
            m.backward(&dl);
            opt.step(&mut m);
        }
        let logits = m.forward(&Input::Dense(x), false);
        let acc = accuracy(&logits, &t);
        assert!(
            acc > 0.6,
            "linear probe accuracy {acc} should beat 0.25 chance easily"
        );
    }
}
