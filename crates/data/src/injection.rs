//! Randomized data injection for non-IID training (§III-E of the paper).
//!
//! Each iteration, a random subset of ⌈αN⌉ workers shares ⌈β·b′⌉ of its
//! local samples with everyone. To keep the cumulative per-worker batch
//! at the configured size `b` (large batches hurt generalization), the
//! local batch shrinks to `b′ = b / (1 + αβN)` (Eqn. 3).

use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::init::permutation;
use serde::{Deserialize, Serialize};

/// Data-injection configuration `(α, β)`; the SelSync-specific threshold
/// δ lives in the training strategy, so a full configuration is written
/// `(α, β, δ)` in the experiment harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionConfig {
    /// Fraction of workers selected to share each iteration.
    pub alpha: f32,
    /// Fraction of a sharing worker's batch that is shared.
    pub beta: f32,
}

impl InjectionConfig {
    /// Create a configuration, validating `0 < α, β ≤ 1`.
    pub fn new(alpha: f32, beta: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        InjectionConfig { alpha, beta }
    }

    /// Adjusted local batch size `b′ = b / (1 + αβN)` (Eqn. 3),
    /// rounded down but at least 1.
    pub fn adjusted_batch_size(&self, b: usize, n_workers: usize) -> usize {
        let denom = 1.0 + self.alpha * self.beta * n_workers as f32;
        ((b as f32 / denom).floor() as usize).max(1)
    }

    /// Number of workers selected to share.
    pub fn num_sharers(&self, n_workers: usize) -> usize {
        ((self.alpha * n_workers as f32).ceil() as usize).clamp(1, n_workers)
    }

    /// Samples each sharer contributes out of its local batch `b_prime`.
    pub fn shared_per_worker(&self, b_prime: usize) -> usize {
        ((self.beta * b_prime as f32).ceil() as usize).min(b_prime)
    }

    /// Deterministically select the sharing workers for `step`.
    ///
    /// Every worker derives the same selection from `(seed, step)` — the
    /// paper's "random subset per iteration" without extra coordination
    /// traffic.
    pub fn select_sharers(&self, n_workers: usize, seed: u64, step: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let perm = permutation(n_workers, &mut rng);
        let mut chosen: Vec<usize> = perm.into_iter().take(self.num_sharers(n_workers)).collect();
        chosen.sort_unstable();
        chosen
    }

    /// Bytes transferred per iteration by injection: each of the
    /// `⌈αN⌉` sharers sends `⌈β·b′⌉` samples of `sample_bytes` to the
    /// pool (§III-E's `αβNb′`-samples estimate).
    pub fn bytes_per_iteration(&self, n_workers: usize, b_prime: usize, sample_bytes: u64) -> u64 {
        self.num_sharers(n_workers) as u64 * self.shared_per_worker(b_prime) as u64 * sample_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqn3_paper_example() {
        // paper: b=32, N=10-worker cluster, (0.5, 0.5) → b′ = 32/(1+2.5) ≈ 9
        let c = InjectionConfig::new(0.5, 0.5);
        assert_eq!(c.adjusted_batch_size(32, 10), 9);
        // §IV-E uses 16 workers: b′ = 32 / (1 + 0.25·16) = 6.4 → 6... the
        // paper rounds to 11 for N=10 in its non-IID runs; our floor of
        // 32/(1+0.25·10)=9 vs paper's 11 differs only by their rounding
        // convention, asserted here for the floor convention.
        let c2 = InjectionConfig::new(0.75, 0.75);
        assert_eq!(c2.adjusted_batch_size(32, 10), 4);
    }

    #[test]
    fn cumulative_batch_is_restored() {
        // b′(1 + αβN) ≈ b within rounding
        for &(a, b_, n, bsz) in &[
            (0.5f32, 0.5f32, 16usize, 32usize),
            (0.75, 0.75, 10, 32),
            (1.0, 1.0, 4, 64),
        ] {
            let c = InjectionConfig::new(a, b_);
            let bp = c.adjusted_batch_size(bsz, n);
            let cumulative = bp as f32 * (1.0 + a * b_ * n as f32);
            assert!(
                (cumulative - bsz as f32).abs() <= (1.0 + a * b_ * n as f32),
                "cumulative {cumulative} vs {bsz}"
            );
        }
    }

    #[test]
    fn sharer_selection_is_consistent_across_workers() {
        let c = InjectionConfig::new(0.5, 0.5);
        let a = c.select_sharers(16, 99, 1234);
        let b = c.select_sharers(16, 99, 1234);
        assert_eq!(a, b, "all workers agree on the subset");
        assert_eq!(a.len(), 8);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique ids");
    }

    #[test]
    fn sharer_selection_varies_by_step() {
        let c = InjectionConfig::new(0.5, 0.5);
        let steps: Vec<Vec<usize>> = (0..20).map(|s| c.select_sharers(16, 7, s)).collect();
        let distinct: std::collections::HashSet<_> = steps.iter().collect();
        assert!(distinct.len() > 1, "different steps pick different subsets");
    }

    #[test]
    fn bytes_accounting_matches_paper_scale() {
        // paper §III-E: 16 workers, b=32, (0.5, 0.5), CIFAR ~3 KB/sample
        // → ~132 KB per iteration. With b′=3 via Eqn 3 (N=16) our floor
        // convention gives 8 sharers × 2 samples × 3 KB = 48 KB — same
        // order of magnitude, small vs. the 100s-of-MB model exchange.
        let c = InjectionConfig::new(0.5, 0.5);
        let bp = c.adjusted_batch_size(32, 16);
        let bytes = c.bytes_per_iteration(16, bp, 3_000);
        assert!(bytes > 10_000 && bytes < 200_000, "{bytes}");
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        InjectionConfig::new(0.0, 0.5);
    }
}
