//! Non-IID (label-skew) partitioning for the federated experiments.
//!
//! The paper's setup (§IV-A): CIFAR10 split across 10 workers with **1
//! label per worker**, CIFAR100 with **10 labels per worker**. Each class
//! is owned by as many workers as needed so every worker gets exactly
//! `labels_per_worker` classes, and a class's samples are divided evenly
//! among its owners.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selsync_tensor::init::permutation;

/// Partition sample indices by label skew.
///
/// Returns one index list per worker. Every sample is assigned to
/// exactly one worker, and worker `w` only holds samples from its
/// assigned `labels_per_worker` classes.
///
/// # Panics
/// Panics unless `n_workers * labels_per_worker` is a multiple of the
/// class count (so assignment is balanced), or if any class has no
/// samples.
pub fn noniid_label_partition(
    labels: &[usize],
    num_classes: usize,
    n_workers: usize,
    labels_per_worker: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let slots = n_workers * labels_per_worker;
    assert!(
        slots.is_multiple_of(num_classes),
        "workers×labels ({slots}) must be a multiple of classes ({num_classes})"
    );
    let owners_per_class = slots / num_classes;

    // samples per class, in shuffled order so splits are random
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label {l} out of range");
        by_class[l].push(i);
    }
    for c in by_class.iter_mut() {
        let perm = permutation(c.len(), &mut rng);
        *c = perm.into_iter().map(|p| c[p]).collect();
    }

    // assign class slots to workers round-robin over a shuffled class list
    let class_order = permutation(num_classes, &mut rng);
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n_workers]; // classes per worker
    let mut slot = 0usize;
    for _ in 0..owners_per_class {
        for &c in &class_order {
            assignment[slot % n_workers].push(c);
            slot += 1;
        }
    }

    // split each class's samples among its owners
    let mut owners_of_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (w, classes) in assignment.iter().enumerate() {
        for &c in classes {
            owners_of_class[c].push(w);
        }
    }
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
    for (c, owners) in owners_of_class.iter().enumerate() {
        assert!(!by_class[c].is_empty(), "class {c} has no samples");
        let share = by_class[c].len() / owners.len().max(1);
        for (k, &w) in owners.iter().enumerate() {
            let start = k * share;
            let end = if k + 1 == owners.len() {
                by_class[c].len()
            } else {
                start + share
            };
            out[w].extend_from_slice(&by_class[c][start..end]);
        }
    }
    out
}

/// Number of distinct labels in an index set.
pub fn distinct_labels(indices: &[usize], labels: &[usize]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &i in indices {
        seen.insert(labels[i]);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn one_label_per_worker_cifar10_style() {
        // 10 classes, 10 workers, 1 label each — the paper's CIFAR10 split
        let l = labels(1000, 10);
        let parts = noniid_label_partition(&l, 10, 10, 1, 0);
        assert_eq!(parts.len(), 10);
        for (w, p) in parts.iter().enumerate() {
            assert_eq!(distinct_labels(p, &l), 1, "worker {w} must hold one class");
            assert_eq!(p.len(), 100);
        }
    }

    #[test]
    fn ten_labels_per_worker_cifar100_style() {
        let l = labels(5000, 100);
        let parts = noniid_label_partition(&l, 100, 10, 10, 1);
        for p in &parts {
            assert_eq!(distinct_labels(p, &l), 10);
        }
    }

    #[test]
    fn assignment_is_a_partition() {
        let l = labels(600, 10);
        let parts = noniid_label_partition(&l, 10, 5, 2, 2);
        let mut seen = vec![false; 600];
        for p in &parts {
            for &i in p {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all samples assigned");
    }

    #[test]
    fn shared_classes_split_samples() {
        // 2 classes, 4 workers, 1 label each → each class owned by 2 workers
        let l = labels(100, 2);
        let parts = noniid_label_partition(&l, 2, 4, 1, 3);
        for p in &parts {
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let l = labels(500, 10);
        let a = noniid_label_partition(&l, 10, 10, 1, 42);
        let b = noniid_label_partition(&l, 10, 10, 1, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn unbalanced_config_rejected() {
        let l = labels(100, 10);
        noniid_label_partition(&l, 10, 3, 1, 0); // 3 slots over 10 classes
    }
}
