//! # selsync-shard
//!
//! The **sharded parameter-server** subsystem: everything needed to run
//! K independent copies of the elastic PS, each owning one contiguous
//! range of the flat parameter vector, behind the fan-out client in
//! `selsync_comm::shard`.
//!
//! The design principle is *reuse by translation*, not reimplementation:
//!
//! * [`ShardMap`] — a validated wrapper over the wire-level
//!   [`ShardSpec`](selsync_comm::ShardSpec), built from the pure
//!   partition function `selsync_comm::elastic::shard_starts` so every
//!   rank computes the identical map with no coordination;
//! * [`ShardLayout`] — the shards-first physical rank layout
//!   (shards `0..K`, workers `K..K+W`, standbys `K+W..K+2W`) and its
//!   inverse, shared by the launcher, the benches, and the process
//!   tests so no two layers can disagree about who is who;
//! * [`ShardView`] — a [`Transport`](selsync_comm::Transport) adapter
//!   that presents shard `s`'s slice of the physical fabric as the
//!   *monolithic logical world* (workers `0..W`, server `W`, standby
//!   `W+1`). The unmodified elastic server, checkpoint writer, and
//!   hot-standby machinery run verbatim on top of it — which is also
//!   the K = 1 bit-identity argument: at K = 1 the view is a plain
//!   relabeling, so the sharded path executes exactly the monolithic
//!   code over exactly the monolithic message sequence.

#![deny(unsafe_code)]

pub mod layout;
pub mod map;
pub mod view;

pub use layout::{Role, ShardLayout};
pub use map::ShardMap;
pub use view::{ShardView, ViewRole};
