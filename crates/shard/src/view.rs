//! [`ShardView`]: the rank-translation transport that lets the
//! *unmodified* monolithic elastic server serve one shard.
//!
//! The elastic server, its resumable checkpoint writer, and the hot
//! standby all address a logical world of `W` workers at `0..W`, a
//! server at `W`, and a standby at `W+1`. A sharded cluster's physical
//! world is shards-first ([`ShardLayout`]). This adapter sits between
//! them: sends translate logical → physical, received messages
//! translate physical → logical, and nothing else changes — so one
//! shard's server is *literally* the monolithic code path, including
//! every recovery behavior PR 3 proved about it.

use crate::layout::ShardLayout;
use selsync_comm::{CommStats, Msg, Payload, Transport, TransportError};
use std::sync::Arc;
use std::time::Duration;

/// Which logical identity this view presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewRole {
    /// The shard's serving rank (logical id `W`).
    Server,
    /// The shard's hot standby (logical id `W+1`).
    Standby,
}

/// A shard-local logical world over a physical transport. See the
/// module docs.
pub struct ShardView<T: Transport> {
    inner: T,
    layout: ShardLayout,
    shard: usize,
    role: ViewRole,
}

impl<T: Transport> ShardView<T> {
    /// Wrap `inner` (the physical endpoint of shard `shard`'s server or
    /// standby rank) as its logical identity.
    ///
    /// # Panics
    /// Panics if `inner`'s physical rank does not match the layout's
    /// rank for (`shard`, `role`) — an addressing bug.
    pub fn new(inner: T, layout: ShardLayout, shard: usize, role: ViewRole) -> Self {
        let expect = match role {
            ViewRole::Server => layout.shard_rank(shard),
            ViewRole::Standby => layout.standby_rank(shard),
        };
        assert_eq!(
            inner.id(),
            expect,
            "endpoint rank does not match shard {shard} {role:?}"
        );
        ShardView {
            inner,
            layout,
            shard,
            role,
        }
    }

    /// Unwrap the physical endpoint (e.g. to flush or close it).
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Logical → physical rank.
    fn to_physical(&self, logical: usize) -> usize {
        let w = self.layout.n_workers;
        if logical < w {
            self.layout.worker_rank(logical)
        } else if logical == w {
            self.layout.shard_rank(self.shard)
        } else if logical == w + 1 && self.layout.standby {
            self.layout.standby_rank(self.shard)
        } else {
            // lint:allow(unwrap-in-prod): the elastic server only ever
            // addresses its logical workers and standby; any other id is
            // a relabeling bug that must fail loudly, not misroute
            panic!(
                "logical rank {logical} has no physical peer in shard {}'s world",
                self.shard
            );
        }
    }

    /// Physical → logical rank. `None` for ranks outside this shard's
    /// world (a sibling shard's server/standby) — those never converse
    /// with this one, so seeing such a sender is a protocol violation.
    fn to_logical(&self, physical: usize) -> Option<usize> {
        use crate::layout::Role;
        match self.layout.role_of(physical) {
            Role::Worker(w) => Some(w),
            Role::Shard(s) if s == self.shard => Some(self.layout.n_workers),
            Role::Standby(s) if s == self.shard => Some(self.layout.n_workers + 1),
            Role::Shard(_) | Role::Standby(_) => None,
        }
    }

    /// Translate a received message into the logical world.
    fn translate(&self, m: Msg) -> Result<Msg, TransportError> {
        match self.to_logical(m.from) {
            Some(from) => Ok(Msg { from, ..m }),
            None => Err(TransportError::Protocol(format!(
                "shard {} received a message from foreign rank {}",
                self.shard, m.from
            ))),
        }
    }
}

impl<T: Transport> Transport for ShardView<T> {
    fn id(&self) -> usize {
        match self.role {
            ViewRole::Server => self.layout.n_workers,
            ViewRole::Standby => self.layout.n_workers + 1,
        }
    }

    fn fabric_size(&self) -> usize {
        self.layout.n_workers + 1 + usize::from(self.layout.standby)
    }

    fn stats(&self) -> &Arc<CommStats> {
        self.inner.stats()
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), TransportError> {
        let phys = self.to_physical(to);
        self.inner.send(phys, tag, payload)
    }

    fn recv_any(&mut self) -> Result<Msg, TransportError> {
        let m = self.inner.recv_any()?;
        self.translate(m)
    }

    fn recv_tagged(&mut self, from: Option<usize>, tag: u64) -> Result<Msg, TransportError> {
        let phys = from.map(|f| self.to_physical(f));
        let m = self.inner.recv_tagged(phys, tag)?;
        self.translate(m)
    }

    fn recv_deadline(
        &mut self,
        from: Option<usize>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<Msg, TransportError> {
        let phys = from.map(|f| self.to_physical(f));
        let m = self.inner.recv_deadline(phys, tag, timeout)?;
        self.translate(m)
    }

    fn try_recv(&mut self) -> Option<Msg> {
        let m = self.inner.try_recv()?;
        // a foreign sender here is unrecoverable through Option — keep
        // the panic loud rather than silently dropping the message
        match self.translate(m) {
            Ok(m) => Some(m),
            // lint:allow(unwrap-in-prod): documented above — a foreign
            // sender is unrecoverable through Option
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selsync_comm::Fabric;

    /// 2 shards, 2 workers, standbys: ranks 0,1 shards; 2,3 workers;
    /// 4,5 standbys.
    fn layout() -> ShardLayout {
        ShardLayout::new(2, 2, true)
    }

    #[test]
    fn server_view_translates_both_directions() {
        let mut eps = Fabric::new(6);
        let mut worker0 = eps.remove(2); // physical worker rank 2
        let shard1_ep = eps.remove(1); // physical shard rank 1
        let mut view = ShardView::new(shard1_ep, layout(), 1, ViewRole::Server);
        // the view presents the monolithic logical identity
        assert_eq!(view.id(), 2, "logical server id is W");
        assert_eq!(view.fabric_size(), 4, "W workers + server + standby");

        // physical worker 2 is logical worker 0
        worker0.send(1, 7, Payload::Control(1)).unwrap();
        let m = view.recv_tagged(Some(0), 7).unwrap();
        assert_eq!(m.from, 0);

        // replying to logical 0 reaches physical rank 2
        view.send(0, 8, Payload::Control(2)).unwrap();
        let m = worker0.recv_tagged(Some(1), 8).unwrap();
        assert_eq!(m.payload, Payload::Control(2));
    }

    #[test]
    fn standby_view_is_logical_w_plus_one() {
        let mut eps = Fabric::new(6);
        let standby1_ep = eps.remove(5); // physical standby of shard 1
        let shard1_ep = eps.remove(1);
        let mut server = ShardView::new(shard1_ep, layout(), 1, ViewRole::Server);
        let mut standby = ShardView::new(standby1_ep, layout(), 1, ViewRole::Standby);
        assert_eq!(standby.id(), 3, "logical standby id is W+1");

        // server shadows to its logical standby, standby hears it from
        // the logical server
        server.send(3, 9, Payload::Control(5)).unwrap();
        let m = standby.recv_tagged(Some(2), 9).unwrap();
        assert_eq!(m.from, 2);
        assert_eq!(m.payload, Payload::Control(5));
    }

    #[test]
    fn foreign_shard_traffic_is_a_protocol_error() {
        let mut eps = Fabric::new(6);
        let shard1_ep = eps.remove(1);
        let shard0_ep = eps.remove(0);
        let mut view = ShardView::new(shard1_ep, layout(), 1, ViewRole::Server);
        let foreign = shard0_ep;
        foreign.send(1, 3, Payload::Control(0)).unwrap();
        let err = view.recv_tagged(None, 3).unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "no physical peer")]
    fn sending_outside_the_logical_world_panics() {
        let mut eps = Fabric::new(6);
        let shard0_ep = eps.remove(0);
        let mut view = ShardView::new(shard0_ep, layout(), 0, ViewRole::Server);
        let _ = view.send(7, 0, Payload::Control(0));
    }
}
