//! The shards-first physical rank layout and its inverse.
//!
//! A sharded cluster assigns ranks as
//!
//! ```text
//! 0 .. K            the K shard servers
//! K .. K+W          the W workers (logical worker w = rank − K)
//! K+W .. K+W+K      one hot standby per shard (only with standbys on)
//! ```
//!
//! Putting shards first keeps worker logical ids (`rank − K`) dense and
//! ordered identically to the monolithic layout's worker ids `0..W`,
//! which is what makes the K = 1 sharded run replay the monolithic run
//! exactly (same per-worker seeds, same data partitions, same
//! rank-ordered reduction).

/// What a physical rank does in a sharded cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serves shard `.0`.
    Shard(usize),
    /// Trains as logical worker `.0`.
    Worker(usize),
    /// Hot standby for shard `.0`.
    Standby(usize),
}

/// Rank arithmetic for a K-shard, W-worker cluster. One definition,
/// shared by the launcher, the benches, and the process tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    /// Shard count K (>= 1).
    pub k: usize,
    /// Worker count W (>= 1).
    pub n_workers: usize,
    /// Whether every shard has a hot standby.
    pub standby: bool,
}

impl ShardLayout {
    /// Build a layout.
    ///
    /// # Panics
    /// Panics on zero shards or zero workers — configuration bugs.
    pub fn new(k: usize, n_workers: usize, standby: bool) -> Self {
        assert!(k > 0, "need at least one shard");
        assert!(n_workers > 0, "need at least one worker");
        ShardLayout {
            k,
            n_workers,
            standby,
        }
    }

    /// Total ranks in the fabric.
    pub fn total_ranks(&self) -> usize {
        self.k + self.n_workers + if self.standby { self.k } else { 0 }
    }

    /// Physical rank serving shard `s`.
    pub fn shard_rank(&self, s: usize) -> usize {
        assert!(s < self.k);
        s
    }

    /// Physical rank of logical worker `w`.
    pub fn worker_rank(&self, w: usize) -> usize {
        assert!(w < self.n_workers);
        self.k + w
    }

    /// Physical rank of shard `s`'s standby.
    ///
    /// # Panics
    /// Panics when the layout has no standbys.
    pub fn standby_rank(&self, s: usize) -> usize {
        assert!(self.standby, "layout has no standbys");
        assert!(s < self.k);
        self.k + self.n_workers + s
    }

    /// All shard-serving ranks, in shard order.
    pub fn shard_ranks(&self) -> Vec<usize> {
        (0..self.k).collect()
    }

    /// All standby ranks in shard order, if the layout has them.
    pub fn standby_ranks(&self) -> Option<Vec<usize>> {
        self.standby
            .then(|| (0..self.k).map(|s| self.k + self.n_workers + s).collect())
    }

    /// What physical rank `rank` does.
    ///
    /// # Panics
    /// Panics if `rank` is outside the layout — an addressing bug.
    pub fn role_of(&self, rank: usize) -> Role {
        if rank < self.k {
            Role::Shard(rank)
        } else if rank < self.k + self.n_workers {
            Role::Worker(rank - self.k)
        } else if self.standby && rank < self.total_ranks() {
            Role::Standby(rank - self.k - self.n_workers)
        } else {
            // lint:allow(unwrap-in-prod): asking for a rank outside the
            // layout is a wiring bug in the caller, not a runtime fault
            panic!("rank {rank} outside layout {self:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips_every_rank() {
        for (k, w, sb) in [(1, 2, false), (2, 3, true), (4, 1, true)] {
            let l = ShardLayout::new(k, w, sb);
            for s in 0..k {
                assert_eq!(l.role_of(l.shard_rank(s)), Role::Shard(s));
            }
            for wk in 0..w {
                assert_eq!(l.role_of(l.worker_rank(wk)), Role::Worker(wk));
            }
            if sb {
                for s in 0..k {
                    assert_eq!(l.role_of(l.standby_rank(s)), Role::Standby(s));
                }
            }
            // every rank maps to exactly one role and back
            assert_eq!(l.total_ranks(), k + w + if sb { k } else { 0 });
        }
    }

    #[test]
    fn k1_matches_shards_first_relabeling() {
        // at K = 1 with no standby: shard at 0, workers 1..=W — worker
        // logical ids are dense 0..W exactly as in the monolithic layout
        let l = ShardLayout::new(1, 3, false);
        assert_eq!(l.shard_ranks(), vec![0]);
        assert_eq!(
            (0..3).map(|w| l.worker_rank(w)).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(l.standby_ranks(), None);
    }

    #[test]
    #[should_panic(expected = "outside layout")]
    fn out_of_range_rank_panics() {
        ShardLayout::new(2, 2, false).role_of(4);
    }
}
