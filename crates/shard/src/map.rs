//! Validated range-partition maps over the flat parameter vector.

use selsync_comm::elastic::shard_starts;
use selsync_comm::ShardSpec;
use std::ops::Range;

/// A *validated* partition of `[0, total)` into K contiguous ranges.
///
/// The wire carries the raw [`ShardSpec`]; this wrapper is the only way
/// the rest of the subsystem obtains one, so every map in circulation is
/// known to be well-formed: `starts[0] == 0`, starts non-decreasing and
/// bounded by `total`, `K >= 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    spec: ShardSpec,
}

impl ShardMap {
    /// The canonical map for `total` parameters over `k` shards —
    /// contiguous ranges of `ceil(total / k)`, the same pure function
    /// every rank evaluates.
    pub fn compute(total: u64, k: usize) -> Self {
        ShardMap {
            spec: ShardSpec {
                version: 1,
                total,
                starts: shard_starts(total, k),
            },
        }
    }

    /// Adopt a spec received off the wire, rejecting malformed ones.
    ///
    /// # Errors
    /// A human-readable description of the violation; the caller turns
    /// it into a protocol error (a bad map must never carry traffic).
    pub fn from_spec(spec: ShardSpec) -> Result<Self, String> {
        if spec.starts.is_empty() {
            return Err("shard map has zero shards".into());
        }
        if spec.starts[0] != 0 {
            return Err(format!(
                "shard 0 must start at 0, starts at {}",
                spec.starts[0]
            ));
        }
        for w in spec.starts.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "shard starts not monotonic: {} then {}",
                    w[0], w[1]
                ));
            }
        }
        // lint:allow(unwrap-in-prod): non-empty is checked above
        let last = *spec.starts.last().unwrap();
        if last > spec.total {
            return Err(format!(
                "last shard starts at {last}, past total {}",
                spec.total
            ));
        }
        Ok(ShardMap { spec })
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.spec.starts.len()
    }

    /// Total parameter count partitioned by this map.
    pub fn total(&self) -> u64 {
        self.spec.total
    }

    /// The wire-level spec (for handshakes and membership echoes).
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Shard `s`'s element range.
    pub fn range(&self, s: usize) -> Range<usize> {
        let start = self.spec.starts[s] as usize;
        let end = self
            .spec
            .starts
            .get(s + 1)
            .map_or(self.spec.total as usize, |&e| e as usize);
        start..end
    }

    /// Number of elements shard `s` owns.
    pub fn len_of(&self, s: usize) -> usize {
        self.range(s).len()
    }

    /// Shard `s`'s slice of a full parameter vector.
    ///
    /// # Panics
    /// Panics if `params` does not match `total()` — a wiring bug.
    pub fn slice<'a>(&self, params: &'a [f32], s: usize) -> &'a [f32] {
        assert_eq!(
            params.len() as u64,
            self.spec.total,
            "vector does not match this map"
        );
        &params[self.range(s)]
    }

    /// Which shard owns flat index `i`.
    pub fn shard_of(&self, i: u64) -> usize {
        debug_assert!(i < self.spec.total);
        match self.spec.starts.binary_search(&i) {
            // on a boundary: the shard that *starts* there owns it, but
            // empty trailing shards share a start — take the first
            Ok(s) => {
                let mut s = s;
                while s > 0 && self.spec.starts[s - 1] == self.spec.starts[s] {
                    s -= 1;
                }
                s
            }
            Err(ins) => ins - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_partitions_exactly() {
        let m = ShardMap::compute(10, 4);
        assert_eq!(m.k(), 4);
        assert_eq!(m.range(0), 0..3);
        assert_eq!(m.range(3), 9..10);
        let covered: usize = (0..4).map(|s| m.len_of(s)).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn slices_tile_the_vector() {
        let params: Vec<f32> = (0..103).map(|i| i as f32).collect();
        for k in [1, 2, 4, 7] {
            let m = ShardMap::compute(params.len() as u64, k);
            let rebuilt: Vec<f32> = (0..k).flat_map(|s| m.slice(&params, s).to_vec()).collect();
            assert_eq!(rebuilt, params, "k={k}");
        }
    }

    #[test]
    fn shard_of_matches_ranges() {
        for k in [1, 2, 4, 5] {
            let m = ShardMap::compute(17, k);
            for i in 0..17u64 {
                let s = m.shard_of(i);
                assert!(m.range(s).contains(&(i as usize)), "i={i} k={k} s={s}");
            }
        }
    }

    #[test]
    fn from_spec_rejects_malformed_maps() {
        let bad = |starts: Vec<u64>, total| {
            ShardMap::from_spec(ShardSpec {
                version: 1,
                total,
                starts,
            })
        };
        assert!(bad(vec![], 10).is_err(), "zero shards");
        assert!(bad(vec![1, 5], 10).is_err(), "must start at 0");
        assert!(bad(vec![0, 6, 3], 10).is_err(), "non-monotonic");
        assert!(bad(vec![0, 11], 10).is_err(), "start past total");
        assert!(bad(vec![0, 5], 10).is_ok());
        // round-trips the canonical map
        let m = ShardMap::compute(100, 3);
        assert_eq!(ShardMap::from_spec(m.spec().clone()).unwrap(), m);
    }
}
