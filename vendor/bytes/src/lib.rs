//! Offline vendored subset of the `bytes` crate: the [`Buf`]/[`BufMut`]
//! cursor traits and the [`Bytes`]/[`BytesMut`] buffer types the wire
//! codec builds frames with. Multi-byte integers use big-endian network
//! order, matching the real crate's un-suffixed methods.

use std::sync::Arc;

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Drop `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// `true` while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian IEEE-754 f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Copy exactly `dst.len()` bytes out.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 f32.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable, uniquely-owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable shared byte buffer (clones share the allocation).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::new(src.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        *self.data == *other.data
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_is_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(u64::MAX - 1);
        b.put_f32(-1.5);
        assert_eq!(b[1..5], [0xDE, 0xAD, 0xBE, 0xEF], "network byte order");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_f32(), -1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }

    #[test]
    fn bytes_clones_share_storage() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&*b, b"hello");
        assert_eq!(b, c);
    }
}
