//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++, seeded via
/// SplitMix64 (the initialization the xoshiro authors recommend).
///
/// Not cryptographically secure — statistical quality only, which is all
/// model initialization, shuffling and dropout need.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // seed state {1, 2, 3, 4} must reproduce the published
        // xoshiro256++ reference output
        let mut r = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for &e in &expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_state_is_nonzero() {
        let r = StdRng::seed_from_u64(0);
        assert!(r.s.iter().any(|&w| w != 0));
    }
}
