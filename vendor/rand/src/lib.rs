//! Offline vendored subset of the `rand` crate.
//!
//! The growth container has no network access, so the real crates.io
//! `rand` cannot be fetched. This crate reimplements exactly the API
//! surface the workspace uses — `StdRng`, [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] sampling methods — on top of a small, fast,
//! well-tested PRNG (xoshiro256++ seeded through SplitMix64).
//!
//! Determinism contract: a given seed produces the same stream on every
//! platform and in every process, which the SelSync reproduction relies
//! on for bit-identical replicas across ranks.

pub mod rngs;

/// Core pseudo-random number source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value of type `Self` from all of its range
/// (floats: `[0, 1)`), mirroring rand's `StandardUniform` distribution.
pub trait UniformSample: Sized {
    /// Draw one value from `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 precision
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased bounded sampling via rejection.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample from empty range");
                if s == 0 && e as u128 == <$t>::MAX as u128 {
                    return (rng.next_u64() as u128 % (<$t>::MAX as u128 + 1)) as $t;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as UniformSample>::sample_uniform(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform value of `T` (floats land in `[0, 1)`).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: rand's historical name for [`RngExt`].
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let xs: Vec<f32> = (0..10_000).map(|_| r.random()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(xs.iter().any(|&x| x < 0.01) && xs.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn int_ranges_are_uniform_and_bounded() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            let v = r.random_range(0usize..6);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
        for i in 0..100usize {
            let v = r.random_range(0..=i);
            assert!(v <= i);
        }
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let v = r.random_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }
}
