//! Offline vendored `serde_json`: renders and parses the vendored serde
//! [`Value`] tree as JSON text. Non-finite floats render as `null`
//! (matching how the workspace's metrics treat NaN), and `null` parses
//! back to NaN for float targets.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;
use std::io;

pub use serde::Error;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

/// Deserialize a `T` from a JSON byte stream.
pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::custom(format!("io error: {e}")))?;
    from_str(&text)
}

// ---- rendering ---------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) if f.is_finite() => {
            // `{:?}` is shortest-roundtrip and keeps a ".0" on integral
            // floats, so floats stay visually distinct from integers.
            let _ = write!(out, "{f:?}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => render_block(out, indent, level, items.len(), '[', ']', |out, lvl| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, lvl, i);
                render(item, out, indent, lvl);
            }
        }),
        Value::Map(pairs) => render_block(out, indent, level, pairs.len(), '{', '}', |out, lvl| {
            for (i, (key, val)) in pairs.iter().enumerate() {
                sep(out, indent, lvl, i);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, lvl);
            }
        }),
    }
}

fn render_block(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    body: impl FnOnce(&mut String, usize),
) {
    out.push(open);
    if len > 0 {
        body(out, level + 1);
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, level: usize, i: usize) {
    if i > 0 {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn fail(&self, what: &str) -> Error {
        Error::custom(format!("{what} at byte {}", self.pos))
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|_| Value::Null),
            Some(b't') => self.expect_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.fail("expected `:`"));
            }
            self.pos += 1;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| self.fail("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // surrogate pair: require \uXXXX low half
                                self.expect_literal("\\u")?;
                                let low = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // multi-byte UTF-8: copy the full sequence
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.fail("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.fail("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        weight: f32,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Scaled { factor: f32, bias: f32 },
        Pair(u32, u32),
        Wrapped(String),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        id: usize,
        kind: Kind,
        items: Vec<Inner>,
        note: Option<String>,
        ratio: f32,
    }

    fn sample() -> Outer {
        Outer {
            id: 7,
            kind: Kind::Scaled {
                factor: 0.25,
                bias: -1.5,
            },
            items: vec![
                Inner {
                    label: "a\"quote\\\n".into(),
                    weight: 0.125,
                },
                Inner {
                    label: "üñíçødé ✓".into(),
                    weight: 3.0,
                },
            ],
            note: None,
            ratio: 0.6908948,
        }
    }

    #[test]
    fn derived_struct_roundtrips_compact_and_pretty() {
        let v = sample();
        let compact: Outer = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
        let pretty: Outer = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn enum_representation_is_externally_tagged() {
        assert_eq!(to_string(&Kind::Plain).unwrap(), "\"Plain\"");
        assert_eq!(to_string(&Kind::Pair(1, 2)).unwrap(), "{\"Pair\":[1,2]}");
        assert_eq!(
            to_string(&Kind::Wrapped("x".into())).unwrap(),
            "{\"Wrapped\":\"x\"}"
        );
        assert!(from_str::<Kind>("\"Nope\"").is_err());
    }

    #[test]
    fn nan_serializes_to_null_and_parses_back_to_nan() {
        let mut v = sample();
        v.ratio = f32::NAN;
        let text = to_string(&v).unwrap();
        assert!(text.contains("\"ratio\":null"), "got: {text}");
        let back: Outer = from_str(&text).unwrap();
        assert!(back.ratio.is_nan());
    }

    #[test]
    fn f32_precision_survives_the_f64_detour() {
        for x in [0.58494717f32, 0.6908948, f32::MIN_POSITIVE, 1e30, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "text: {text}");
        }
    }

    #[test]
    fn writer_and_reader_paths_roundtrip() {
        let v = sample();
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &v).unwrap();
        let back: Outer = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("12 34").is_err(), "trailing characters");
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }

    #[test]
    fn option_fields_accept_null_and_absent() {
        let with_note: Outer = from_str(
            &to_string(&Outer {
                note: Some("hi".into()),
                ..sample()
            })
            .unwrap(),
        )
        .unwrap();
        assert_eq!(with_note.note.as_deref(), Some("hi"));
        // absent key: build JSON without `note` entirely
        let text = to_string(&sample()).unwrap().replace(",\"note\":null", "");
        let missing: Outer = from_str(&text).unwrap();
        assert_eq!(missing.note, None);
    }
}
