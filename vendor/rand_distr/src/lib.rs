//! Offline vendored subset of the `rand_distr` crate: the [`Normal`],
//! [`StandardNormal`] and [`Uniform`] distributions the workspace's
//! initializers and Hutchinson probes sample from.

use rand::{RngCore, UniformSample};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Standard normal N(0, 1) via the Box–Muller transform.
///
/// Each sample draws two uniforms; no spare is cached so the stream
/// consumed from the RNG is a pure function of the call count.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite
    let u1 = 1.0 - f64::sample_uniform(rng);
    let u2 = f64::sample_uniform(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng) as f32
    }
}

/// Floating-point scalars the parametric distributions support. Sealed
/// to `f32`/`f64`; exists so `Normal::new(0.0f32, s)` resolves through
/// one generic impl (separate inherent impls would make `new` ambiguous
/// at call sites that rely on inference, as upstream rand_distr's
/// callers do).
pub trait Float:
    Copy
    + PartialOrd
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + UniformSample
    + sealed::Sealed
{
    #[doc(hidden)]
    fn finite(self) -> bool;
    #[doc(hidden)]
    fn zero() -> Self;
    #[doc(hidden)]
    fn cast_f64(v: f64) -> Self;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

impl Float for f32 {
    fn finite(self) -> bool {
        self.is_finite()
    }
    fn zero() -> Self {
        0.0
    }
    fn cast_f64(v: f64) -> Self {
        v as f32
    }
}

impl Float for f64 {
    fn finite(self) -> bool {
        self.is_finite()
    }
    fn zero() -> Self {
        0.0
    }
    fn cast_f64(v: f64) -> Self {
        v
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl<T: Float> Normal<T> {
    /// `Err` when `std_dev` is negative or non-finite.
    pub fn new(mean: T, std_dev: T) -> Result<Self, ParamError> {
        if !std_dev.finite() || std_dev < T::zero() {
            return Err(ParamError("std_dev must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<T: Float> Distribution<T> for Normal<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.mean + self.std_dev * T::cast_f64(box_muller(rng))
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    span: T,
}

impl<T: Float> Uniform<T> {
    /// `Err` when the bounds are non-finite or inverted.
    pub fn new(low: T, high: T) -> Result<Self, ParamError> {
        if !(low.finite() && high.finite() && low < high) {
            return Err(ParamError("need finite low < high"));
        }
        Ok(Uniform {
            low,
            span: high - low,
        })
    }
}

impl<T: Float> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.low + T::sample_uniform(rng) * self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(10.0f32, 0.5).unwrap();
        let xs: Vec<f32> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!(Normal::new(0.0f32, -1.0).is_err());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(-2.0f32, 3.0).unwrap();
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
        assert!(Uniform::new(1.0f32, 1.0).is_err());
    }
}
