//! End-to-end exercise of the vendored `proptest!` macro surface.

use proptest::prelude::*;

fn halves() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-0.5f32..0.5, 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn assume_discards_without_failing(n in 0usize..100) {
        prop_assume!(n % 2 == 0);
        prop_assert!(n % 2 == 0, "n = {n}");
        prop_assert_ne!(n, 1);
    }

    #[test]
    fn helper_strategies_compose(
        v in halves(),
        scale in 1.0f32..4.0,
    ) {
        let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
        prop_assert_eq!(scaled.len(), v.len());
        prop_assert!(scaled.iter().all(|x| x.abs() < 2.0));
    }
}
