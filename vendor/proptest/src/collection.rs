//! `prop::collection::vec`, the one collection strategy this workspace
//! uses.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact `usize`, a half-open
/// `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `prop::collection::vec(element_strategy, len)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 >= self.size.max_exclusive {
            self.size.min
        } else {
            rng.random_range(self.size.min..self.size.max_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let mut rng = case_rng("collection::bounds", 1);
        let ranged = vec(-1.0f32..1.0, 2..9);
        let exact = vec(0usize..6, 6);
        for _ in 0..500 {
            let v = ranged.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let e = exact.generate(&mut rng);
            assert_eq!(e.len(), 6);
            assert!(e.iter().all(|&x| x < 6));
        }
    }
}
