//! Offline vendored `proptest` subset: the `proptest!` harness over
//! numeric-range and `prop::collection::vec` strategies — exactly the
//! surface this workspace's property tests use. Cases are generated
//! from a deterministic per-test seed (derived from the test's module
//! path and name), so failures reproduce exactly on re-run. Shrinking
//! is not implemented; a failing case panics with its assertion message.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::TestCaseError;

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test file needs: the macros, [`Strategy`],
/// [`ProptestConfig`], and the crate itself under the name `prop` (for
/// `prop::collection::vec`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __test_id = concat!(module_path!(), "::", stringify!($name));
                let mut __passed: u32 = 0;
                let mut __attempt: u64 = 0;
                while __passed < __config.cases {
                    __attempt += 1;
                    assert!(
                        __attempt <= (__config.cases as u64) * 64 + 1024,
                        "proptest: too many rejected cases in `{}` (prop_assume too strict?)",
                        __test_id,
                    );
                    let mut __rng = $crate::test_runner::case_rng(__test_id, __attempt);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case failed: {}\n  test: {}, case #{} (attempt {})",
                                __msg, __test_id, __passed, __attempt,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

/// Discard the current case (it doesn't count toward `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
