//! The [`Strategy`] trait and its implementations for numeric ranges.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

macro_rules! impl_inclusive_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, f32, f64);
impl_inclusive_range_strategies!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = case_rng("strategy::bounds", 1);
        for _ in 0..2000 {
            let a = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&a));
            let b = (10u64..=12).generate(&mut rng);
            assert!((10..=12).contains(&b));
            let c = (-2.5f32..4.0).generate(&mut rng);
            assert!((-2.5..4.0).contains(&c));
        }
    }
}
