//! Case generation plumbing shared by the `proptest!` expansion.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a single generated case, produced by the `prop_*` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard, don't count the case.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build the failing variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG for one case: seeded from the test's identifier
/// (module path + name) and the attempt counter, so every run of the
/// suite explores the identical case sequence.
pub fn case_rng(test_id: &str, attempt: u64) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for byte in test_id.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_id_and_attempt_reproduce_the_stream() {
        let a: Vec<u64> = (0..4).map(|_| case_rng("t::x", 3).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(
            case_rng("t::x", 3).next_u64(),
            case_rng("t::x", 4).next_u64()
        );
        assert_ne!(
            case_rng("t::x", 3).next_u64(),
            case_rng("t::y", 3).next_u64()
        );
    }
}
