//! Offline vendored subset of the `rayon` API: just enough to back the
//! tensor crate's `par_chunks_exact_mut(..).enumerate().for_each(..)`
//! hot path, implemented with `std::thread::scope` instead of a work-
//! stealing pool. Chunks are divided evenly across up to
//! `available_parallelism()` OS threads; the closure must be `Sync`
//! exactly as rayon requires.

use std::thread;

/// Parallel iterator adaptors on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into non-overlapping `chunk_size`-element chunks (the
    /// remainder, if any, is untouched — matching rayon's
    /// `par_chunks_exact_mut`) to be processed in parallel.
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;

    /// Split into non-overlapping `chunk_size`-element chunks, the last
    /// of which may be shorter (matching rayon's `par_chunks_mut`), to
    /// be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksExactMut {
            slice: self,
            chunk_size,
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel exact-chunks iterator (see [`ParallelSliceMut`]).
pub struct ParChunksExactMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksExactMut<'a, T> {
    /// Pair each chunk with its index, as rayon's `enumerate`.
    pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
        EnumeratedChunks {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksExactMut`].
pub struct EnumeratedChunks<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumeratedChunks<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair, fanning the chunk list
    /// out over scoped OS threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.slice.len() / self.chunk_size;
        if n_chunks == 0 {
            return;
        }
        let exact = &mut self.slice[..n_chunks * self.chunk_size];
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in exact.chunks_exact_mut(self.chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // split the chunk list into `workers` contiguous runs
        let per = n_chunks.div_ceil(workers);
        let f = &f;
        thread::scope(|scope| {
            let mut rest = exact;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = per.min(rest.len() / self.chunk_size);
                let (head, tail) = rest.split_at_mut(take * self.chunk_size);
                let chunk_size = self.chunk_size;
                scope.spawn(move || {
                    for (i, chunk) in head.chunks_exact_mut(chunk_size).enumerate() {
                        f((base + i, chunk));
                    }
                });
                base += take;
                rest = tail;
            }
        });
    }
}

/// Parallel chunks iterator including the trailing remainder chunk
/// (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index, as rayon's `enumerate`.
    pub fn enumerate(self) -> EnumeratedChunksInclusive<'a, T> {
        EnumeratedChunksInclusive {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumeratedChunksInclusive<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumeratedChunksInclusive<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair — the last chunk may be
    /// shorter than `chunk_size` — fanning the chunk list out over
    /// scoped OS threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.slice.len().div_ceil(self.chunk_size);
        if n_chunks == 0 {
            return;
        }
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in self.slice.chunks_mut(self.chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // split the chunk list into `workers` contiguous runs
        let per = n_chunks.div_ceil(workers);
        let f = &f;
        thread::scope(|scope| {
            let mut rest = self.slice;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = (per * self.chunk_size).min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let chunk_size = self.chunk_size;
                scope.spawn(move || {
                    for (i, chunk) in head.chunks_mut(chunk_size).enumerate() {
                        f((base + i, chunk));
                    }
                });
                base += take.div_ceil(self.chunk_size);
                rest = tail;
            }
        });
    }
}

/// Rayon-compatible prelude: import the slice extension trait.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_chunks_cover_every_row_once() {
        let mut v = vec![0u64; 16 * 64];
        v.as_mut_slice()
            .par_chunks_exact_mut(64)
            .enumerate()
            .for_each(|(i, row)| {
                for x in row {
                    *x += i as u64 + 1;
                }
            });
        for (i, row) in v.chunks_exact(64).enumerate() {
            assert!(row.iter().all(|&x| x == i as u64 + 1), "row {i}");
        }
    }

    #[test]
    fn remainder_is_untouched() {
        let mut v = vec![7u8; 10];
        v.as_mut_slice()
            .par_chunks_exact_mut(4)
            .for_each(|c| c.fill(0));
        assert_eq!(&v[8..], &[7, 7], "tail shorter than a chunk is skipped");
        assert!(v[..8].iter().all(|&x| x == 0));
    }

    #[test]
    fn inclusive_chunks_cover_remainder() {
        let mut v = vec![0u64; 16 * 64 + 13];
        v.as_mut_slice()
            .par_chunks_mut(64)
            .enumerate()
            .for_each(|(i, row)| {
                for x in row {
                    *x += i as u64 + 1;
                }
            });
        for (i, row) in v.chunks(64).enumerate() {
            assert!(row.iter().all(|&x| x == i as u64 + 1), "row {i}");
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = vec![1i32; 5];
        v.as_mut_slice()
            .par_chunks_exact_mut(5)
            .for_each(|c| c.fill(9));
        assert_eq!(v, vec![9; 5]);
    }
}
