use std::fmt;

/// Serialization/deserialization failure with a plain-text message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A required struct field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }

    /// A value had the wrong shape for the target type.
    pub fn type_mismatch(expected: &str, found: &str) -> Self {
        Error::custom(format!("invalid type: expected {expected}, found {found}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
