//! The tree data model every `Serialize`/`Deserialize` round-trips through.

/// A serialized value. Maps keep insertion order (struct field order) so
/// rendered JSON is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`; also the encoding of non-finite floats and `None`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A negative or small signed integer.
    I64(i64),
    /// A non-negative integer that may exceed `i64::MAX`.
    U64(u64),
    /// A finite floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; `(key, value)` pairs in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Look up a key when `self` is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}
