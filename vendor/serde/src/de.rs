//! Helpers called by `#[derive(Deserialize)]`-generated code. Public so
//! macro expansions can reach them via `::serde::de::*`, not intended
//! for hand-written call sites.

use crate::{Deserialize, Error, Value};

/// Interpret `v` as an object and expose its field pairs.
pub fn fields<'a>(v: &'a Value, type_name: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Map(pairs) => Ok(pairs),
        other => Err(Error::custom(format!(
            "invalid type for `{type_name}`: expected object, found {}",
            other.kind()
        ))),
    }
}

/// Extract and deserialize the struct field `name`, delegating absence
/// handling to `T::absent` (so `Option<T>` fields default to `None`).
pub fn field<T: Deserialize>(pairs: &[(String, Value)], name: &str) -> Result<T, Error> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::absent(name),
    }
}

/// Interpret `v` as an array of exactly `len` elements (tuple variants).
pub fn seq<'a>(v: &'a Value, len: usize, type_name: &str) -> Result<&'a [Value], Error> {
    match v {
        Value::Seq(items) if items.len() == len => Ok(items),
        Value::Seq(items) => Err(Error::custom(format!(
            "invalid length for `{type_name}`: expected {len} elements, found {}",
            items.len()
        ))),
        other => Err(Error::custom(format!(
            "invalid type for `{type_name}`: expected array, found {}",
            other.kind()
        ))),
    }
}

/// Decode an externally-tagged enum: either `"Variant"` (unit) or
/// `{"Variant": payload}`. Returns the tag and the payload (`Null` for
/// the unit form).
pub fn enum_variant<'a>(v: &'a Value, type_name: &str) -> Result<(&'a str, &'a Value), Error> {
    match v {
        Value::Str(tag) => Ok((tag.as_str(), &Value::Null)),
        Value::Map(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        other => Err(Error::custom(format!(
            "invalid type for enum `{type_name}`: expected string or single-key object, found {}",
            other.kind()
        ))),
    }
}

/// Error for an enum tag that matches no variant.
pub fn unknown_variant(type_name: &str, tag: &str) -> Error {
    Error::custom(format!("unknown variant `{tag}` for enum `{type_name}`"))
}
