//! `Serialize`/`Deserialize` implementations for std types.

use crate::{Deserialize, Error, Serialize, Value};

// ---- integers ----------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 && f.is_finite() => *f as i64,
                    other => return Err(Error::type_mismatch("integer", other.kind())),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && f.is_finite() => *f as u64,
                    other => return Err(Error::type_mismatch("integer", other.kind())),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

// ---- floats ------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as f64;
                if wide.is_finite() {
                    Value::F64(wide)
                } else {
                    // JSON has no NaN/Inf literal; mirror serde_json's
                    // lossy-float behavior of emitting null.
                    Value::Null
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::type_mismatch("float", other.kind())),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ---- bool / strings ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other.kind())),
        }
    }
}

// ---- references / containers ------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = crate::de::seq(v, $len, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0) => 1;
    (A.0, B.1) => 2;
    (A.0, B.1, C.2) => 3;
    (A.0, B.1, C.2, D.3) => 4;
}

#[cfg(test)]
mod tests {
    use crate::{Deserialize, Serialize, Value};

    #[test]
    fn numeric_widening_roundtrips() {
        assert_eq!(i32::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(u8::from_value(&Value::I64(255)).unwrap(), 255);
        assert!(u8::from_value(&Value::I64(256)).is_err());
        assert!(usize::from_value(&Value::I64(-1)).is_err());
        assert_eq!(f32::from_value(&Value::I64(3)).unwrap(), 3.0);
    }

    #[test]
    fn non_finite_floats_become_null_and_back_to_nan() {
        assert_eq!(f32::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f32::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn option_null_and_absent_both_mean_none() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::absent("x").unwrap(), None);
        assert!(u32::absent("x").is_err(), "non-Option fields stay required");
        assert_eq!(Some(5u32).to_value(), Value::U64(5));
    }

    #[test]
    fn vec_and_tuple_trees() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(Vec::<u32>::from_value(&v).unwrap(), vec![1, 2, 3]);
        let t = (1u8, -2i32, 0.5f64).to_value();
        assert_eq!(<(u8, i32, f64)>::from_value(&t).unwrap(), (1, -2, 0.5));
    }
}
