//! Offline vendored `serde` facade.
//!
//! The real serde cannot be fetched in this container, so this crate
//! provides the same *spelling* — `use serde::{Serialize, Deserialize}`
//! plus `#[derive(Serialize, Deserialize)]` — over a much simpler data
//! model: values serialize into a [`Value`] tree that `serde_json`
//! renders/parses. Enums use serde's externally-tagged representation,
//! so the JSON shape matches what upstream serde_json would emit.
//!
//! Deliberate deviations, both relied on by this workspace:
//! * non-finite floats serialize to `Null` and deserialize back to NaN
//!   (upstream errors on `from_str` instead);
//! * numbers are widened through `i64`/`u64`/`f64` rather than visited
//!   at native width.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::Value;

/// A type renderable into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field named `field` is absent from the map.
    /// Errors by default; `Option<T>` overrides this to yield `None`.
    fn absent(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}
