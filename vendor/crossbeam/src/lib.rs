//! Offline vendored subset of `crossbeam`: the unbounded MPSC channel
//! surface the fabric uses, delegating to `std::sync::mpsc` (whose
//! modern implementation *is* the crossbeam channel, upstreamed in
//! Rust 1.67).

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// An unbounded FIFO channel: `Sender` is `Clone`, per-sender order
    /// is preserved, `recv` blocks until a message or disconnection.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_order_per_sender() {
        let (s, r) = unbounded();
        for i in 0..10 {
            s.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(r.recv().unwrap(), i);
        }
    }

    #[test]
    fn clone_senders_feed_one_receiver() {
        let (s, r) = unbounded();
        let s2 = s.clone();
        std::thread::spawn(move || s2.send(99).unwrap())
            .join()
            .unwrap();
        drop(s);
        assert_eq!(r.recv().unwrap(), 99);
        assert!(r.recv().is_err(), "all senders dropped closes the channel");
    }

    #[test]
    fn try_recv_does_not_block() {
        let (s, r) = unbounded::<u8>();
        assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
        s.send(1).unwrap();
        assert_eq!(r.try_recv(), Ok(1));
    }
}
