//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde facade. Parses the item declaration by walking raw
//! `proc_macro::TokenTree`s (no syn/quote in this container) and emits
//! impls of `serde::Serialize` / `serde::Deserialize` as source text.
//!
//! Supported shapes — everything this workspace derives on:
//! named-field structs (with lifetime or plain type generics), tuple and
//! unit structs, and enums whose variants are unit, named-field, or
//! tuple. Field-level `#[serde(...)]` attributes are not interpreted.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    generics: Vec<Param>,
    body: Body,
}

enum Param {
    Lifetime(String),
    Type(String),
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = take_ident(&tokens, &mut i);
    assert!(
        kind == "struct" || kind == "enum",
        "serde_derive: expected `struct` or `enum`, found `{kind}`"
    );
    let name = take_ident(&tokens, &mut i);
    let generics = if is_punct(tokens.get(i), '<') {
        parse_generics(&tokens, &mut i)
    } else {
        Vec::new()
    };
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "enum" {
                Body::Enum(parse_variants(g.stream()))
            } else {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_top_level_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        other => panic!("serde_derive: unsupported item body for `{name}`: {other:?}"),
    };
    Item {
        name,
        generics,
        body,
    }
}

/// Skip any `#[...]` attributes and a `pub` / `pub(...)` qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn take_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn is_punct(token: Option<&TokenTree>, c: char) -> bool {
    matches!(token, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Parse `<...>` after the type name: record each parameter's name, skip
/// any bounds. `i` enters pointing at `<` and leaves just past `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<Param> {
    *i += 1;
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut at_param_start = true;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        return params;
                    }
                } else if c == ',' && depth == 1 {
                    at_param_start = true;
                } else if c == '\'' && depth == 1 && at_param_start {
                    if let Some(TokenTree::Ident(id)) = tokens.get(*i + 1) {
                        params.push(Param::Lifetime(format!("'{id}")));
                        at_param_start = false;
                        *i += 2;
                        continue;
                    }
                }
                *i += 1;
            }
            TokenTree::Ident(id) => {
                if depth == 1 && at_param_start {
                    params.push(Param::Type(id.to_string()));
                    at_param_start = false;
                }
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    panic!("serde_derive: unclosed generic parameter list");
}

/// Field names of a `{ a: T, b: U }` body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = take_ident(&tokens, &mut i);
        assert!(
            is_punct(tokens.get(i), ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_past_type(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

/// Consume type tokens up to and including the next top-level `,` (or the
/// end of the stream). Tracks `<`/`>` so commas inside generics don't
/// terminate early; delimited groups are single atomic tokens already.
fn skip_past_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = take_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_top_level_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        if is_punct(tokens.get(i), '=') {
            // explicit discriminant: skip to the separating comma
            i += 1;
            skip_past_type(&tokens, &mut i);
        } else if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Number of fields in a tuple body `(A, B<C, D>, E)`.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

// ---- code generation ---------------------------------------------------

/// `impl<...> ::serde::Trait for Name<...>`, bounding every type
/// parameter by the trait being implemented.
fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        return format!("impl ::serde::{trait_name} for {}", item.name);
    }
    let mut decls = Vec::new();
    let mut args = Vec::new();
    for param in &item.generics {
        match param {
            Param::Lifetime(lt) => {
                decls.push(lt.clone());
                args.push(lt.clone());
            }
            Param::Type(ty) => {
                decls.push(format!("{ty}: ::serde::{trait_name}"));
                args.push(ty.clone());
            }
        }
    }
    format!(
        "impl<{}> ::serde::{trait_name} for {}<{}>",
        decls.join(", "),
        item.name,
        args.join(", ")
    )
}

fn str_lit(s: &str) -> String {
    format!("\"{s}\"")
}

fn tag_pair(tag: &str, value_expr: &str) -> String {
    format!(
        "::serde::Value::Map(vec![(::std::string::String::from({}), {value_expr})])",
        str_lit(tag)
    )
}

fn named_map_expr(fields: &[String], access_prefix: &str) -> String {
    if fields.is_empty() {
        return "::serde::Value::Map(::std::vec::Vec::new())".into();
    }
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({}), ::serde::Serialize::to_value({access_prefix}{f}))",
                str_lit(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", pairs.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::NamedStruct(fields) => named_map_expr(fields, "&self."),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".into(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".into(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_variant_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn serialize_variant_arm(variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.fields {
        VariantFields::Unit => format!(
            "Self::{vname} => ::serde::Value::Str(::std::string::String::from({})),",
            str_lit(vname)
        ),
        VariantFields::Named(fields) => {
            let binders = fields.join(", ");
            let inner = named_map_expr(fields, "");
            format!(
                "Self::{vname} {{ {binders} }} => {},",
                tag_pair(vname, &inner)
            )
        }
        VariantFields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|idx| format!("__f{idx}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
            };
            format!(
                "Self::{vname}({}) => {},",
                binders.join(", "),
                tag_pair(vname, &inner)
            )
        }
    }
}

fn named_construct(fields: &[String], pairs_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field({pairs_var}, {})?", str_lit(f)))
        .collect();
    format!("{{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let construct = named_construct(fields, "__pairs");
            format!(
                "let __pairs = ::serde::de::fields(__v, {})?;\n\
                 let _ = __pairs;\n\
                 ::std::result::Result::Ok(Self {construct})",
                str_lit(name)
            )
        }
        Body::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".into()
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_value(&__items[{idx}])?"))
                .collect();
            format!(
                "let __items = ::serde::de::seq(__v, {n}, {})?;\n\
                 ::std::result::Result::Ok(Self({}))",
                str_lit(name),
                elems.join(", ")
            )
        }
        Body::UnitStruct => "::std::result::Result::Ok(Self)".into(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| deserialize_variant_arm(name, v))
                .collect();
            format!(
                "let (__tag, __payload) = ::serde::de::enum_variant(__v, {})?;\n\
                 let _ = __payload;\n\
                 match __tag {{ {} __other => ::std::result::Result::Err(\
                 ::serde::de::unknown_variant({}, __other)), }}",
                str_lit(name),
                arms.join(" "),
                str_lit(name)
            )
        }
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

fn deserialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    let qualified = format!("{enum_name}::{vname}");
    match &variant.fields {
        VariantFields::Unit => format!(
            "{} => ::std::result::Result::Ok(Self::{vname}),",
            str_lit(vname)
        ),
        VariantFields::Named(fields) => {
            let construct = named_construct(fields, "__pairs");
            format!(
                "{} => {{ let __pairs = ::serde::de::fields(__payload, {})?;\n\
                 let _ = __pairs;\n\
                 ::std::result::Result::Ok(Self::{vname} {construct}) }},",
                str_lit(vname),
                str_lit(&qualified)
            )
        }
        VariantFields::Tuple(1) => format!(
            "{} => ::std::result::Result::Ok(Self::{vname}(\
             ::serde::Deserialize::from_value(__payload)?)),",
            str_lit(vname)
        ),
        VariantFields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_value(&__items[{idx}])?"))
                .collect();
            format!(
                "{} => {{ let __items = ::serde::de::seq(__payload, {n}, {})?;\n\
                 ::std::result::Result::Ok(Self::{vname}({})) }},",
                str_lit(vname),
                str_lit(&qualified),
                elems.join(", ")
            )
        }
    }
}
