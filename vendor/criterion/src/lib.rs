//! Offline vendored `criterion`-compatible harness. Keeps the same API
//! shape (`criterion_group!`, `benchmark_group`, `bench_with_input`,
//! `Bencher::iter`) but measures with a simple warmup + timed-batch
//! scheme and prints one line per benchmark instead of rendering
//! statistics/HTML.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 100, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `f` against a fixed `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Finish the group (upstream renders summaries here; we don't).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine`, recording `target_samples` batches after warmup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup and batch-size calibration: aim for >=1ms per sample.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        // Keep wall-clock bounded: cap timed samples well below
        // upstream's default statistical appetite.
        target_samples: sample_size.clamp(1, 30),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let per_iter = median.as_nanos() as f64 / bencher.iters_per_sample as f64;
    println!("{label:<40} {:>12.1} ns/iter (median)", per_iter);
}

/// Build a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(5);
        let input = vec![1u64; 256];
        group.bench_with_input(BenchmarkId::new("fold", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u64 * 6));
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs_and_records_samples() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("inline", |b| b.iter(|| 1 + 1));
    }
}
