//! The §II-D compression toolbox on a real gradient: Top-k, signSGD and
//! PowerSGD applied to one backprop step of the VGG-style mini, showing
//! the volume/fidelity trade-off SelSync sidesteps by skipping steps.
//!
//! ```sh
//! cargo run --release --example compression_toolbox
//! ```

use selsync_core::compression::{
    powersgd_factorize, powersgd_reconstruct, powersgd_wire_bytes, sign_compress, sign_decompress,
    topk_compress,
};
use selsync_core::workload::{Workload, WorkloadData};
use selsync_nn::flat::flat_grads;
use selsync_nn::loss::softmax_cross_entropy;
use selsync_nn::models::ModelKind;
use selsync_nn::Input;

fn main() {
    // one real gradient
    let wl = Workload::vision(ModelKind::VggMini, 128, 32, 3);
    let WorkloadData::Vision { train, .. } = &wl.data else {
        unreachable!()
    };
    let mut model = wl.build_model();
    let (x, t) = train.gather(&(0..32).collect::<Vec<_>>());
    let logits = model.as_model().forward(&Input::Dense(x), true);
    let (loss, dl) = softmax_cross_entropy(&logits, &t);
    model.as_model().zero_grad();
    model.as_model().backward(&dl);
    let grads = flat_grads(model.as_visitor());
    println!(
        "gradient: {} floats ({} KB dense), loss {loss:.3}\n",
        grads.len(),
        grads.len() * 4 / 1024
    );

    let dense_bytes = (grads.len() * 4) as f64;
    let energy: f64 = grads.iter().map(|g| (g * g) as f64).sum();

    println!("{:<16} {:>10} {:>16}", "scheme", "ratio", "energy kept");
    // Top-k at 10% and 1%
    for frac in [0.1, 0.01] {
        let k = ((grads.len() as f64 * frac) as usize).max(1);
        let s = topk_compress(&grads, k);
        let kept: f64 = s.values.iter().map(|v| (v * v) as f64).sum();
        println!(
            "{:<16} {:>9.1}x {:>15.1}%",
            format!("top-k {:.0}%", frac * 100.0),
            s.compression_ratio(),
            100.0 * kept / energy
        );
    }
    // signSGD
    let s = sign_compress(&grads);
    let rec = sign_decompress(&s);
    let cos = cosine(&grads, &rec);
    println!(
        "{:<16} {:>9.1}x {:>12.2} cos",
        "signSGD",
        dense_bytes / s.wire_bytes() as f64,
        cos
    );
    // PowerSGD
    for rank in [1usize, 4] {
        let rows = (1..=(grads.len() as f64).sqrt() as usize)
            .rev()
            .find(|&r| grads.len().is_multiple_of(r))
            .unwrap_or(1);
        let cols = grads.len() / rows;
        let (p, q) = powersgd_factorize(&grads, rows, rank, 2, 0);
        let rec = powersgd_reconstruct(&p, &q);
        println!(
            "{:<16} {:>9.1}x {:>12.2} cos",
            format!("PowerSGD r={rank}"),
            dense_bytes / powersgd_wire_bytes(rows, cols, rank) as f64,
            cosine(&grads, &rec)
        );
    }
    println!("\nSelSync's alternative: skip ~90% of sync steps entirely (LSSR 0.9 = 10x),");
    println!("and send *exact* parameters on the steps that matter — no gradient error.");
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| (x * y) as f64).sum();
    let na: f64 = a.iter().map(|x| (x * x) as f64).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| (x * x) as f64).sum::<f64>().sqrt();
    dot / (na * nb).max(1e-30)
}
