//! Federated non-IID scenario: 10 edge workers each holding a single
//! class of data (the paper's CIFAR10 skew), comparing FedAvg against
//! SelSync with randomized data injection (§III-E).
//!
//! ```sh
//! cargo run --release --example federated_noniid
//! ```

use selsync_core::prelude::*;

fn main() {
    let workers = 10;
    // 10-class vision task, 1 label per worker: maximal label skew
    let workload = Workload::vision(ModelKind::ResNetMini, 700, 160, 7);

    let base = RunConfig {
        n_workers: workers,
        batch_size: 32,
        max_steps: 150,
        eval_every: 30,
        noniid_labels: Some(1),
        lr: LrSchedule::Constant { lr: 0.05 },
        ..RunConfig::quick_defaults()
    };

    // FedAvg, all clients, 10 syncs per epoch — the paper's Fig 1b/12 config
    let mut fedavg_cfg = base.clone();
    fedavg_cfg.strategy = Strategy::FedAvg { c: 1.0, e: 0.1 };
    println!("running FedAvg(1, 0.1) on 1-label-per-worker data...");
    let fedavg = run_distributed(&fedavg_cfg, &workload);

    // SelSync with (α, β, δ) = (0.5, 0.5, 0.3): half the workers share
    // half their (Eqn.-3-shrunk) batches every step
    let mut selsync_cfg = base;
    selsync_cfg.strategy = Strategy::SelSync {
        delta: 0.3,
        aggregation: Aggregation::Parameter,
    };
    let inj = InjectionConfig::new(0.5, 0.5);
    println!(
        "running SelSync(0.5, 0.5, 0.3); Eqn. 3 shrinks the local batch 32 → b' = {}...",
        inj.adjusted_batch_size(32, workers)
    );
    selsync_cfg.injection = Some(inj);
    let selsync = run_distributed(&selsync_cfg, &workload);

    println!("\n=== non-IID accuracy over training ===");
    println!("{:>6} {:>10} {:>10}", "step", "FedAvg", "SelSync+inj");
    for (f, s) in fedavg.evals.iter().zip(&selsync.evals) {
        println!(
            "{:>6} {:>9.1}% {:>9.1}%",
            f.step,
            f.metric * 100.0,
            s.metric * 100.0
        );
    }
    println!(
        "\nbest: FedAvg {:.1}% vs SelSync+injection {:.1}%",
        fedavg.best_metric(false) * 100.0,
        selsync.best_metric(false) * 100.0
    );
    println!("(paper Fig 12: injection lifts SelSync well above FedAvg under label skew)");
}
