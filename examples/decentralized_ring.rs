//! §III-E in action: swapping SelSync's parameter-server calls for a
//! decentralized ring allreduce, and comparing the two transports on
//! identical training plus their modeled sync cost at paper scale.
//!
//! ```sh
//! cargo run --release --example decentralized_ring
//! ```

use selsync_comm::NetworkModel;
use selsync_core::prelude::*;

fn main() {
    let workload = Workload::vision(ModelKind::ResNetMini, 512, 160, 42);
    let strategy = Strategy::SelSync {
        delta: 0.25,
        aggregation: Aggregation::Parameter,
    };
    let mut cfg = RunConfig {
        strategy,
        n_workers: 4,
        max_steps: 120,
        eval_every: 120,
        ..RunConfig::quick_defaults()
    };

    println!("SelSync over the parameter server...");
    let ps = run_distributed(&cfg, &workload);

    println!("SelSync over ring allreduce (no server thread at all)...");
    cfg.backend = SyncBackend::RingAllReduce;
    let ring = run_distributed(&cfg, &workload);

    println!("\n=== identical algorithm, different transport ===");
    println!("{:<22} {:>12} {:>12}", "", "PS", "ring-allreduce");
    println!(
        "{:<22} {:>11.1}% {:>11.1}%",
        "final accuracy",
        ps.final_metric * 100.0,
        ring.final_metric * 100.0
    );
    println!(
        "{:<22} {:>12.3} {:>12.3}",
        "LSSR",
        ps.lssr.lssr(),
        ring.lssr.lssr()
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "fabric bytes", ps.comm_bytes, ring.comm_bytes
    );

    // the paper's point: the PS wall grows with N, the ring does not
    let net = NetworkModel::paper_cluster();
    let m = ModelKind::ResNetMini.paper_model_bytes();
    println!("\nmodeled cost of ONE synchronization of the 178 MB ResNet101:");
    println!("{:>4} {:>12} {:>14}", "N", "PS (s)", "ring (s)");
    for n in [4usize, 8, 16, 32, 64] {
        println!(
            "{n:>4} {:>12.2} {:>14.2}",
            net.ps_sync_time(m, n),
            net.ring_allreduce_time(m, n)
        );
    }
    println!("\nthe ring's volume is 2(N−1)/N·M per worker — constant in N — while the");
    println!("PS serializes N pushes + N pulls; §III-E's suggested swap buys exactly this.");
}
