//! Tuning the δ threshold: how a practitioner picks SelSync's operating
//! point between BSP (δ = 0) and pure local SGD (δ → ∞), using the
//! language-model workload.
//!
//! ```sh
//! cargo run --release --example delta_tuning
//! ```

use selsync_core::prelude::*;
use selsync_core::timing::{simulate_timeline, TimingParams};

fn main() {
    let workload = Workload::text(12 * 200, 11);
    println!("Transformer LM on {} workers; sweeping δ\n", 4);
    println!(
        "{:>6} {:>7} {:>10} {:>12} {:>14}",
        "δ", "LSSR", "comm-red", "perplexity", "paper-time(s)"
    );
    let mut rows = Vec::new();
    for &delta in &[0.0f32, 0.1, 0.25, 0.5, 1e9] {
        let strategy = Strategy::SelSync {
            delta,
            aggregation: Aggregation::Parameter,
        };
        let cfg = RunConfig {
            strategy,
            n_workers: 4,
            batch_size: 8,
            max_steps: 120,
            eval_every: 120,
            lr: LrSchedule::Constant { lr: 0.08 },
            optim: OptimKind::Sgd {
                momentum: 0.9,
                weight_decay: 0.0,
            },
            ..RunConfig::quick_defaults()
        };
        let r = run_distributed(&cfg, &workload);
        let timing = simulate_timeline(
            strategy,
            &r.step_records,
            &TimingParams::paper(ModelKind::TransformerMini, cfg.n_workers),
        );
        println!(
            "{:>6} {:>7.3} {:>9.1}x {:>12.2} {:>14.0}",
            if delta > 1e6 {
                "∞".into()
            } else {
                format!("{delta}")
            },
            r.lssr.lssr(),
            r.lssr.comm_reduction(),
            r.final_metric,
            timing.total_s,
        );
        rows.push((delta, r.final_metric, timing.total_s));
    }
    // a simple recommendation rule: best perplexity-per-second point
    let best = rows
        .iter()
        .min_by(|a, b| (a.1 as f64 * a.2).partial_cmp(&(b.1 as f64 * b.2)).unwrap())
        .unwrap();
    println!(
        "\nsuggested operating point: δ = {} (best quality × time trade-off here)",
        if best.0 > 1e6 {
            "∞".into()
        } else {
            format!("{}", best.0)
        }
    );
    println!("rule of thumb from the paper: δ in [0.25, 0.5] keeps BSP quality at a fraction of its communication.");
}
