//! Quickstart: train the ResNet-style workload with SelSync on a
//! 4-worker in-process cluster and compare it against BSP.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use selsync_core::prelude::*;

fn main() {
    // 1. A workload: the ResNet101/CIFAR10 analogue — synthetic
    //    teacher-labelled 10-class images and a seeded model factory.
    let workload = Workload::vision(ModelKind::ResNetMini, 512, 160, 42);

    // 2. A cluster configuration. SelSync with δ = 0.25 and parameter
    //    aggregation is the paper's recommended operating point.
    let mut config = RunConfig::quick_defaults();
    config.n_workers = 4;
    config.max_steps = 120;
    config.eval_every = 30;
    config.strategy = Strategy::SelSync {
        delta: 0.25,
        aggregation: Aggregation::Parameter,
    };

    println!(
        "running {} on {} workers...",
        config.strategy.label(),
        config.n_workers
    );
    let selsync = run_distributed(&config, &workload);

    config.strategy = Strategy::Bsp {
        aggregation: Aggregation::Parameter,
    };
    println!("running BSP baseline...");
    let bsp = run_distributed(&config, &workload);

    // 3. Compare: quality, communication, and paper-scale time.
    println!("\n=== results ({} steps each) ===", config.max_steps);
    println!(
        "SelSync: accuracy {:.1}%, LSSR {:.3} ({:.1}x less communication), {} fabric bytes",
        selsync.final_metric * 100.0,
        selsync.lssr.lssr(),
        selsync.lssr.comm_reduction(),
        selsync.comm_bytes,
    );
    println!(
        "BSP:     accuracy {:.1}%, LSSR {:.3} (syncs every step),        {} fabric bytes",
        bsp.final_metric * 100.0,
        bsp.lssr.lssr(),
        bsp.comm_bytes,
    );

    // 4. Replay both decision logs on the paper-scale clock (16 V100s
    //    behind a 5 Gbps NIC, 178 MB ResNet101).
    let params = TimingParams::paper(ModelKind::ResNetMini, config.n_workers);
    let t_sel = simulate_timeline(
        Strategy::SelSync {
            delta: 0.25,
            aggregation: Aggregation::Parameter,
        },
        &selsync.step_records,
        &params,
    );
    let t_bsp = simulate_timeline(
        Strategy::Bsp {
            aggregation: Aggregation::Parameter,
        },
        &bsp.step_records,
        &params,
    );
    println!(
        "\npaper-scale wall-clock for the same steps: BSP {:.0}s vs SelSync {:.0}s ({:.1}x faster)",
        t_bsp.total_s,
        t_sel.total_s,
        t_bsp.total_s / t_sel.total_s
    );
}

use selsync_core::timing::{simulate_timeline, TimingParams};
