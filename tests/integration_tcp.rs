//! Loopback TCP fabric integration: the same experiment run (a) fully
//! in-process over the channel fabric and (b) over real 127.0.0.1
//! sockets must make the same sync decision at every step and end with
//! bit-identical parameters — the trainer is transport-agnostic and the
//! wire codec is lossless.

use selsync_comm::Transport;
use selsync_core::prelude::*;
use selsync_core::trainer::{run_server_rank, run_worker_rank, WorkerOutput};
use selsync_core::{run_distributed, RunConfig};
use selsync_net::{TcpEndpoint, TcpFabricConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Bind `n_ranks` ephemeral loopback ports and connect the full mesh.
fn tcp_fabric(n_ranks: usize) -> Vec<TcpEndpoint> {
    let listeners: Vec<TcpListener> = (0..n_ranks)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let peers: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(rank, listener)| {
            let mut cfg = TcpFabricConfig::new(rank, peers.clone());
            cfg.recv_timeout = Duration::from_secs(60);
            thread::spawn(move || TcpEndpoint::connect_with_listener(cfg, listener).unwrap())
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Run `config` over real sockets: one thread per rank, each owning a
/// [`TcpEndpoint`] — the same topology `selsync_dist` gives separate
/// OS processes. Returns (worker outputs in rank order, final global
/// params, total bytes actually framed onto sockets).
fn run_over_tcp(config: &RunConfig, workload: &Workload) -> (Vec<WorkerOutput>, Vec<f32>, u64) {
    let n = config.n_workers;
    let mut endpoints = tcp_fabric(n + 1);
    let server_ep = endpoints.pop().unwrap();
    let stats: Vec<_> = endpoints
        .iter()
        .map(|ep| Arc::clone(ep.stats()))
        .chain(std::iter::once(Arc::clone(server_ep.stats())))
        .collect();

    let config = Arc::new(config.clone());
    let workload = Arc::new(workload.clone());
    let server = {
        let cfg = Arc::clone(&config);
        let wl = Arc::clone(&workload);
        thread::spawn(move || run_server_rank(server_ep, &cfg, &wl))
    };
    let workers: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let cfg = Arc::clone(&config);
            let wl = Arc::clone(&workload);
            thread::spawn(move || run_worker_rank(ep, &cfg, &wl))
        })
        .collect();

    let mut outputs: Vec<WorkerOutput> = workers
        .into_iter()
        .map(|h| h.join().unwrap().expect("worker comm fault"))
        .collect();
    outputs.sort_by_key(|o| o.worker);
    let final_params = server.join().unwrap().expect("server comm fault");
    let bytes = stats.iter().map(|s| s.total_bytes()).sum();
    (outputs, final_params, bytes)
}

fn selsync_config() -> RunConfig {
    RunConfig {
        strategy: Strategy::SelSync {
            delta: 0.25,
            aggregation: Aggregation::Parameter,
        },
        n_workers: 2,
        max_steps: 15,
        eval_every: 15,
        ..RunConfig::quick_defaults()
    }
}

fn workload() -> Workload {
    Workload::vision(ModelKind::VggMini, 96, 32, 7)
}

#[test]
fn selsync_over_tcp_matches_in_process_bitwise() {
    let cfg = selsync_config();
    let wl = workload();
    let reference = run_distributed(&cfg, &wl);
    let (outputs, final_params, tcp_bytes) = run_over_tcp(&cfg, &wl);

    // step-for-step identical sync decisions (worker 0 keeps the log)
    let ref_decisions: Vec<bool> = reference.step_records.iter().map(|r| r.synced).collect();
    let tcp_decisions: Vec<bool> = outputs[0].records.iter().map(|r| r.synced).collect();
    assert_eq!(ref_decisions, tcp_decisions, "sync schedules must agree");

    // Δ(g) values feeding those decisions agree bit-exactly too
    let ref_dg: Vec<u32> = reference
        .step_records
        .iter()
        .map(|r| r.delta_g.to_bits())
        .collect();
    let tcp_dg: Vec<u32> = outputs[0]
        .records
        .iter()
        .map(|r| r.delta_g.to_bits())
        .collect();
    assert_eq!(ref_dg, tcp_dg);

    // bit-identical final global parameters
    assert_eq!(
        reference
            .final_params
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        final_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "global params must be bit-identical across transports"
    );
    // and bit-identical per-worker replicas
    for (o, ref_params) in outputs.iter().zip(&reference.worker_params) {
        assert_eq!(
            o.final_params
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            ref_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "worker {} replica diverged across transports",
            o.worker
        );
    }

    // byte accounting: both transports charge Payload::wire_bytes per
    // message, so the summed TCP per-rank counters (each backed by real
    // encoded frames — the codec asserts the equality) match the shared
    // in-process counter exactly
    assert_eq!(tcp_bytes, reference.comm_bytes, "framed bytes must match");
}

#[test]
fn bsp_over_tcp_matches_in_process_bitwise() {
    let mut cfg = selsync_config();
    cfg.strategy = Strategy::Bsp {
        aggregation: Aggregation::Gradient,
    };
    cfg.max_steps = 8;
    let wl = workload();
    let reference = run_distributed(&cfg, &wl);
    let (outputs, final_params, tcp_bytes) = run_over_tcp(&cfg, &wl);
    assert_eq!(
        reference
            .final_params
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        final_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(outputs[0].lssr.lssr(), 0.0);
    assert_eq!(tcp_bytes, reference.comm_bytes);
}

#[test]
fn ssp_over_tcp_completes_and_accounts_bytes() {
    // SSP is valid but order-sensitive server-side, so require only a
    // clean finish and exact byte accounting (not bitwise identity)
    let mut cfg = selsync_config();
    cfg.strategy = Strategy::Ssp { staleness: 3 };
    cfg.max_steps = 8;
    let wl = workload();
    let reference = run_distributed(&cfg, &wl);
    let (outputs, final_params, tcp_bytes) = run_over_tcp(&cfg, &wl);
    assert!(final_params.iter().all(|v| v.is_finite()));
    assert_eq!(outputs.len(), 2);
    assert_eq!(tcp_bytes, reference.comm_bytes);
}
