//! Failure-injection integration tests: stragglers (the systems
//! heterogeneity of §II-A) and protocol robustness under load.

use selsync_core::prelude::*;
use std::time::Instant;

fn straggler_config(strategy: Strategy) -> RunConfig {
    RunConfig {
        strategy,
        n_workers: 3,
        batch_size: 8,
        max_steps: 20,
        eval_every: 20,
        // worker 2 sleeps 3 ms per step: ~4x a mini step on this host
        straggler: Some((2, 3_000)),
        ..RunConfig::quick_defaults()
    }
}

fn workload() -> Workload {
    Workload::vision(ModelKind::VggMini, 120, 40, 17)
}

#[test]
fn bsp_stays_correct_with_a_straggler() {
    // BSP blocks on the slowest worker but must stay correct: replicas
    // identical after every sync, all steps completed.
    let r = run_distributed(
        &straggler_config(Strategy::Bsp {
            aggregation: Aggregation::Parameter,
        }),
        &workload(),
    );
    assert_eq!(r.steps_run, 20);
    assert!(r.replica_divergence() < 1e-5);
    assert_eq!(r.lssr.lssr(), 0.0);
}

#[test]
fn ssp_tolerates_the_straggler_without_deadlock() {
    let start = Instant::now();
    let r = run_distributed(
        &straggler_config(Strategy::Ssp { staleness: 4 }),
        &workload(),
    );
    assert_eq!(r.steps_run, 20);
    assert!(r.final_params.iter().all(|v| v.is_finite()));
    // sanity: the run terminates promptly (staleness release logic works)
    assert!(start.elapsed().as_secs() < 60);
}

#[test]
fn selsync_flags_protocol_survives_the_straggler() {
    // fast workers reach the flags allgather of step i+1 while the
    // straggler is still in step i; the tagged fabric must keep rounds
    // separate and the run deterministic in its decisions
    let cfg = straggler_config(Strategy::SelSync {
        delta: 0.25,
        aggregation: Aggregation::Parameter,
    });
    let r = run_distributed(&cfg, &workload());
    assert_eq!(r.steps_run, 20);
    assert!(r.step_records[0].synced);
    // all workers agreed on every decision: replicas re-align at each
    // sync, so divergence is bounded by the local-only phases
    assert!(r.replica_divergence().is_finite());
}

#[test]
fn fedavg_schedule_is_unaffected_by_stragglers() {
    let mut cfg = straggler_config(Strategy::FedAvg { c: 0.5, e: 0.5 });
    cfg.partition = PartitionScheme::DefDp;
    let r = run_distributed(&cfg, &workload());
    // sync steps are set by the data schedule, not by timing
    let synced: Vec<u64> = r
        .step_records
        .iter()
        .filter(|s| s.synced)
        .map(|s| s.step)
        .collect();
    assert!(!synced.is_empty());
    for pair in synced.windows(2) {
        assert_eq!(pair[1] - pair[0], synced[1] - synced[0], "uniform spacing");
    }
}

#[test]
fn sixteen_worker_cluster_runs_to_completion() {
    // the paper's full cluster size, exercising 17 threads of fabric
    // traffic on whatever cores this host has
    let cfg = RunConfig {
        strategy: Strategy::SelSync {
            delta: 0.3,
            aggregation: Aggregation::Parameter,
        },
        n_workers: 16,
        batch_size: 4,
        max_steps: 8,
        eval_every: 8,
        ..RunConfig::quick_defaults()
    };
    let wl = Workload::vision(ModelKind::ResNetMini, 320, 40, 23);
    let r = run_distributed(&cfg, &wl);
    assert_eq!(r.worker_params.len(), 16);
    assert_eq!(r.steps_run, 8);
}
