//! Integration tests for the topic-switching text corpus: the WikiText
//! substitute must make DefDP topic-skewed (§III-D realized for text)
//! while SelDP exposes every topic to every worker.

use selsync_core::prelude::*;
use selsync_core::workload::{WorkloadData, SEQ_LEN, TEXT_TOPICS};
use selsync_data::{chunk_bounds_of, partition_indices, TextDataset};

#[test]
fn topic_corpus_has_distinct_segment_statistics() {
    let d = TextDataset::synthetic_markov_topics(8000, 32, 5, 6, 2);
    // bigram supports of the two halves should differ substantially
    let half = d.tokens.len() / 2;
    let support = |toks: &[usize]| {
        let mut s = std::collections::HashSet::new();
        for w in toks.windows(2) {
            s.insert((w[0], w[1]));
        }
        s
    };
    let a = support(&d.tokens[..half]);
    let b = support(&d.tokens[half..]);
    let only_b = b.difference(&a).count();
    assert!(
        only_b * 3 > b.len(),
        "second topic must have many transitions unseen in the first ({only_b}/{})",
        b.len()
    );
}

#[test]
fn defdp_text_chunks_are_topic_skewed_seldp_are_not() {
    let wl = Workload::text_with_topics(SEQ_LEN * 400, 9, TEXT_TOPICS);
    let WorkloadData::Text { train, .. } = &wl.data else {
        unreachable!()
    };
    let windows = wl.num_train_units();
    let workers = TEXT_TOPICS; // one worker per topic segment
                               // which topic does window w belong to? windows tile the stream
    let topic_of = |w: usize| (w * workers) / windows;
    let _ = train;
    // DefDP: worker 0's windows all come from topic 0
    let def = partition_indices(windows, workers, 0, PartitionScheme::DefDp);
    assert!(
        def.iter().all(|&w| topic_of(w) == 0),
        "DefDP worker 0 sees only its own topic"
    );
    // SelDP: worker 0 sees every topic
    let sel = partition_indices(windows, workers, 0, PartitionScheme::SelDp);
    let mut topics_seen: Vec<usize> = sel.iter().map(|&w| topic_of(w)).collect();
    topics_seen.sort_unstable();
    topics_seen.dedup();
    assert_eq!(topics_seen.len(), workers, "SelDP covers all topics");
    let _ = chunk_bounds_of(windows, workers);
}

#[test]
fn transformer_seldp_generalizes_better_than_defdp_under_local_training() {
    // mostly-local SelSync: DefDP workers each overfit one topic; the
    // test split spans all topics, so SelDP must win on perplexity
    let wl = Workload::text_with_topics(SEQ_LEN * 300, 11, TEXT_TOPICS);
    let mut cfg = RunConfig {
        strategy: Strategy::SelSync {
            delta: 0.6,
            aggregation: Aggregation::Parameter,
        },
        n_workers: 4,
        batch_size: 8,
        max_steps: 150,
        eval_every: 150,
        lr: LrSchedule::Constant { lr: 0.08 },
        optim: OptimKind::Sgd {
            momentum: 0.9,
            weight_decay: 0.0,
        },
        ..RunConfig::quick_defaults()
    };
    cfg.partition = PartitionScheme::SelDp;
    let sel = run_distributed(&cfg, &wl);
    cfg.partition = PartitionScheme::DefDp;
    let def = run_distributed(&cfg, &wl);
    assert!(
        sel.final_metric <= def.final_metric * 1.15,
        "SelDP perplexity {} should not lose to DefDP {} beyond noise",
        sel.final_metric,
        def.final_metric
    );
}
