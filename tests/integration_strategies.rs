//! Cross-crate integration tests: full distributed runs exercising the
//! tensor → nn → data → comm → core stack end-to-end, asserting the
//! paper's structural claims (not just "it runs").

use selsync_core::prelude::*;

fn base_config(strategy: Strategy) -> RunConfig {
    RunConfig {
        strategy,
        n_workers: 4,
        batch_size: 8,
        max_steps: 60,
        eval_every: 20,
        ..RunConfig::quick_defaults()
    }
}

fn resnet_workload() -> Workload {
    Workload::vision(ModelKind::ResNetMini, 256, 80, 21)
}

#[test]
fn bsp_learns_the_task() {
    let cfg = base_config(Strategy::Bsp {
        aggregation: Aggregation::Parameter,
    });
    let r = run_distributed(&cfg, &resnet_workload());
    assert!(
        r.final_metric > 0.3,
        "BSP should beat 10% chance by 60 steps, got {}",
        r.final_metric
    );
    assert_eq!(r.lssr.lssr(), 0.0);
}

#[test]
fn bsp_ga_and_pa_agree_given_identical_init() {
    // §III-C: with identical initial replicas, gradient and parameter
    // aggregation are equivalent in BSP. Momentum state is also kept in
    // sync because every worker applies the same averaged update.
    let wl = resnet_workload();
    let mut cfg = base_config(Strategy::Bsp {
        aggregation: Aggregation::Parameter,
    });
    cfg.max_steps = 10;
    cfg.optim = OptimKind::Sgd {
        momentum: 0.0,
        weight_decay: 0.0,
    };
    let pa = run_distributed(&cfg, &wl);
    cfg.strategy = Strategy::Bsp {
        aggregation: Aggregation::Gradient,
    };
    let ga = run_distributed(&cfg, &wl);
    let dist = selsync_core::divergence::l2_distance(&pa.worker_params[0], &ga.worker_params[0]);
    let norm: f32 = pa.worker_params[0]
        .iter()
        .map(|v| v * v)
        .sum::<f32>()
        .sqrt();
    assert!(
        dist < 1e-3 * norm.max(1.0),
        "BSP GA ≡ BSP PA up to float reassociation: distance {dist}"
    );
}

#[test]
fn selsync_first_step_always_syncs_and_replicas_realign() {
    let cfg = base_config(Strategy::SelSync {
        delta: 0.3,
        aggregation: Aggregation::Parameter,
    });
    let r = run_distributed(&cfg, &resnet_workload());
    assert!(
        r.step_records[0].synced,
        "Δ(g₀) = ∞ forces a first-step sync"
    );
    assert!(r.step_records[0].delta_g.is_infinite());
}

#[test]
fn selsync_pa_bounds_divergence_vs_local_only() {
    let wl = resnet_workload();
    let sel = run_distributed(
        &base_config(Strategy::SelSync {
            delta: 0.25,
            aggregation: Aggregation::Parameter,
        }),
        &wl,
    );
    let local = run_distributed(&base_config(Strategy::LocalOnly), &wl);
    // SelSync synchronized at least once beyond step 0 or kept LSSR < 1,
    // so its replicas must sit closer together than never-communicating
    // local training (§III-B "bounding the divergence").
    assert!(
        sel.replica_divergence() <= local.replica_divergence(),
        "SelSync divergence {} must not exceed local-only {}",
        sel.replica_divergence(),
        local.replica_divergence()
    );
}

#[test]
fn lssr_orders_strategies_as_the_paper_describes() {
    let wl = resnet_workload();
    let bsp = run_distributed(
        &base_config(Strategy::Bsp {
            aggregation: Aggregation::Parameter,
        }),
        &wl,
    );
    let sel = run_distributed(
        &base_config(Strategy::SelSync {
            delta: 0.3,
            aggregation: Aggregation::Parameter,
        }),
        &wl,
    );
    let fed = run_distributed(&base_config(Strategy::FedAvg { c: 1.0, e: 0.25 }), &wl);
    assert_eq!(bsp.lssr.lssr(), 0.0);
    assert!(sel.lssr.lssr() > 0.0);
    assert!(
        fed.lssr.lssr() >= sel.lssr.lssr() * 0.5,
        "FedAvg's fixed schedule stays highly local: {} vs {}",
        fed.lssr.lssr(),
        sel.lssr.lssr()
    );
    // fabric traffic must track LSSR
    assert!(bsp.comm_bytes > sel.comm_bytes);
    assert!(bsp.comm_bytes > fed.comm_bytes);
}

#[test]
fn ssp_respects_all_workers_progress() {
    let cfg = base_config(Strategy::Ssp { staleness: 5 });
    let r = run_distributed(&cfg, &resnet_workload());
    assert_eq!(r.steps_run, 60);
    // the PS applied every worker's deltas; the final global differs
    // from the (shared) init
    assert!(r.comm_bytes > 0);
    assert!(r.final_params.iter().all(|v| v.is_finite()));
}

#[test]
fn seldp_beats_defdp_under_mostly_local_training() {
    // the Fig. 9 effect, asserted at integration scale: with a high δ
    // (mostly local updates), DefDP starves workers of global data
    let wl = Workload::vision(ModelKind::VggMini, 256, 80, 33);
    let mut cfg = base_config(Strategy::SelSync {
        delta: 0.6,
        aggregation: Aggregation::Parameter,
    });
    cfg.max_steps = 120;
    cfg.eval_every = 120;
    cfg.partition = PartitionScheme::SelDp;
    let sel = run_distributed(&cfg, &wl);
    cfg.partition = PartitionScheme::DefDp;
    let def = run_distributed(&cfg, &wl);
    assert!(
        sel.final_metric >= def.final_metric - 0.05,
        "SelDP {} must not lose to DefDP {} beyond noise",
        sel.final_metric,
        def.final_metric
    );
}

#[test]
fn injection_improves_noniid_selsync() {
    let wl = Workload::vision(ModelKind::ResNetMini, 400, 100, 5);
    let mut cfg = base_config(Strategy::SelSync {
        delta: 0.3,
        aggregation: Aggregation::Parameter,
    });
    cfg.n_workers = 5;
    cfg.batch_size = 20;
    cfg.max_steps = 100;
    cfg.eval_every = 100;
    cfg.noniid_labels = Some(2);
    let bare = run_distributed(&cfg, &wl);
    cfg.injection = Some(InjectionConfig::new(0.75, 0.75));
    let injected = run_distributed(&cfg, &wl);
    assert!(
        injected.final_metric >= bare.final_metric - 0.05,
        "injection {} must not lose to bare non-IID {} beyond noise",
        injected.final_metric,
        bare.final_metric
    );
}

#[test]
fn single_worker_degenerates_to_sequential_training() {
    let mut cfg = base_config(Strategy::Bsp {
        aggregation: Aggregation::Parameter,
    });
    cfg.n_workers = 1;
    // A lone worker consumes 1/4 the samples per step of the 4-worker
    // runs above; 60 steps leaves it at the edge of the metric bar.
    cfg.max_steps = 100;
    let r = run_distributed(&cfg, &resnet_workload());
    assert_eq!(r.worker_params.len(), 1);
    assert!(r.final_metric > 0.2);
}

#[test]
fn runs_are_reproducible_given_a_seed() {
    let wl = resnet_workload();
    let cfg = base_config(Strategy::SelSync {
        delta: 0.25,
        aggregation: Aggregation::Parameter,
    });
    let a = run_distributed(&cfg, &wl);
    let b = run_distributed(&cfg, &wl);
    assert_eq!(a.lssr, b.lssr, "same seed → same sync decisions");
    assert_eq!(a.final_params, b.final_params, "bit-identical final state");
}
