//! Property-based tests on the workspace's core invariants, spanning
//! crates: tensor algebra, partitioning, collectives, compression, the
//! Δ(g) tracker and the injection arithmetic of Eqn. (3).

use proptest::prelude::*;
use selsync_core::compression::{sign_compress, sign_decompress, topk_compress};
use selsync_data::{chunk_bounds_of, partition_indices, InjectionConfig, PartitionScheme};
use selsync_stats::{LssrCounter, RelativeGradChange, WindowedEwma};
use selsync_tensor::{matmul, ops, reduce, Tensor};

fn small_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..64)
}

proptest! {
    // ---------- tensor algebra ----------

    #[test]
    fn add_is_commutative(a in small_vec(), b in small_vec()) {
        let n = a.len().min(b.len());
        let ta = Tensor::from_vec(a[..n].to_vec(), [n]);
        let tb = Tensor::from_vec(b[..n].to_vec(), [n]);
        let ab = ops::add(&ta, &tb);
        let ba = ops::add(&tb, &ta);
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn scale_distributes_over_sum(a in small_vec(), s in -10.0f32..10.0) {
        let t = Tensor::from_vec(a.clone(), [a.len()]);
        let lhs = reduce::sum(&ops::scale(&t, s));
        let rhs = s * reduce::sum(&t);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * rhs.abs().max(1.0));
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = selsync_tensor::init::randn([rows, cols], 1.0, &mut rng);
        let tt = matmul::transpose(&matmul::transpose(&a));
        prop_assert_eq!(tt.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_distributes_over_addition(n in 1usize..6, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = selsync_tensor::init::randn([n, n], 1.0, &mut rng);
        let b = selsync_tensor::init::randn([n, n], 1.0, &mut rng);
        let c = selsync_tensor::init::randn([n, n], 1.0, &mut rng);
        // A(B + C) == AB + AC
        let lhs = matmul::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&matmul::matmul(&a, &b), &matmul::matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * y.abs().max(1.0));
        }
    }

    #[test]
    fn sqnorm_is_nonnegative_and_zero_iff_zero(a in small_vec()) {
        let t = Tensor::from_vec(a.clone(), [a.len()]);
        let s = reduce::sqnorm(&t);
        prop_assert!(s >= 0.0);
        if a.iter().all(|&v| v == 0.0) {
            prop_assert_eq!(s, 0.0);
        }
    }

    // ---------- partitioning (§III-D) ----------

    #[test]
    fn defdp_is_a_partition(n in 1usize..200, workers in 1usize..9) {
        prop_assume!(n >= workers);
        let mut seen = vec![false; n];
        for w in 0..workers {
            for i in partition_indices(n, workers, w, PartitionScheme::DefDp) {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seldp_is_a_full_permutation_per_worker(n in 1usize..200, workers in 1usize..9) {
        prop_assume!(n >= workers);
        for w in 0..workers {
            let mut order = partition_indices(n, workers, w, PartitionScheme::SelDp);
            prop_assert_eq!(order.len(), n);
            order.sort_unstable();
            prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn seldp_head_sits_in_own_chunk(n in 8usize..200, workers in 1usize..8) {
        prop_assume!(n >= workers);
        let bounds = chunk_bounds_of(n, workers);
        for (w, &(s, e)) in bounds.iter().enumerate() {
            let head = partition_indices(n, workers, w, PartitionScheme::SelDp)[0];
            prop_assert!(head >= s && head < e);
        }
    }

    // ---------- Eqn. (3) injection arithmetic ----------

    #[test]
    fn injection_cumulative_batch_stays_near_b(
        alpha in 0.1f32..1.0,
        beta in 0.1f32..1.0,
        n in 2usize..32,
        b in 8usize..128,
    ) {
        let c = InjectionConfig::new(alpha, beta);
        let bp = c.adjusted_batch_size(b, n);
        prop_assert!(bp >= 1);
        let denom = 1.0 + alpha * beta * n as f32;
        let cumulative = bp as f32 * denom;
        // floor rounding undershoots by < one multiplier unit; the
        // b′ ≥ 1 clamp (needed when b < 1 + αβN) overshoots to exactly
        // one multiplier unit
        prop_assert!(cumulative <= (b as f32 + 1.0).max(denom));
        prop_assert!(cumulative >= b as f32 - denom);
    }

    #[test]
    fn sharer_selection_is_deterministic_and_bounded(
        alpha in 0.1f32..1.0,
        n in 1usize..32,
        step in 0u64..10_000,
        seed in 0u64..1000,
    ) {
        let c = InjectionConfig::new(alpha, 0.5);
        let a = c.select_sharers(n, seed, step);
        let b = c.select_sharers(n, seed, step);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), c.num_sharers(n));
        prop_assert!(a.iter().all(|&w| w < n));
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    // ---------- Δ(g) tracker (Eqn. 2) ----------

    #[test]
    fn relchange_is_nonnegative_and_finite_after_first(
        norms in prop::collection::vec(0.01f32..1e6, 2..100),
        window in 1usize..50,
    ) {
        let mut t = RelativeGradChange::new(window, 0.2);
        t.update(norms[0]);
        for &n in &norms[1..] {
            let d = t.update(n);
            prop_assert!(d.is_finite());
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn relchange_scale_invariance(
        norms in prop::collection::vec(0.01f32..1e3, 2..50),
        scale in 0.1f32..100.0,
    ) {
        // Δ(g) is relative: scaling every norm by a constant leaves it
        // unchanged (up to float noise)
        let mut a = RelativeGradChange::new(10, 0.3);
        let mut b = RelativeGradChange::new(10, 0.3);
        a.update(norms[0]);
        b.update(norms[0] * scale);
        for &n in &norms[1..] {
            let da = a.update(n);
            let db = b.update(n * scale);
            prop_assert!((da - db).abs() < 1e-2 * da.abs().max(1e-3), "{da} vs {db}");
        }
    }

    #[test]
    fn windowed_ewma_is_bounded_by_inputs(
        xs in prop::collection::vec(-1e4f32..1e4, 1..100),
        window in 1usize..40,
        alpha in 0.01f32..1.0,
    ) {
        let mut w = WindowedEwma::new(window, alpha);
        for &x in &xs {
            let v = w.update(x);
            let lo = xs.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(v >= lo - 1.0 && v <= hi + 1.0, "EWMA {v} outside [{lo}, {hi}]");
        }
    }

    // ---------- LSSR (Eqn. 4) ----------

    #[test]
    fn lssr_in_unit_interval_and_reduction_consistent(
        local in 0u64..10_000,
        sync in 0u64..10_000,
    ) {
        let c = LssrCounter { local_steps: local, sync_steps: sync };
        let l = c.lssr();
        prop_assert!((0.0..=1.0).contains(&l));
        if sync > 0 {
            let red = c.comm_reduction();
            prop_assert!((red - c.total() as f64 / sync as f64).abs() < 1e-9);
        }
    }

    // ---------- compression ----------

    #[test]
    fn topk_dense_roundtrip_preserves_kept_values(g in small_vec(), k in 1usize..64) {
        let s = topk_compress(&g, k);
        let d = s.to_dense();
        prop_assert_eq!(d.len(), g.len());
        // kept positions match the original exactly
        for (&i, &v) in s.indices.iter().zip(&s.values) {
            prop_assert_eq!(g[i as usize], v);
        }
        // every zeroed entry has magnitude ≤ every kept entry
        let min_kept = s.values.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for (i, &v) in g.iter().enumerate() {
            if !s.indices.contains(&(i as u32)) {
                prop_assert!(v.abs() <= min_kept + 1e-6);
            }
        }
    }

    #[test]
    fn sign_roundtrip_preserves_signs_prop(g in prop::collection::vec(-10.0f32..10.0, 1..100)) {
        let s = sign_compress(&g);
        let d = sign_decompress(&s);
        prop_assert_eq!(d.len(), g.len());
        for (orig, dec) in g.iter().zip(&d) {
            if orig.abs() > 1e-6 {
                prop_assert_eq!(orig.signum(), dec.signum());
            }
        }
    }
}
