//! # selsync-suite
//!
//! Umbrella crate for the SelSync reproduction workspace: re-exports the
//! member crates under one name so the `examples/` binaries and the
//! cross-crate `tests/` can use a single dependency, and hosts nothing
//! else. See the README for the project overview and DESIGN.md for the
//! per-experiment index.
//!
//! ```no_run
//! use selsync_suite::prelude::*;
//!
//! let workload = Workload::vision(ModelKind::ResNetMini, 256, 64, 42);
//! let mut config = RunConfig::quick_defaults();
//! config.strategy = Strategy::SelSync {
//!     delta: 0.25,
//!     aggregation: Aggregation::Parameter,
//! };
//! let result = run_distributed(&config, &workload);
//! println!("LSSR {:.3}", result.lssr.lssr());
//! ```

pub use selsync_comm as comm;
pub use selsync_core as core;
pub use selsync_data as data;
pub use selsync_nn as nn;
pub use selsync_stats as stats;
pub use selsync_tensor as tensor;

/// The `selsync_core` prelude, re-exported for convenience.
pub mod prelude {
    pub use selsync_core::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compile() {
        use crate::prelude::*;
        let c = RunConfig::quick_defaults();
        assert_eq!(c.n_workers, 4);
        let _ = crate::tensor::Tensor::zeros([2, 2]);
        let _ = crate::stats::LssrCounter::new();
    }
}
